"""Ablation — PTB token-exchange latency (Section III.E.2).

The paper argues PTB keeps working even with a pessimistic 10-cycle
round trip.  We sweep the balancer latency {0, paper value, 10, 20}
on an 8-core barrier-heavy workload and check that accuracy degrades
gracefully rather than collapsing.
"""

import pytest

from repro.config import CMPConfig
from repro.sim.cmp import run_simulation
from repro.workloads import build_program

from ..conftest import show
from repro.analysis.report import format_table

CORES = 8
LATENCIES = (0, None, 10, 20)  # None = paper value (5 cycles at 8 cores)


@pytest.fixture(scope="module")
def latency_sweep():
    prog = build_program("ocean", CORES, scale="tiny")
    base = run_simulation(
        CMPConfig(num_cores=CORES), prog, "none", max_cycles=150_000
    )
    results = {}
    for lat in LATENCIES:
        cfg = CMPConfig(num_cores=CORES).with_ptb(latency_override=lat)
        r = run_simulation(cfg, prog, "ptb", ptb_policy="toall",
                           max_cycles=150_000)
        results[lat] = r
    return base, results


def test_latency_ablation(benchmark, latency_sweep):
    base, results = benchmark.pedantic(
        lambda: latency_sweep, rounds=1, iterations=1
    )

    aopb = {
        lat: r.aopb_energy / base.aopb_energy for lat, r in results.items()
    }

    # A combinational balancer is the accuracy upper bound.
    assert aopb[0] <= min(aopb[10], aopb[20]) + 0.05

    # The paper's claim: even a pessimistic 10-cycle balancer still
    # beats leaving the area untouched by a wide margin.
    assert aopb[10] < 0.8
    assert aopb[20] < 0.9

    rows = [
        ("paper (5cy)" if lat is None else f"{lat}cy",
         f"{aopb[lat] * 100:.1f}")
        for lat in LATENCIES
    ]
    show(format_table(
        ["balancer latency", "AoPB % of base"],
        rows, title="Ablation - token-exchange latency (8-core ocean)",
    ))
