"""Ablation — balancer clustering beyond 16 cores (Section III.E.2).

The paper proposes clustering the PTB load-balancer into groups of 8 or
16 cores for larger CMPs so the round-trip latency stays bounded.  We
verify the latency model caps at the cluster's value and that a
clustered 32-core configuration is constructible and runnable.
"""

import pytest

from repro.analysis.report import format_table
from repro.config import CMPConfig, PTBConfig
from repro.sim.cmp import run_simulation
from repro.workloads import build_program

from ..conftest import show


def test_cluster_latency_model(benchmark):
    def latencies():
        out = {}
        for cluster in (8, 16):
            ptb = PTBConfig(cluster_size=cluster)
            out[cluster] = {
                n: ptb.round_trip_latency(n) for n in (8, 16, 32, 64)
            }
        return out

    data = benchmark(latencies)

    # A 16-core cluster caps latency at 10 cycles regardless of CMP size.
    assert data[16][32] == 10
    assert data[16][64] == 10
    # An 8-core cluster caps at 5 cycles.
    assert data[8][32] == 5
    assert data[8][64] == 5

    rows = [
        (cluster, *[data[cluster][n] for n in (8, 16, 32, 64)])
        for cluster in sorted(data)
    ]
    show(format_table(
        ["cluster size", "8c", "16c", "32c", "64c"],
        rows, title="Ablation - clustered balancer round-trip (cycles)",
    ))


def test_32_core_clustered_run():
    """A 32-core CMP with a 16-core-clustered balancer runs end to end."""
    cfg = CMPConfig(num_cores=32).with_ptb(cluster_size=16)
    prog = build_program("fft", 32, scale="tiny")
    base = run_simulation(CMPConfig(num_cores=32), prog, "none",
                          max_cycles=120_000)
    ptb = run_simulation(cfg, prog, "ptb", ptb_policy="toall",
                         max_cycles=120_000)
    assert ptb.completed and base.completed
    assert ptb.aopb_energy < base.aopb_energy
