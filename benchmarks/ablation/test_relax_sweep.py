"""Ablation — relaxation-threshold sweep (Section IV.C).

The paper evaluates +10/+20/+30% relaxed AoPB thresholds: each step
trades accuracy for energy.  We sweep the threshold on a 4-core
workload and check the trade-off is monotone in the expected direction.
"""

import pytest

from repro.analysis.report import format_table
from repro.config import CMPConfig
from repro.sim.cmp import run_simulation
from repro.workloads import build_program

from ..conftest import show

THRESHOLDS = (0.0, 0.1, 0.2, 0.3)


@pytest.fixture(scope="module")
def relax_sweep():
    prog = build_program("cholesky", 4, scale="tiny")
    base = run_simulation(CMPConfig(num_cores=4), prog, "none",
                          max_cycles=150_000)
    results = {}
    for relax in THRESHOLDS:
        cfg = CMPConfig(num_cores=4).with_ptb(relax_threshold=relax)
        results[relax] = run_simulation(cfg, prog, "ptb",
                                        ptb_policy="toall",
                                        max_cycles=150_000)
    return base, results


def test_relax_threshold_ablation(benchmark, relax_sweep):
    base, results = benchmark.pedantic(
        lambda: relax_sweep, rounds=1, iterations=1
    )

    aopb = {t: r.aopb_energy / base.aopb_energy for t, r in results.items()}
    throttled = {t: r.throttled_cycles for t, r in results.items()}

    # Relaxing monotonically (weakly) reduces throttling effort...
    assert throttled[0.0] >= throttled[0.1] >= throttled[0.2] >= throttled[0.3]
    # ...and costs accuracy relative to strict PTB.
    assert aopb[0.3] >= aopb[0.0] - 0.02

    rows = [
        (f"+{int(t * 100)}%", f"{100 * aopb[t]:.1f}", throttled[t])
        for t in THRESHOLDS
    ]
    show(format_table(
        ["relax threshold", "AoPB % of base", "throttled cycles"],
        rows, title="Ablation - relaxation threshold (4-core cholesky)",
    ))
