"""Ablation — spin gating (the paper's future work, Section IV.C).

    "higher energy savings could be achieved if we use PTB as a
     spinlock detector and we disable the spinning cores"

We compare PTB+2level with and without spin gating on lock- and
barrier-bound workloads and measure the additional energy savings.
"""

import pytest

from repro.analysis.report import format_table
from repro.config import CMPConfig
from repro.sim.cmp import run_simulation
from repro.workloads import build_program

from ..conftest import show

BENCHES = ("unstructured", "ocean", "barnes")


@pytest.fixture(scope="module")
def gating_runs():
    out = {}
    for bench in BENCHES:
        cfg = CMPConfig(num_cores=4)
        prog = build_program(bench, 4, scale="tiny")
        out[bench] = {
            "base": run_simulation(cfg, prog, "none"),
            "ptb": run_simulation(cfg, prog, "ptb", ptb_policy="toall"),
            "gated": run_simulation(cfg, prog, "ptb-spingate",
                                    ptb_policy="toall"),
        }
    return out


def test_spin_gating_ablation(benchmark, gating_runs):
    runs = benchmark.pedantic(lambda: gating_runs, rounds=1, iterations=1)

    rows = []
    for bench, rr in runs.items():
        e_ptb = rr["ptb"].total_energy / rr["base"].total_energy
        e_gated = rr["gated"].total_energy / rr["base"].total_energy
        slow = rr["gated"].cycles / rr["ptb"].cycles
        rows.append((bench, f"{100 * (e_ptb - 1):+.1f}",
                     f"{100 * (e_gated - 1):+.1f}", f"{slow:.2f}x"))

        # Gating never loses energy relative to plain PTB...
        assert e_gated <= e_ptb + 0.005, bench
        # ...and never meaningfully slows the program (the gated cores
        # were spinning; waking is handled by the sync state machine).
        assert slow < 1.10, bench

    # On the most lock-bound code the savings are substantial.
    un = runs["unstructured"]
    saving = 1 - un["gated"].total_energy / un["ptb"].total_energy
    assert saving > 0.05

    show(format_table(
        ["benchmark", "PTB energy %", "PTB+gate energy %", "slowdown"],
        rows, title="Ablation - spin gating (future work), 4 cores",
    ))
