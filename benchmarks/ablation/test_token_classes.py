"""Ablation — K-means token-class count (Section III.B).

The paper claims 8 base-power groups keep token accounting within 1%
of exact joule accounting.  We sweep the class count and measure the
quantization error on a SPECint-like calibration population.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.isa.instructions import BASE_ENERGY, Kind
from repro.isa.kmeans import calibrate_token_classes
from repro.power.model import TOKEN_UNIT_EU

from ..conftest import show


def calibration_sample(n=30_000, seed=11):
    rng = np.random.default_rng(seed)
    kinds = list(Kind)
    weights = np.array([42, 3, 2, 1, 24, 11, 15, 1, 1], dtype=float)
    weights /= weights.sum()
    chosen = rng.choice(len(kinds), n, p=weights)
    base = np.array([BASE_ENERGY[kinds[i]] for i in chosen])
    return np.clip(base * rng.normal(1.0, 0.12, n), 0.4, None)


def sweep_classes():
    sample = calibration_sample()
    errors = {}
    for k in (1, 2, 4, 8, 16):
        cmap = calibrate_token_classes(sample, k=k, token_unit=TOKEN_UNIT_EU)
        errors[k] = cmap.quantization_error(sample, token_unit=TOKEN_UNIT_EU)
    return errors


def test_token_class_ablation(benchmark):
    errors = benchmark.pedantic(sweep_classes, rounds=1, iterations=1)

    # The paper's operating point: 8 classes -> < 1% error.
    assert errors[8] < 0.01

    # Coarser quantization is monotonically (weakly) worse.
    assert errors[1] >= errors[2] >= errors[4] - 1e-9
    assert errors[4] >= errors[8] - 1e-9

    # One class is a terrible power proxy, justifying the table at all.
    assert errors[1] > 5 * max(errors[8], 1e-6)

    show(format_table(
        ["k-means classes", "accounting error %"],
        [(k, f"{100 * e:.3f}") for k, e in sorted(errors.items())],
        title="Ablation - token classes vs accounting error",
    ))
