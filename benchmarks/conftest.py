"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one table or figure of the paper through the
cached :class:`ExperimentRunner`.  The first execution populates the
on-disk cache (minutes for the big sweeps); later executions replay
from cache in milliseconds.  Set ``REPRO_SCALE=tiny`` for a quick
smoke pass that re-simulates everything from scratch.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import ExperimentRunner


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner()


def show(text: str) -> None:
    """Print a regenerated table under ``pytest -s``."""
    print()
    print(text)
