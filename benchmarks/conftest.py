"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one table or figure of the paper through the
cached :class:`ExperimentRunner`.  The first execution populates the
on-disk cache (minutes for the big sweeps); later executions replay
from cache in milliseconds.  Set ``REPRO_SCALE=tiny`` for a quick
smoke pass that re-simulates everything from scratch, and ``REPRO_JOBS``
to fan cold simulations out over worker processes (each figure plans
its full recipe list before rendering, so a cold pass parallelizes; the
cache's per-entry locking keeps concurrent sessions from duplicating
work).
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import ExperimentRunner


@pytest.fixture(scope="session")
def runner():
    r = ExperimentRunner()
    yield r
    s = r.stats
    if s["planned"]:
        print(f"\n[runner] planned={s['planned']} simulated={s['simulated']} "
              f"mem_hits={s['mem_hits']} disk_hits={s['disk_hits']} "
              f"jobs={r.jobs}")


def show(text: str) -> None:
    """Print a regenerated table under ``pytest -s``."""
    print()
    print(text)
