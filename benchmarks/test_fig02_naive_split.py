"""Figure 2 — naive equal-split DVFS/DFS/2level at 16 cores, 50% budget.

Paper shape: the average AoPB stays high (the naive split cannot adapt
to parallel workloads); sync-heavy applications (ocean, radix) are the
worst cases, while the contention-free PARSEC codes are handled well;
DVFS saves energy, DFS does not.
"""

from repro.analysis import fig2_naive_split, format_metric_grid

from .conftest import show


def test_fig02_naive_split(benchmark, runner):
    data = benchmark.pedantic(
        fig2_naive_split, args=(runner,), rounds=1, iterations=1
    )
    avg = data["Avg."]

    # The naive split leaves most of the over-budget area in place.
    assert avg["dvfs"]["aopb_pct"] > 40.0
    assert avg["dfs"]["aopb_pct"] > 40.0
    assert avg["2level"]["aopb_pct"] > 30.0

    # DVFS saves energy on average; DFS saves less (no voltage drop).
    assert avg["dvfs"]["energy_pct"] < avg["dfs"]["energy_pct"] + 0.5

    # Sync-heavy codes are among the worst AoPB cases (paper: 70-80%).
    for bench in ("ocean", "radix"):
        assert data[bench]["dvfs"]["aopb_pct"] > 60.0

    # Contention-free PARSEC codes are handled better than the sync-
    # heavy SPLASH-2 codes by at least one naive technique (paper:
    # "particular benchmarks report a reduced AoPB ... Blackscholes,
    # Swaptions and x264").
    best_blacksc = min(
        data["blackscholes"][t]["aopb_pct"] for t in ("dvfs", "dfs", "2level")
    )
    assert best_blacksc < data["ocean"]["dvfs"]["aopb_pct"]

    show(format_metric_grid(
        data, "aopb_pct",
        title="Figure 2 (right) - normalized AoPB %, naive split, 16 cores",
    ))
    show(format_metric_grid(
        data, "energy_pct",
        title="Figure 2 (left) - normalized energy %, naive split, 16 cores",
    ))
