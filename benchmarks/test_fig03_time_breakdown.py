"""Figure 3 — execution-time breakdown for 2/4/8/16 cores.

Paper shape: spinning time grows with the core count; Unstructured and
Fluidanimate are lock-acquisition-bound; Cholesky, Blackscholes,
Swaptions and x264 have essentially no lock/barrier contention;
Ocean/Radix are barrier-heavy.
"""

from repro.analysis import fig3_time_breakdown, format_breakdown

from .conftest import show


def test_fig03_time_breakdown(benchmark, runner):
    data = benchmark.pedantic(
        fig3_time_breakdown, args=(runner,), rounds=1, iterations=1
    )

    def spin_frac(bench, cores):
        f = data[bench][cores]
        return f["lock_acq"] + f["lock_rel"] + f["barrier"]

    # Spin time grows with core count for the sync-heavy codes.
    for bench in ("ocean", "radix", "unstructured", "barnes", "fft"):
        assert spin_frac(bench, 16) > spin_frac(bench, 2)

    # Lock-bound applications (paper: Unstructured/Fluidanimate spend
    # significant time in Lock-Acq).
    for bench in ("unstructured", "fluidanimate", "raytrace"):
        assert data[bench][16]["lock_acq"] > 0.20

    # Contention-free applications stay busy even at 16 cores.
    for bench in ("blackscholes", "swaptions", "x264", "cholesky"):
        assert data[bench][16]["busy"] > 0.60
        assert data[bench][16]["lock_acq"] < 0.15

    # Barrier-heavy applications.
    for bench in ("ocean", "radix"):
        assert data[bench][16]["barrier"] > 0.30
        assert data[bench][16]["barrier"] > data[bench][16]["lock_acq"]

    show(format_breakdown(
        data, title="Figure 3 - execution-time breakdown (fractions)"
    ))
