"""Figure 4 — spinlock/barrier power as a fraction of total power.

Paper shape: spin power grows with the core count and averages around
10% for the 16-core CMP — enough to be worth harvesting, not enough on
its own to meet a 50% budget (the paper's argument for needing PTB).
"""

from repro.analysis import fig4_spin_power, format_spin_power
from repro.workloads import benchmark_names

from .conftest import show


def test_fig04_spin_power(benchmark, runner):
    data = benchmark.pedantic(
        fig4_spin_power, args=(runner,), rounds=1, iterations=1
    )
    avg = data["Avg."]

    # Grows with core count...
    assert avg[16] > avg[4] > 0.0

    # ...averaging in the ballpark of the paper's ~10% at 16 cores
    # (wide band: our spin loop power differs from GEMS's).
    assert 0.03 < avg[16] < 0.35

    # Spinning is a small-to-moderate slice; never the majority of the
    # suite-average energy, which is why spin-harvesting alone cannot
    # match a 50% budget.
    assert avg[16] < 0.5

    # Contention-free codes burn almost nothing spinning.
    for bench in ("blackscholes", "swaptions"):
        assert data[bench][16] < 0.10

    # Lock-bound codes burn the most.
    assert data["unstructured"][16] > avg[16]

    show(format_spin_power(
        data, title="Figure 4 - spin power / total power"
    ))
