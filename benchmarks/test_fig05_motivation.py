"""Figure 5 — the motivating 4-core example (40 W global budget)."""

from repro.analysis import fig5_motivation, format_table

from .conftest import show


def test_fig05_motivation(benchmark):
    data = benchmark(fig5_motivation)
    rows = data["rows"]

    # The paper's reading of the figure:
    # cycles 1, 2, 4 exceed the global budget; cycle 3 does not.
    assert [r["over_global"] for r in rows] == [True, True, False, True]

    # Cycle 1: cores 3&4 over their local 10 W -> throttled naively.
    assert rows[0]["naive_throttled"] == [2, 3]
    # Cycle 2: only core 3 over.
    assert rows[1]["naive_throttled"] == [2]
    # Cycle 3: cores exceed local budgets but no mechanism applies.
    assert rows[2]["naive_throttled"] == []
    # Cycle 4: every core over its local budget.
    assert rows[3]["naive_throttled"] == [0, 1, 2, 3]

    # The PTB observation: in cycles 1 and 2 the under-budget cores'
    # spare power covers the over-budget cores' need...
    assert rows[0]["spare"] >= 0
    assert rows[1]["spare"] > 0
    # ...but in cycle 4 nobody has spare tokens, so all must throttle.
    assert rows[3]["spare"] == 0
    assert rows[3]["ptb_throttled"] == [0, 1, 2, 3]

    table = [
        (r["cycle"], str(r["powers"]), r["total"],
         "yes" if r["over_global"] else "no",
         str(r["naive_throttled"]), str(r["ptb_throttled"]))
        for r in rows
    ]
    show(format_table(
        ["cycle", "core powers (W)", "total", "over 40W?",
         "naive throttles", "PTB throttles"],
        table, title="Figure 5 - motivating example",
    ))
