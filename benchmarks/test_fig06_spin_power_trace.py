"""Figure 6 — per-cycle power behaviour of a spinning core.

Paper shape: after the initial computation peak, a spinning core's
power drops and *stabilises* at a level below its busy power (the
signature PTB exploits both for balancing and for indirect spin
detection).
"""

from repro.analysis import fig6_spin_power_trace
from repro.analysis.report import format_table

from .conftest import show


def test_fig06_spin_power_trace(benchmark, runner):
    data = benchmark.pedantic(
        fig6_spin_power_trace, args=(runner,), rounds=1, iterations=1
    )

    # Spin power is clearly below busy power (paper: ~1.4 vs ~2.2).
    assert data["spin_power"] < data["busy_power"]
    assert 0.15 < data["spin_to_busy_ratio"] < 0.9

    # And it is *stable*: the stabilised spinning stretch has low
    # variability relative to its mean.
    assert data["spin_std"] < 0.6 * data["spin_power"]

    show(format_table(
        ["metric", "value"],
        [
            ("observed core", data["core"]),
            ("busy power (EU/cycle)", f"{data['busy_power']:.1f}"),
            ("spin power (EU/cycle)", f"{data['spin_power']:.1f}"),
            ("spin/busy ratio", f"{data['spin_to_busy_ratio']:.2f}"),
            ("spin std dev", f"{data['spin_std']:.2f}"),
        ],
        title="Figure 6 - spinning-core power signature",
    ))
