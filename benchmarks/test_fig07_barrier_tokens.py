"""Figure 7 — PTB token flow as cores reach a barrier one by one.

The paper's worked example: 4 cores, local budgets of 10 tokens, a
spinning core consumes 4 and donates 6.  Effective budgets of the
still-running cores grow 12 -> 16 -> 28 as more cores spin.
"""

from repro.analysis import fig7_barrier_token_flow
from repro.analysis.report import format_table

from .conftest import show


def test_fig07_barrier_tokens(benchmark):
    steps = benchmark(fig7_barrier_token_flow)

    # Step (a): one spinner donates 6; each of 3 runners gets 10+2.
    assert steps[0]["pool"] == 6
    assert set(steps[0]["effective_budgets"].values()) == {12}

    # Step (b): two spinners donate 12; each of 2 runners gets 10+6.
    assert steps[1]["pool"] == 12
    assert set(steps[1]["effective_budgets"].values()) == {16}

    # Step (c): three spinners donate 18; the last runner gets 10+18.
    assert steps[2]["pool"] == 18
    assert list(steps[2]["effective_budgets"].values()) == [28]

    rows = [
        (chr(ord("a") + i), str(s["spinning"]), str(s["running"]),
         s["pool"], str(s["effective_budgets"]))
        for i, s in enumerate(steps)
    ]
    show(format_table(
        ["step", "spinning", "running", "pool", "effective budgets"],
        rows, title="Figure 7 - barrier token flow (paper's numbers)",
    ))
