"""Figure 8 / Section III.E.2 — PTB balancer implementation constants.

The paper's Xilinx ISE estimates: 3-cycle round trip at 4 cores, 5 at
8, 10 at 16; ~1% power overhead for the balancer and its wires.  The
pessimistic-latency claim (PTB still works at 10 cycles) is exercised
by the ablation benchmarks.
"""

from repro.analysis import fig8_balancer_constants
from repro.analysis.report import format_table
from repro.budget.ptb import PTBLoadBalancer

from .conftest import show


def test_fig08_balancer_constants(benchmark):
    data = benchmark(fig8_balancer_constants)

    assert data[4]["round_trip_cycles"] == 3
    assert data[8]["round_trip_cycles"] == 5
    assert data[16]["round_trip_cycles"] == 10
    assert all(v["power_overhead_pct"] == 1.0 for v in data.values())

    # The balancer honours the latency: reports from cycle t produce
    # grants exactly at t + latency.
    bal = PTBLoadBalancer(4, data[4]["round_trip_cycles"])
    outputs = []
    for t in range(6):
        spares = [6, 0, 0, 0] if t == 0 else [0, 0, 0, 0]
        overs = [0, 9, 0, 0] if t == 0 else [0, 0, 0, 0]
        outputs.append(bal.cycle(spares, overs, "toall"))
    assert outputs[2] == [0, 0, 0, 0]
    assert outputs[3] == [0, 6, 0, 0]

    rows = [
        (n, v["round_trip_cycles"], f"{v['power_overhead_pct']:.0f}%")
        for n, v in sorted(data.items())
    ]
    show(format_table(
        ["cores", "round-trip cycles", "power overhead"],
        rows, title="Figure 8 - balancer latency/overhead",
    ))
