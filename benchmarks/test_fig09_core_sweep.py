"""Figure 9 — energy & AoPB for 2/4/8/16 cores x {ToOne, ToAll}.

Paper shape: PTB+2level pushes the average AoPB far below every other
technique at every core count (8-10% at 16 cores in the paper, versus
>= 65% for DVFS/DFS) at the cost of a small energy increase (~3%);
ToAll edges out ToOne on average.
"""

import pytest

from repro.analysis import fig9_core_policy_sweep, format_table

from .conftest import show


def test_fig09_core_sweep(benchmark, runner):
    data = benchmark.pedantic(
        fig9_core_policy_sweep, args=(runner,), rounds=1, iterations=1
    )

    for col, agg in data.items():
        # PTB is the most accurate technique in every column group.
        others = [agg[t]["aopb_pct"] for t in ("dvfs", "dfs", "2level")]
        assert agg["ptb"]["aopb_pct"] < min(others), col
        # By a wide margin (paper: 8% vs >= 65%).
        assert agg["ptb"]["aopb_pct"] < 0.6 * min(others), col
        # PTB's energy cost stays small (paper: ~+3%).
        assert agg["ptb"]["energy_pct"] < 6.0, col

    # ToAll is at least as accurate as ToOne on the 16-core average.
    assert (
        data["16Core_Toall"]["ptb"]["aopb_pct"]
        <= data["16Core_Toone"]["ptb"]["aopb_pct"] + 1.0
    )

    # DVFS saves energy on average (paper: ~-6%).
    assert data["16Core_Toall"]["dvfs"]["energy_pct"] < 0.0

    rows = []
    for col, agg in data.items():
        for tech, m in agg.items():
            rows.append((col, tech, round(m["energy_pct"], 1),
                         round(m["aopb_pct"], 1)))
    show(format_table(
        ["column", "technique", "energy %", "AoPB %"],
        rows, title="Figure 9 - core-count x policy sweep (suite averages)",
    ))
