"""Figure 10 — per-benchmark energy & AoPB, 16 cores, ToAll policy.

Paper shape: benchmarks that were hopeless under the naive split
(Ocean, Barnes at ~70% AoPB) drop to near-perfect accuracy once PTB
redistributes the spinners' tokens.
"""

from repro.analysis import fig10_detail_toall, format_metric_grid

from .conftest import show


def test_fig10_detail_toall(benchmark, runner):
    data = benchmark.pedantic(
        fig10_detail_toall, args=(runner,), rounds=1, iterations=1
    )
    avg = data["Avg."]

    # PTB is the most accurate on the suite average...
    assert avg["ptb"]["aopb_pct"] < avg["2level"]["aopb_pct"]
    assert avg["ptb"]["aopb_pct"] < avg["dvfs"]["aopb_pct"]
    # ...with a small energy cost (paper: +3%).
    assert -2.0 < avg["ptb"]["energy_pct"] < 6.0

    # The paper's headline cases: ocean/barnes improve dramatically
    # versus their naive-split AoPB.
    for bench in ("ocean", "barnes"):
        assert (
            data[bench]["ptb"]["aopb_pct"]
            < 0.6 * data[bench]["dvfs"]["aopb_pct"]
        )

    # PTB helps every benchmark relative to plain DVFS accuracy.
    for bench, row in data.items():
        if bench == "Avg.":
            continue
        assert row["ptb"]["aopb_pct"] <= row["dvfs"]["aopb_pct"] + 8.0, bench

    show(format_metric_grid(
        data, "aopb_pct",
        title="Figure 10 (right) - AoPB %, 16 cores, ToAll",
    ))
    show(format_metric_grid(
        data, "energy_pct",
        title="Figure 10 (left) - energy %, 16 cores, ToAll",
    ))
