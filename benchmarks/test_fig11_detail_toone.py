"""Figure 11 — per-benchmark energy & AoPB, 16 cores, ToOne policy."""

from repro.analysis import fig11_detail_toone, format_metric_grid

from .conftest import show


def test_fig11_detail_toone(benchmark, runner):
    data = benchmark.pedantic(
        fig11_detail_toone, args=(runner,), rounds=1, iterations=1
    )
    avg = data["Avg."]

    # ToOne is still far more accurate than the naive techniques...
    assert avg["ptb"]["aopb_pct"] < avg["dvfs"]["aopb_pct"]
    assert avg["ptb"]["aopb_pct"] < avg["2level"]["aopb_pct"]
    assert avg["ptb"]["energy_pct"] < 6.0

    # ...and concentrating tokens particularly benefits the lock-bound
    # codes whose critical sections gate everyone else (paper:
    # Unstructured/Waternsq "work better when the extra power is given
    # to a single core").
    for bench in ("unstructured", "waternsq"):
        assert (
            data[bench]["ptb"]["aopb_pct"]
            < data[bench]["2level"]["aopb_pct"]
        )

    show(format_metric_grid(
        data, "aopb_pct",
        title="Figure 11 (right) - AoPB %, 16 cores, ToOne",
    ))
    show(format_metric_grid(
        data, "energy_pct",
        title="Figure 11 (left) - energy %, 16 cores, ToOne",
    ))
