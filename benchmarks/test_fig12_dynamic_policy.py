"""Figure 12 — the dynamic policy selector (ToOne under lock spinning,
ToAll under barrier spinning).

Paper shape: the dynamic selector tracks the better static policy per
application, landing at (or near) the best of both on the suite
average.
"""

from repro.analysis import (
    fig10_detail_toall,
    fig11_detail_toone,
    fig12_dynamic_policy,
    format_metric_grid,
)

from .conftest import show


def test_fig12_dynamic_policy(benchmark, runner):
    data = benchmark.pedantic(
        fig12_dynamic_policy, args=(runner,), rounds=1, iterations=1
    )
    toall = fig10_detail_toall(runner)
    toone = fig11_detail_toone(runner)

    avg_dyn = data["Avg."]["ptb"]["aopb_pct"]
    avg_toall = toall["Avg."]["ptb"]["aopb_pct"]
    avg_toone = toone["Avg."]["ptb"]["aopb_pct"]

    # Dynamic lands between the static policies, close to the best
    # (paper: strictly best; we allow a small tolerance).
    assert avg_dyn <= max(avg_toall, avg_toone)
    assert avg_dyn <= min(avg_toall, avg_toone) + 5.0

    # And remains far more accurate than every naive technique.
    assert avg_dyn < data["Avg."]["dvfs"]["aopb_pct"]
    assert avg_dyn < data["Avg."]["2level"]["aopb_pct"]

    # Energy close to the base case (paper: ~+2%).
    assert -2.0 < data["Avg."]["ptb"]["energy_pct"] < 5.0

    show(format_metric_grid(
        data, "aopb_pct",
        title="Figure 12 (right) - AoPB %, 16 cores, dynamic selector",
    ))
    show(format_metric_grid(
        data, "energy_pct",
        title="Figure 12 (left) - energy %, 16 cores, dynamic selector",
    ))
