"""Figure 13 — performance slowdown under PTB (dynamic selector).

Paper shape: average slowdown of a few percent (close to DVFS) with
individual applications up to ~15%; some applications speed up
slightly (negative bars exist in the paper's figure too).
"""

from repro.analysis import fig13_performance, format_table

from .conftest import show


def test_fig13_performance(benchmark, runner):
    data = benchmark.pedantic(
        fig13_performance, args=(runner,), rounds=1, iterations=1
    )

    # Average slowdown is small (paper: ~+2%).
    assert data["Avg."] < 8.0

    # No application collapses (paper's worst case ~+17%).
    worst = max(v for k, v in data.items() if k != "Avg.")
    assert worst < 25.0

    # The contention-free codes bear the brunt (they are the ones whose
    # busy power actually exceeds the budget), while sync-heavy codes
    # barely slow down.
    assert data["unstructured"] < 5.0
    assert data["raytrace"] < 5.0

    rows = sorted(data.items(), key=lambda kv: kv[0] == "Avg.")
    show(format_table(
        ["benchmark", "slowdown %"],
        [(k, round(v, 1)) for k, v in rows],
        title="Figure 13 - PTB (dynamic) slowdown, 16 cores",
    ))
