"""Figure 14 — relaxed-threshold PTB ("Restricted PTB+2Level").

Paper shape: allowing the AoPB to ride ~20% above the budget before
triggering lets PTB trade accuracy for energy — reaching DVFS-like
energy while remaining far more accurate than DVFS's ~65% AoPB.
"""

from repro.analysis import fig14_relaxed_ptb, format_table

from .conftest import show


def test_fig14_relaxed_ptb(benchmark, runner):
    data = benchmark.pedantic(
        fig14_relaxed_ptb, args=(runner,), rounds=1, iterations=1
    )

    for col, agg in data.items():
        strict = agg["ptb"]
        relaxed = agg["ptb_relaxed"]
        # Relaxing costs accuracy...
        assert relaxed["aopb_pct"] >= strict["aopb_pct"] - 1.0, col
        # ...and buys energy (less throttling -> closer to/below DVFS).
        assert relaxed["energy_pct"] <= strict["energy_pct"] + 0.5, col
        # Still far more accurate than DVFS.
        assert relaxed["aopb_pct"] < agg["dvfs"]["aopb_pct"], col

    col16 = data["16Core_Toall"]
    # The 16-core relaxed variant stays well under DVFS's AoPB
    # (paper: ~20-30% vs 65%).
    assert col16["ptb_relaxed"]["aopb_pct"] < 0.7 * col16["dvfs"]["aopb_pct"]

    rows = []
    for col, agg in data.items():
        for tech in ("dvfs", "ptb", "ptb_relaxed"):
            m = agg[tech]
            rows.append((col, tech, round(m["energy_pct"], 1),
                         round(m["aopb_pct"], 1)))
    show(format_table(
        ["column", "technique", "energy %", "AoPB %"],
        rows, title="Figure 14 - strict vs relaxed (+20%) PTB",
    ))
