"""Section IV.D — accuracy determines how many cores fit a fixed TDP.

Paper arithmetic: a 100 W, 16-core CMP at a 50% budget could ideally
host 32 cores.  With each technique's budget-matching error: DVFS (65%)
-> 19 cores, plain 2level (40%) -> 22, PTB (<10%) -> 29.  We verify the
arithmetic against the paper's numbers AND against our own measured
AoPB errors.
"""

from repro.analysis import (
    PAPER_CORE_COUNTS,
    cores_under_tdp,
    fig9_core_policy_sweep,
    format_table,
    sec4d_table,
)

from .conftest import show


def test_sec4d_tdp_scaling(benchmark, runner):
    # Measured errors from our 16-core ToAll sweep.
    sweep = fig9_core_policy_sweep(runner, core_counts=(16,),
                                   policies=("toall",))
    agg = sweep["16Core_Toall"]
    measured = {
        "dvfs": agg["dvfs"]["aopb_pct"] / 100.0,
        "2level": agg["2level"]["aopb_pct"] / 100.0,
        "ptb": agg["ptb"]["aopb_pct"] / 100.0,
    }
    table = benchmark.pedantic(
        sec4d_table, args=(measured,), rounds=1, iterations=1
    )

    # Paper's arithmetic reproduces exactly.
    for tech, cores in PAPER_CORE_COUNTS.items():
        assert table[tech]["paper_cores"] == cores
    assert table["ideal"]["paper_cores"] == 32
    assert cores_under_tdp(0.0) == 32

    # Our measured ordering preserves the paper's conclusion: higher
    # accuracy -> more cores under the same TDP.
    assert (
        table["ptb"]["measured_cores"]
        >= table["2level"]["measured_cores"]
        >= table["dvfs"]["measured_cores"]
    )
    # PTB's accuracy buys a significant number of extra cores.
    assert table["ptb"]["measured_cores"] - table["dvfs"]["measured_cores"] >= 4

    rows = []
    for tech, row in table.items():
        rows.append((
            tech,
            f"{row['paper_error']:.2f}",
            row["paper_cores"],
            f"{row.get('measured_error', float('nan')):.2f}",
            row.get("measured_cores", "-"),
        ))
    show(format_table(
        ["technique", "paper err", "paper cores", "our err", "our cores"],
        rows, title="Section IV.D - cores under a 100 W TDP",
    ))
