"""Table 1 — the simulated CMP configuration."""

from repro.analysis import table1_configuration
from repro.config import DEFAULT_CONFIG

from .conftest import show


def test_table1_configuration(benchmark):
    text = benchmark(table1_configuration, DEFAULT_CONFIG)
    # Every Table 1 row is present.
    for fragment in (
        "32 nanometres", "3000 MHz", "0.9 V",
        "128 entries + 64 Load Store Queue", "4 inst/cycle",
        "6 Int Alu", "14 stages", "16 bit Gshare",
        "MOESI", "300 Cycles", "64KB, 2-way", "1MB/core, 4-way",
        "2D mesh", "4 cycles", "4 bytes", "1 flit / cycle",
    ):
        assert fragment in text
    show(text)
