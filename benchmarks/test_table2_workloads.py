"""Table 2 — evaluated benchmarks and input working sets."""

from repro.analysis import format_table, table2_benchmarks

from .conftest import show


def test_table2_workloads(benchmark):
    rows = benchmark(table2_benchmarks)
    assert len(rows) == 14
    suites = {suite for suite, _, _ in rows}
    assert suites == {"splash2", "parsec"}
    by_name = {name: (suite, size) for suite, name, size in rows}
    assert by_name["radix"] == ("splash2", "1M keys, 1024 radix")
    assert by_name["fluidanimate"] == ("parsec", "simsmall")
    show(format_table(["suite", "benchmark", "size"], rows,
                      title="Table 2 - benchmarks and working sets"))
