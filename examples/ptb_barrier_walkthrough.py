#!/usr/bin/env python3
"""Figure 7 walkthrough: token flow as cores reach a barrier.

Part 1 replays the paper's worked example (4 cores, 10-token budgets,
spinners donate 6) through the real PTBLoadBalancer.  Part 2 runs a
live 4-core simulation with deliberately unbalanced barrier work and
shows the balancer subsidising the straggler.

Run:  python examples/ptb_barrier_walkthrough.py
"""

from repro.analysis import fig7_barrier_token_flow
from repro.config import CMPConfig
from repro.sim.cmp import CMPSimulator
from repro.trace.phases import (
    BarrierPhase,
    ComputePhase,
    ParallelProgram,
    ThreadProgram,
)


def paper_example() -> None:
    print("=" * 64)
    print("Part 1 - the paper's Figure 7 numbers through the balancer")
    print("=" * 64)
    for label, step in zip("abc", fig7_barrier_token_flow()):
        budgets = ", ".join(
            f"C{c + 1}={b}" for c, b in step["effective_budgets"].items()
        )
        spinners = ", ".join(f"C{c + 1}" for c in step["spinning"])
        print(f"  ({label}) spinning: {spinners:12s} pool={step['pool']:3d} "
              f"tokens  ->  running budgets: {budgets}")
    print("  (paper: 10+2 each, then 10+6 each, then 10+18 for the last)")


def live_simulation() -> None:
    print()
    print("=" * 64)
    print("Part 2 - a live unbalanced barrier on the full simulator")
    print("=" * 64)
    cores = 4
    # Thread 0 has 4x the work of the others: threads 1-3 spin at the
    # barrier donating their token allotments to thread 0.
    threads = []
    for tid in range(cores):
        work = 12_000 if tid == 0 else 3_000
        threads.append(
            ThreadProgram(
                thread_id=tid,
                phases=(
                    ComputePhase(work, footprint_lines=512),
                    BarrierPhase(0),
                ),
            )
        )
    program = ParallelProgram("unbalanced-barrier", tuple(threads))

    cfg = CMPConfig(num_cores=cores)
    sim = CMPSimulator(cfg, program, technique="ptb", ptb_policy="toall",
                       collect_traces=True)
    result = sim.run(100_000)
    ctl = sim.controller

    print(f"  completed in {result.cycles:,} cycles; "
          f"balancer granted {ctl.balancer.granted_total:,} tokens total")
    lines = ctl.budget_lines
    local = ctl.local_budget
    print(f"  local budget line: {local:.1f} EU/cycle per core")
    print(f"  final budget lines: "
          + ", ".join(f"C{i}={b:.1f}" for i, b in enumerate(lines)))
    fr = result.phase_fractions()
    print(f"  time breakdown: busy {fr['busy']:.0%}, "
          f"barrier spin {fr['barrier']:.0%}")
    print(f"  straggler (core 0) was subsidised while cores 1-3 spun; "
          f"AoPB = {result.aopb_fraction_of_energy:.1%} of total energy")


if __name__ == "__main__":
    paper_example()
    live_simulation()
