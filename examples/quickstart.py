#!/usr/bin/env python3
"""Quickstart: enforce a 50% power budget on a 4-core CMP with PTB.

Builds a synthetic Ocean-like workload (barrier-heavy SPLASH-2 code),
runs it uncontrolled and under Power Token Balancing, and reports the
paper's headline metrics: budget-matching accuracy (AoPB), energy and
execution time.

Run:  python examples/quickstart.py
"""

from repro import CMPConfig, build_program, run_simulation
from repro.sim.results import (
    normalized_aopb_pct,
    normalized_energy_pct,
    slowdown_pct,
)


def main() -> None:
    cores = 4
    cfg = CMPConfig(num_cores=cores)
    program = build_program("ocean", num_threads=cores, scale="tiny")

    print(f"Simulating {program.name!r} on a {cores}-core CMP "
          f"({program.total_instructions():,} instructions)...")

    base = run_simulation(cfg, program, technique="none")
    ptb = run_simulation(cfg, program, technique="ptb", ptb_policy="toall")

    budget = base.global_budget
    print(f"\nGlobal power budget: {budget:.1f} EU/cycle "
          f"(50% of peak; {budget / cores:.1f} per core)")
    print(f"\n{'':24s}{'base':>12s}{'PTB+2level':>12s}")
    print(f"{'cycles':24s}{base.cycles:>12,}{ptb.cycles:>12,}")
    print(f"{'avg power (EU/cyc)':24s}{base.avg_power:>12.1f}"
          f"{ptb.avg_power:>12.1f}")
    print(f"{'energy over budget':24s}{base.aopb_energy:>12.0f}"
          f"{ptb.aopb_energy:>12.0f}")
    print(f"{'mean temperature (K)':24s}{base.mean_temperature:>12.1f}"
          f"{ptb.mean_temperature:>12.1f}")

    print(f"\nPTB results vs the uncontrolled base case:")
    print(f"  AoPB reduced to {normalized_aopb_pct(ptb, base):.1f}% "
          f"of the base area (paper: ~8-25%)")
    print(f"  energy change  {normalized_energy_pct(ptb, base):+.1f}% "
          f"(paper: ~+3%)")
    print(f"  slowdown       {slowdown_pct(ptb, base):+.1f}% "
          f"(paper: a few %)")


if __name__ == "__main__":
    main()
