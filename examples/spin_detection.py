#!/usr/bin/env python3
"""Spin detection: BCT state comparison vs PTB's power-pattern signature.

Runs a 4-core workload where one core waits at a barrier, feeds the
committed-instruction stream to the BCT detector of Li et al. [12] and
the per-cycle token consumption to the paper's power-pattern detector
(Figure 6), and reports when each flags the spinning core.

Run:  python examples/spin_detection.py
"""

from repro.config import CMPConfig
from repro.core.spin import BCTSpinDetector, PowerPatternSpinDetector
from repro.power.model import EnergyModel
from repro.core.pipeline import SyncPhase
from repro.sim.cmp import CMPSimulator
from repro.trace.phases import (
    BarrierPhase,
    ComputePhase,
    ParallelProgram,
    ThreadProgram,
)


def main() -> None:
    cores = 4
    # Core 0 finishes early and spins; core 3 works 8x longer.
    threads = tuple(
        ThreadProgram(
            thread_id=tid,
            phases=(
                ComputePhase(1_000 if tid == 0 else 8_000,
                             footprint_lines=128, ilp=0.95),
                BarrierPhase(0),
            ),
        )
        for tid in range(cores)
    )
    program = ParallelProgram("spin-demo", threads)
    cfg = CMPConfig(num_cores=cores)
    sim = CMPSimulator(cfg, program, technique="none")
    energy = EnergyModel(cfg)

    # A spinning core's token rate is far below a busy core's (~65 vs
    # ~220 tokens/cycle with the default calibration); threshold between.
    power_det = PowerPatternSpinDetector(
        window=48, mean_threshold=110.0, spread_threshold=80.0
    )

    core0 = sim.cores[0]
    truth_spin_at = None
    power_detected_at = None

    for cycle in range(60_000):
        done = sum(c.done for c in sim.cores)
        if done == cores:
            break
        for c in sim.cores:
            if not c.done:
                c.step(cycle)
        if core0.sync_phase == SyncPhase.BARRIER and truth_spin_at is None:
            truth_spin_at = cycle
        tokens = core0.accountant.consumed
        if power_det.on_cycle(tokens) and power_detected_at is None:
            power_detected_at = cycle

    print("Ground truth: core 0 entered the barrier wait at cycle "
          f"{truth_spin_at}")
    if power_detected_at is not None and truth_spin_at is not None:
        lag = power_detected_at - truth_spin_at
        verdict = f"lag: {lag} cycles" if lag >= 0 else \
            "fired during a low-power compute stretch before the spin"
        print(f"Power-pattern detector flagged it at cycle "
              f"{power_detected_at} ({verdict})")
    else:
        print("Power-pattern detector did not trigger (tune thresholds)")

    # BCT detector on a synthetic committed-instruction stream: the
    # canonical spin loop is load - compare - backward branch with no
    # stores and an unchanging observed address.
    bct = BCTSpinDetector(identical_intervals=3)
    iterations_needed = 0
    while not bct.spinning:
        iterations_needed += 1
        bct.on_commit(0x5000, False, False, 0x9000)
        bct.on_commit(0x5004, False, False, 0)
        bct.on_commit(0x5008, True, False, 0)
    print(f"BCT detector needs {iterations_needed} identical loop "
          f"iterations (threshold: 3 matching BCT intervals)")
    print("\nThe paper's point: the power signature detects spinning "
          "without inspecting instructions at all - PTB gets it for free.")


if __name__ == "__main__":
    main()
