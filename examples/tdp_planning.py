#!/usr/bin/env python3
"""Section IV.D in practice: how many cores fit under a fixed TDP?

A chip architect wants to grow a 16-core, 100 W design to more cores
without a new thermal package.  Halving the per-core power budget would
ideally allow 32 cores — but only if the enforcement mechanism actually
keeps each core at its budget.  This example measures each technique's
budget-matching error on a live simulation and converts it into the
achievable core count, reproducing the paper's 19/22/29-core argument.

Run:  python examples/tdp_planning.py
"""

from repro import CMPConfig, build_program, run_simulation
from repro.analysis.tdp import (
    PAPER_CORE_COUNTS,
    PAPER_ERRORS,
    TDPScenario,
    cores_under_tdp,
)
from repro.sim.results import normalized_aopb_pct


def measure_errors(benchmark: str = "fft", cores: int = 8) -> dict:
    cfg = CMPConfig(num_cores=cores)
    program = build_program(benchmark, cores, scale="tiny")
    base = run_simulation(cfg, program, technique="none")
    errors = {}
    for tech, policy in (("dvfs", None), ("2level", None), ("ptb", "toall")):
        r = run_simulation(cfg, program, technique=tech, ptb_policy=policy)
        errors[tech] = normalized_aopb_pct(r, base) / 100.0
    return errors


def main() -> None:
    scenario = TDPScenario()  # 100 W, 16 cores, 50% budget
    print(f"Scenario: {scenario.tdp_watts:.0f} W TDP, "
          f"{scenario.baseline_cores} cores today "
          f"({scenario.baseline_per_core:.2f} W each), "
          f"budget halved to {scenario.budget_per_core:.3f} W/core\n")

    print("Measuring budget-matching errors on a live 8-core run...")
    measured = measure_errors()

    print(f"\n{'technique':10s} {'paper err':>10s} {'paper cores':>12s} "
          f"{'our err':>9s} {'our cores':>10s}")
    print("-" * 56)
    for tech in ("dvfs", "2level", "ptb"):
        paper_err = PAPER_ERRORS[tech]
        our_err = measured[tech]
        print(f"{tech:10s} {paper_err:>9.0%} "
              f"{PAPER_CORE_COUNTS[tech]:>12d} "
              f"{our_err:>8.0%} {cores_under_tdp(our_err, scenario):>10d}")
    print(f"{'ideal':10s} {'0%':>10s} {cores_under_tdp(0.0):>12d}")

    print("\nConclusion (matches the paper): accuracy is capacity — "
          "PTB's precise budget matching lets the architect pack "
          "substantially more cores into the same thermal envelope.")


if __name__ == "__main__":
    main()
