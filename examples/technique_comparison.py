#!/usr/bin/env python3
"""Compare every budget-enforcement technique on one workload.

The scenario from the paper's introduction: a datacenter operator caps
a 8-core CMP at 50% of its peak power (external power constraint /
cheaper thermal package) while it runs a SPLASH-2
application.  Which enforcement mechanism respects the cap most
accurately, and what does each cost in energy and time?

Run:  python examples/technique_comparison.py [benchmark]
"""

import sys

from repro import CMPConfig, build_program, run_simulation
from repro.sim.results import (
    normalized_aopb_pct,
    normalized_energy_pct,
    slowdown_pct,
)

RECIPES = [
    ("none", None, "no control (base case)"),
    ("dvfs", None, "5-mode DVFS, window-averaged"),
    ("dfs", None, "frequency-only scaling"),
    ("2level", None, "DVFS + microarch spikes"),
    ("ptb", "toall", "PTB+2level, ToAll"),
    ("ptb", "toone", "PTB+2level, ToOne"),
    ("ptb", "dynamic", "PTB+2level, dynamic selector"),
]


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "cholesky"
    cores = 8
    cfg = CMPConfig(num_cores=cores)
    program = build_program(benchmark, cores, scale="small")
    print(f"{benchmark!r} on {cores} cores, 50% power budget\n")

    base = None
    print(f"{'technique':28s} {'AoPB%':>7s} {'energy%':>8s} "
          f"{'slowdown%':>10s} {'throttled':>10s}")
    print("-" * 68)
    for technique, policy, label in RECIPES:
        r = run_simulation(cfg, program, technique=technique,
                           ptb_policy=policy)
        if base is None:
            base = r
            print(f"{label:28s} {'100.0':>7s} {'+0.0':>8s} {'+0.0':>10s} "
                  f"{r.throttled_cycles:>10,}")
            continue
        print(
            f"{label:28s} "
            f"{normalized_aopb_pct(r, base):>7.1f} "
            f"{normalized_energy_pct(r, base):>+8.1f} "
            f"{slowdown_pct(r, base):>+10.1f} "
            f"{r.throttled_cycles:>10,}"
        )
    print("\nLower AoPB% = more accurate budget matching. "
          "The paper's result: PTB is by far the most accurate, "
          "at a small energy premium.")


if __name__ == "__main__":
    main()
