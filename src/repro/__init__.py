"""Power Token Balancing (PTB) — reproduction of Cebrián, Aragón &
Kaxiras, *Power Token Balancing: Adapting CMPs to Power Constraints for
Parallel Multithreaded Workloads*, IPDPS 2011.

The package provides a from-scratch, cycle-level CMP simulator (OoO
cores, MOESI-coherent caches over a 2D mesh, spinlock/barrier
synchronization), a power-token accounting model with an 8K-entry PTHT,
the DVFS / DFS / 2-level baselines, and the PTB load-balancer with
ToAll / ToOne / dynamic policies — plus the workload suite and the
experiment harness regenerating every table and figure of the paper.

Quickstart::

    from repro import CMPConfig, build_program, run_simulation

    cfg = CMPConfig(num_cores=4)
    program = build_program("ocean", num_threads=4, scale="tiny")
    base = run_simulation(cfg, program, technique="none")
    ptb = run_simulation(cfg, program, technique="ptb", ptb_policy="toall")
    print(ptb.aopb_energy / base.aopb_energy)   # PTB's budget accuracy
"""

from .budget import (
    BudgetController,
    LocalBudgetController,
    PTBController,
    PTBLoadBalancer,
    TECHNIQUES,
    make_controller,
)
from .config import (
    CacheConfig,
    CMPConfig,
    CoreConfig,
    DEFAULT_CONFIG,
    DVFSConfig,
    DVFS_MODES,
    MemoryConfig,
    NetworkConfig,
    PowerConfig,
    PTBConfig,
    TechConfig,
)
from .sim import (
    CMPSimulator,
    SimResult,
    normalized_aopb_pct,
    normalized_energy_pct,
    run_simulation,
    slowdown_pct,
)
from .workloads import (
    SCALES,
    BenchmarkSpec,
    benchmark_names,
    build_program,
    spec_of,
    table2_rows,
)

__version__ = "1.0.0"

__all__ = [
    "BudgetController",
    "LocalBudgetController",
    "PTBController",
    "PTBLoadBalancer",
    "TECHNIQUES",
    "make_controller",
    "CacheConfig",
    "CMPConfig",
    "CoreConfig",
    "DEFAULT_CONFIG",
    "DVFSConfig",
    "DVFS_MODES",
    "MemoryConfig",
    "NetworkConfig",
    "PowerConfig",
    "PTBConfig",
    "TechConfig",
    "CMPSimulator",
    "SimResult",
    "normalized_aopb_pct",
    "normalized_energy_pct",
    "run_simulation",
    "slowdown_pct",
    "SCALES",
    "BenchmarkSpec",
    "benchmark_names",
    "build_program",
    "spec_of",
    "table2_rows",
    "__version__",
]
