"""``python -m repro.analysis`` — regenerate the paper's figures."""

import sys

from .cli import main

sys.exit(main())
