"""Command-line report generator.

Regenerates every table and figure of the paper as plain-text reports::

    python -m repro.analysis            # all figures -> ./results/
    python -m repro.analysis fig9 fig14 # a subset
    python -m repro.analysis --scale tiny --out /tmp/r  # quick pass
    python -m repro.analysis --jobs 8   # fan cold runs over 8 workers

Results come from the same cached :class:`ExperimentRunner` the
benchmark harness uses, so a warm cache renders everything in seconds.
On a cold cache the CLI unions the recipe lists of every requested
figure and fans them out over ``--jobs`` worker processes (default:
``REPRO_JOBS`` env var, else ``os.cpu_count()``); gather order is
deterministic, so reports are byte-identical for any worker count.
Each invocation appends a wall-clock entry to ``BENCH_runner.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

from . import experiments as ex
from .report import (
    format_breakdown,
    format_metric_grid,
    format_spin_power,
    format_table,
)
from .runner import ExperimentRunner
from .tdp import sec4d_table


def _render_table1(runner) -> str:
    return ex.table1_configuration()


def _render_table2(runner) -> str:
    return format_table(
        ["suite", "benchmark", "size"], ex.table2_benchmarks(),
        title="Table 2 - benchmarks and working sets",
    )


def _render_fig2(runner) -> str:
    data = ex.fig2_naive_split(runner)
    return "\n\n".join([
        format_metric_grid(data, "aopb_pct",
                           title="Figure 2 (right) - AoPB %, naive split"),
        format_metric_grid(data, "energy_pct",
                           title="Figure 2 (left) - energy %, naive split"),
    ])


def _render_fig3(runner) -> str:
    return format_breakdown(
        ex.fig3_time_breakdown(runner),
        title="Figure 3 - execution-time breakdown",
    )


def _render_fig4(runner) -> str:
    return format_spin_power(
        ex.fig4_spin_power(runner),
        title="Figure 4 - spin power / total power",
    )


def _render_fig5(runner) -> str:
    data = ex.fig5_motivation()
    rows = [
        (r["cycle"], str(r["powers"]), r["total"],
         "yes" if r["over_global"] else "no", str(r["naive_throttled"]))
        for r in data["rows"]
    ]
    return format_table(
        ["cycle", "powers", "total", "over 40W", "naive throttles"],
        rows, title="Figure 5 - motivating example",
    )


def _render_fig6(runner) -> str:
    d = ex.fig6_spin_power_trace(runner)
    rows = [(k, f"{v:.3f}" if isinstance(v, float) else v)
            for k, v in d.items()]
    return format_table(["metric", "value"], rows,
                        title="Figure 6 - spin power signature")


def _render_fig7(runner) -> str:
    rows = [
        (i, str(s["spinning"]), s["pool"], str(s["effective_budgets"]))
        for i, s in enumerate(ex.fig7_barrier_token_flow())
    ]
    return format_table(["step", "spinning", "pool", "budgets"], rows,
                        title="Figure 7 - barrier token flow")


def _render_fig8(runner) -> str:
    data = ex.fig8_balancer_constants()
    rows = [(n, v["round_trip_cycles"], v["power_overhead_pct"])
            for n, v in sorted(data.items())]
    return format_table(["cores", "round trip (cy)", "overhead %"], rows,
                        title="Figure 8 - balancer constants")


def _sweep_rows(data) -> list:
    rows = []
    for col, agg in data.items():
        for tech, m in agg.items():
            rows.append((col, tech, round(m["energy_pct"], 1),
                         round(m["aopb_pct"], 1)))
    return rows


def _render_fig9(runner) -> str:
    return format_table(
        ["column", "technique", "energy %", "AoPB %"],
        _sweep_rows(ex.fig9_core_policy_sweep(runner)),
        title="Figure 9 - core-count x policy sweep",
    )


def _render_fig10(runner) -> str:
    data = ex.fig10_detail_toall(runner)
    return "\n\n".join([
        format_metric_grid(data, "aopb_pct",
                           title="Figure 10 - AoPB %, 16c ToAll"),
        format_metric_grid(data, "energy_pct",
                           title="Figure 10 - energy %, 16c ToAll"),
    ])


def _render_fig11(runner) -> str:
    data = ex.fig11_detail_toone(runner)
    return "\n\n".join([
        format_metric_grid(data, "aopb_pct",
                           title="Figure 11 - AoPB %, 16c ToOne"),
        format_metric_grid(data, "energy_pct",
                           title="Figure 11 - energy %, 16c ToOne"),
    ])


def _render_fig12(runner) -> str:
    data = ex.fig12_dynamic_policy(runner)
    return "\n\n".join([
        format_metric_grid(data, "aopb_pct",
                           title="Figure 12 - AoPB %, dynamic selector"),
        format_metric_grid(data, "energy_pct",
                           title="Figure 12 - energy %, dynamic selector"),
    ])


def _render_fig13(runner) -> str:
    data = ex.fig13_performance(runner)
    rows = [(k, round(v, 1)) for k, v in data.items()]
    return format_table(["benchmark", "slowdown %"], rows,
                        title="Figure 13 - PTB (dynamic) slowdown")


def _render_fig14(runner) -> str:
    return format_table(
        ["column", "technique", "energy %", "AoPB %"],
        _sweep_rows(ex.fig14_relaxed_ptb(runner)),
        title="Figure 14 - strict vs relaxed PTB",
    )


def _render_sec4d(runner) -> str:
    sweep = ex.fig9_core_policy_sweep(runner, core_counts=(16,),
                                      policies=("toall",))
    agg = sweep["16Core_Toall"]
    measured = {
        t: agg[t]["aopb_pct"] / 100.0 for t in ("dvfs", "2level", "ptb")
    }
    table = sec4d_table(measured)
    rows = [
        (t, row.get("paper_error", ""), row.get("paper_cores", ""),
         round(row.get("measured_error", float("nan")), 2)
         if "measured_error" in row else "-",
         row.get("measured_cores", "-"))
        for t, row in table.items()
    ]
    return format_table(
        ["technique", "paper err", "paper cores", "our err", "our cores"],
        rows, title="Section IV.D - cores under a 100 W TDP",
    )


RENDERERS: Dict[str, Callable] = {
    "table1": _render_table1,
    "table2": _render_table2,
    "fig2": _render_fig2,
    "fig3": _render_fig3,
    "fig4": _render_fig4,
    "fig5": _render_fig5,
    "fig6": _render_fig6,
    "fig7": _render_fig7,
    "fig8": _render_fig8,
    "fig9": _render_fig9,
    "fig10": _render_fig10,
    "fig11": _render_fig11,
    "fig12": _render_fig12,
    "fig13": _render_fig13,
    "fig14": _render_fig14,
    "sec4d": _render_sec4d,
}


#: Version of the ``BENCH_runner.json`` entry schema.  v2 added
#: provenance (``git_sha`` + ``schema_version``); entries written
#: before versioning are stamped v1 on the next rewrite.
BENCH_SCHEMA_VERSION = 2


def _git_sha() -> str:
    """Short commit SHA of the working tree ("unknown" outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parents[3],
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def load_bench(path: Path) -> List[Dict]:
    """Entries of ``BENCH_runner.json``, legacy entries normalised.

    Every returned entry carries ``schema_version`` and ``git_sha`` keys
    so consumers see one shape: pre-versioning entries are stamped
    ``schema_version: 1`` / ``git_sha: None``.  A corrupt or missing
    file loads as empty, not a crash.
    """
    records: List[Dict] = []
    try:
        loaded = json.loads(path.read_text())
        if isinstance(loaded, dict):
            records = [
                e for e in loaded.get("entries", []) if isinstance(e, dict)
            ]
    except (OSError, ValueError):
        return []
    for entry in records:
        entry.setdefault("schema_version", 1)
        entry.setdefault("git_sha", None)
    return records


def _emit_bench(path: Path, entry: Dict) -> None:
    """Append one wall-clock record to ``BENCH_runner.json``.

    The file accumulates entries across invocations (``--jobs 1`` vs
    ``--jobs 4`` runs land side by side), so speedup comparisons read
    one file.  Every entry carries provenance (schema version, git SHA,
    scale) so bench trajectories stay comparable across PRs; legacy
    entries are normalised in place by :func:`load_bench`.
    """
    records = load_bench(path)
    records.append(entry)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps({"entries": records}, indent=2) + "\n")
    tmp.replace(path)


def _truncation_note(runner: ExperimentRunner, name: str) -> str:
    """Footnote naming the figure's truncated runs (empty when none).

    Appended to the rendered table so a run that hit ``max_cycles``
    (partial energy/AoPB aggregates) is never reported silently.
    """
    decl = ex.FIGURE_RECIPES.get(name)
    if decl is None:
        return ""
    bad = runner.truncated_of(decl())
    if not bad:
        return ""
    labels = [
        f"{r.benchmark} x{r.cores} {r.technique}"
        + (f"/{r.policy}" if r.policy else "")
        for r in bad
    ]
    return (
        f"\n\nNOTE: {len(bad)} run(s) hit max_cycles before every thread "
        "finished; their energy/AoPB aggregates cover only the simulated "
        "prefix: " + ", ".join(labels)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("figures", nargs="*",
                        help=f"subset to render (default: all of "
                             f"{', '.join(RENDERERS)})")
    parser.add_argument("--scale", default=None,
                        help="simulation scale (tiny/small/medium/large)")
    parser.add_argument("--out", default="results",
                        help="output directory (default ./results)")
    parser.add_argument("--stdout", action="store_true",
                        help="print to stdout instead of files")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for cold simulations "
                             "(default: REPRO_JOBS, else os.cpu_count())")
    parser.add_argument("--bench-out", default="BENCH_runner.json",
                        help="wall-clock benchmark record "
                             "(default ./BENCH_runner.json)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="also run one telemetry-enabled simulation "
                             "of the first requested figure's PTB recipe "
                             "and write a Perfetto trace here")
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")

    wanted = args.figures or list(RENDERERS)
    unknown = [f for f in wanted if f not in RENDERERS]
    if unknown:
        parser.error(f"unknown figures: {unknown}; "
                     f"available: {sorted(RENDERERS)}")

    runner = ExperimentRunner(scale=args.scale, jobs=args.jobs)
    out_dir = Path(args.out)
    if not args.stdout:
        out_dir.mkdir(parents=True, exist_ok=True)

    t0 = time.perf_counter()
    # Plan the whole report up front: one dedupe + fan-out across every
    # requested figure, so cross-figure shared recipes (the base runs)
    # simulate once and cold recipes use the full worker width.
    recipes = ex.recipes_for(wanted)
    if recipes:
        runner.run_many(recipes)
    t_sim = time.perf_counter() - t0

    for name in wanted:
        text = RENDERERS[name](runner) + _truncation_note(runner, name)
        if args.stdout:
            print(text)
            print()
        else:
            path = out_dir / f"{name}.txt"
            path.write_text(text + "\n")
            print(f"wrote {path}")
    wall = time.perf_counter() - t0

    if recipes:  # static-only renders don't benchmark the runner
        _emit_bench(Path(args.bench_out), {
            "schema_version": BENCH_SCHEMA_VERSION,
            "git_sha": _git_sha(),
            "jobs": runner.jobs,
            "cpu_count": os.cpu_count(),
            "scale": str(runner.scale),
            "figures": wanted,
            "simulate_seconds": round(t_sim, 3),
            "wall_seconds": round(wall, 3),
            **runner.stats,
        })
        print(f"[bench] jobs={runner.jobs} scale={runner.scale} "
              f"simulated={runner.stats['simulated']} "
              f"(mem {runner.stats['mem_hits']} / disk "
              f"{runner.stats['disk_hits']} hits) wall={wall:.2f}s")

    if args.trace:
        _run_trace(runner, wanted, args.trace)
    return 0


def _run_trace(runner: ExperimentRunner, wanted, path: str) -> None:
    """Trace the first requested figure's PTB recipe to ``path``.

    Traced runs bypass the result cache (a cache hit has no live event
    stream) and the runner's stats, so the bench entry above is
    unaffected.  Lazy import: ``repro.telemetry`` pulls this package
    back in for its summary table.
    """
    from ..telemetry.cli import pick_recipe, run_traced
    from ..telemetry.export import validate_chrome_trace, write_chrome_trace
    from ..telemetry.summary import phase_breakdown_table

    fig = next((f for f in wanted if f in ex.FIGURE_RECIPES), "fig9")
    recipe = pick_recipe(fig)
    sim, result = run_traced(
        recipe.benchmark, recipe.cores, technique=recipe.technique,
        policy=recipe.policy, budget_fraction=recipe.budget_fraction,
        scale=str(runner.scale), max_cycles=runner.max_cycles,
        seed=runner.seed,
    )
    trace = write_chrome_trace(sim.telemetry, path)
    problems = validate_chrome_trace(trace)
    for p in problems:
        print(f"[trace] schema: {p}", file=sys.stderr)
    print(f"[trace] {fig}: {recipe.benchmark} x{recipe.cores} "
          f"{recipe.technique}"
          + (f"/{recipe.policy}" if recipe.policy else "")
          + f" -> {path} ({result.cycles} cycles, "
          f"{sim.telemetry.bus.total_events} events)")
    print(phase_breakdown_table(sim.telemetry))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
