"""Per-figure experiment definitions.

One function per table/figure of the paper.  Each returns plain data
structures (dicts keyed by benchmark / technique) that the benchmark
harness prints and EXPERIMENTS.md records.  The mapping to the paper:

========  ==========================================================
table1    Simulated CMP configuration
table2    Benchmarks and input working sets
fig2      Naive equal-split DVFS/DFS/2level, 16 cores, 50% budget
fig3      Execution-time breakdown vs core count
fig4      Spinlock power vs core count
fig5      Motivating per-cycle power example (4 cores, 40 W)
fig6      Per-cycle power signature of a spinning core
fig7      PTB token flow at a barrier (worked example)
fig8      PTB balancer latency/overhead constants
fig9      Energy & AoPB vs core count x {ToAll, ToOne}
fig10/11  Per-benchmark detail at 16 cores (ToAll / ToOne)
fig12     Dynamic policy selector detail
fig13     Performance (slowdown) under the dynamic selector
fig14     Relaxed (+20%) PTB vs strict PTB
sec4d     Cores-under-TDP analysis
========  ==========================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..budget.ptb import PTBLoadBalancer
from ..config import CMPConfig, DEFAULT_CONFIG
from ..sim.results import (
    SimResult,
    normalized_aopb_pct,
    normalized_energy_pct,
    slowdown_pct,
)
from ..workloads import benchmark_names, table2_rows
from .runner import ExperimentRunner, Recipe

#: Techniques evaluated against the naive split (Figure 2).
NAIVE_TECHNIQUES: Tuple[Tuple[str, Optional[str]], ...] = (
    ("dvfs", None),
    ("dfs", None),
    ("2level", None),
)

#: Techniques in the PTB comparison figures (Figures 9-12).
PTB_FIGURE_TECHNIQUES: Tuple[Tuple[str, Optional[str]], ...] = (
    ("dvfs", None),
    ("dfs", None),
    ("2level", None),
    ("ptb", None),  # policy filled per figure
)

CORE_COUNTS: Tuple[int, ...] = (2, 4, 8, 16)


# --------------------------------------------------------------------- #
# recipe declarations                                                    #
#                                                                        #
# Each cached figure declares its full recipe list up front; the figure  #
# function hands the list to ``runner.run_many`` (plan -> fan out ->     #
# gather) before rendering, so cold recipes simulate in parallel and     #
# the rendering loops below always hit the warm memo.  The CLI unions    #
# these lists across figures for one whole-report fan-out.               #
# --------------------------------------------------------------------- #

def fig2_recipes(
    cores: int = 16,
    benchmarks: Optional[Sequence[str]] = None,
) -> List[Recipe]:
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    return [Recipe(b, cores) for b in names] + [
        Recipe(b, cores, t, p) for b in names for t, p in NAIVE_TECHNIQUES
    ]


def fig3_recipes(
    core_counts: Sequence[int] = CORE_COUNTS,
    benchmarks: Optional[Sequence[str]] = None,
) -> List[Recipe]:
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    return [Recipe(b, n) for b in names for n in core_counts]


#: Figure 4 reuses Figure 3's base runs verbatim.
fig4_recipes = fig3_recipes


def _detail_recipes(
    policy: Optional[str],
    cores: int,
    benchmarks: Optional[Sequence[str]],
    relax: float = 0.0,
) -> List[Recipe]:
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    out = [Recipe(b, cores) for b in names]
    for b in names:
        for technique, _ in PTB_FIGURE_TECHNIQUES:
            pol = policy if technique == "ptb" else None
            out.append(Recipe(b, cores, technique, pol,
                              relax if technique == "ptb" else 0.0))
    return out


def fig9_recipes(
    core_counts: Sequence[int] = CORE_COUNTS,
    policies: Sequence[str] = ("toone", "toall"),
    benchmarks: Optional[Sequence[str]] = None,
) -> List[Recipe]:
    out: List[Recipe] = []
    for policy in policies:
        for cores in core_counts:
            out.extend(_detail_recipes(policy, cores, benchmarks))
    return out


def fig10_recipes(
    cores: int = 16, benchmarks: Optional[Sequence[str]] = None
) -> List[Recipe]:
    return _detail_recipes("toall", cores, benchmarks)


def fig11_recipes(
    cores: int = 16, benchmarks: Optional[Sequence[str]] = None
) -> List[Recipe]:
    return _detail_recipes("toone", cores, benchmarks)


def fig12_recipes(
    cores: int = 16, benchmarks: Optional[Sequence[str]] = None
) -> List[Recipe]:
    return _detail_recipes("dynamic", cores, benchmarks)


def fig13_recipes(
    cores: int = 16, benchmarks: Optional[Sequence[str]] = None
) -> List[Recipe]:
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    return [Recipe(b, cores) for b in names] + [
        Recipe(b, cores, "ptb", "dynamic") for b in names
    ]


def fig14_recipes(
    core_counts: Sequence[int] = CORE_COUNTS,
    policies: Sequence[str] = ("toone", "toall"),
    relax: float = 0.2,
    benchmarks: Optional[Sequence[str]] = None,
) -> List[Recipe]:
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    out = fig9_recipes(core_counts, policies, names)
    out.extend(
        Recipe(b, cores, "ptb", policy, relax)
        for policy in policies for cores in core_counts for b in names
    )
    return out


def sec4d_recipes(
    benchmarks: Optional[Sequence[str]] = None,
) -> List[Recipe]:
    return fig9_recipes(core_counts=(16,), policies=("toall",),
                        benchmarks=benchmarks)


#: Figure name -> zero-argument recipe declaration with the figure's
#: defaults (what ``python -m repro.analysis`` renders).  Figures absent
#: here are static or uncached (tables, worked examples, fig6 traces).
FIGURE_RECIPES: Dict[str, Callable[[], List[Recipe]]] = {
    "fig2": fig2_recipes,
    "fig3": fig3_recipes,
    "fig4": fig4_recipes,
    "fig9": fig9_recipes,
    "fig10": fig10_recipes,
    "fig11": fig11_recipes,
    "fig12": fig12_recipes,
    "fig13": fig13_recipes,
    "fig14": fig14_recipes,
    "sec4d": sec4d_recipes,
}


def recipes_for(figures: Iterable[str]) -> List[Recipe]:
    """The union (order-preserving, deduplicated) of the named figures'
    recipe lists."""
    seen: set = set()
    out: List[Recipe] = []
    for name in figures:
        decl = FIGURE_RECIPES.get(name)
        if decl is None:
            continue
        for recipe in decl():
            if recipe not in seen:
                seen.add(recipe)
                out.append(recipe)
    return out


# --------------------------------------------------------------------- #
# tables                                                                 #
# --------------------------------------------------------------------- #

def table1_configuration(cfg: CMPConfig = DEFAULT_CONFIG) -> str:
    """Table 1: the simulated CMP configuration."""
    return cfg.describe()


def table2_benchmarks() -> List[Tuple[str, str, str]]:
    """Table 2: (suite, benchmark, input size) rows."""
    return table2_rows()


# --------------------------------------------------------------------- #
# figure 2 — naive equal split                                           #
# --------------------------------------------------------------------- #

def fig2_naive_split(
    runner: ExperimentRunner,
    cores: int = 16,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Normalized energy and AoPB under the naive power split.

    Returns ``{benchmark: {technique: {"energy_pct", "aopb_pct"}}}`` plus
    an ``"Avg."`` row, as in Figure 2.
    """
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    runner.run_many(fig2_recipes(cores, names))
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    sums: Dict[str, List[float]] = {t: [0.0, 0.0] for t, _ in NAIVE_TECHNIQUES}
    for b in names:
        base = runner.base(b, cores)
        row: Dict[str, Dict[str, float]] = {}
        for technique, policy in NAIVE_TECHNIQUES:
            r = runner.run(b, cores, technique, policy)
            e = normalized_energy_pct(r, base)
            a = normalized_aopb_pct(r, base)
            row[technique] = {"energy_pct": e, "aopb_pct": a}
            sums[technique][0] += e
            sums[technique][1] += a
        out[b] = row
    out["Avg."] = {
        t: {"energy_pct": s[0] / len(names), "aopb_pct": s[1] / len(names)}
        for t, s in sums.items()
    }
    return out


# --------------------------------------------------------------------- #
# figures 3 & 4 — breakdown and spin power vs cores                      #
# --------------------------------------------------------------------- #

def fig3_time_breakdown(
    runner: ExperimentRunner,
    core_counts: Sequence[int] = CORE_COUNTS,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Execution-time fractions per sync phase vs core count."""
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    runner.run_many(fig3_recipes(core_counts, names))
    out: Dict[str, Dict[int, Dict[str, float]]] = {}
    for b in names:
        out[b] = {}
        for n in core_counts:
            out[b][n] = runner.base(b, n).phase_fractions()
    return out


def fig4_spin_power(
    runner: ExperimentRunner,
    core_counts: Sequence[int] = CORE_COUNTS,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[int, float]]:
    """Spin power as a fraction of total power vs core count."""
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    runner.run_many(fig4_recipes(core_counts, names))
    out: Dict[str, Dict[int, float]] = {}
    for b in names:
        out[b] = {
            n: runner.base(b, n).spin_fraction_of_energy for n in core_counts
        }
    avg = {
        n: sum(out[b][n] for b in names) / len(names) for n in core_counts
    }
    out["Avg."] = avg
    return out


# --------------------------------------------------------------------- #
# figures 5-8 — worked examples and constants                            #
# --------------------------------------------------------------------- #

def fig5_motivation() -> Dict[str, object]:
    """The 4-core, 40 W motivating example of Figure 5.

    The paper's numbers: per-cycle core powers over four cycles; global
    budget 40 W, naive local budgets 10 W.  Returns which cores would be
    throttled naively versus with balancing.
    """
    # Per-cycle core powers chosen to match the paper's narration:
    # cycle 1 - cores 3&4 over, cores 1&2 have 4+2 W spare;
    # cycle 2 - core 3 over, cores 1&2 have 2+1 W spare;
    # cycle 3 - cores over local shares but the CMP is under 40 W;
    # cycle 4 - every core over its local share.
    cycles = [
        (6, 8, 15, 13),
        (8, 9, 14, 10),
        (8, 9, 11, 2),
        (14, 13, 12, 11),
    ]
    global_budget = 40
    local = global_budget / 4
    rows = []
    for cyc, powers in enumerate(cycles, start=1):
        total = sum(powers)
        over_global = total > global_budget
        naive_throttled = [
            i for i, p in enumerate(powers) if over_global and p > local
        ]
        spare = sum(max(0.0, local - p) for p in powers)
        need = sum(max(0.0, p - local) for p in powers)
        balanced_throttled = (
            naive_throttled if (over_global and need > spare) else []
        )
        rows.append(
            {
                "cycle": cyc,
                "powers": powers,
                "total": total,
                "over_global": over_global,
                "naive_throttled": naive_throttled,
                "spare": spare,
                "need": need,
                "ptb_throttled": balanced_throttled,
            }
        )
    return {"global_budget": global_budget, "local_budget": local, "rows": rows}


def fig6_spin_power_trace(
    runner: ExperimentRunner,
    benchmark: str = "ocean",
    cores: int = 4,
    max_cycles: int = 40_000,
) -> Dict[str, float]:
    """Per-cycle power signature of a core entering a spin state.

    Reruns a small configuration with traces on and reports the busy
    (pre-spin) and stable spinning power levels of the most-spinning
    core, normalized as in Figure 6 (spin power < busy power, stable).
    """
    from ..sim.cmp import CMPSimulator
    from ..workloads import build_program

    cfg = CMPConfig(num_cores=cores)
    program = build_program(benchmark, cores, scale="tiny", seed=runner.seed)
    sim = CMPSimulator(cfg, program, technique="none",
                       collect_traces=True, seed=runner.seed)
    result = sim.run(max_cycles)
    traces = result.core_power_traces
    phase = result.phase_cycles
    # Pick the core with the most barrier time.
    spin_core = max(range(cores), key=lambda i: phase[i][3])
    series = traces[:, spin_core]
    spinning = [
        series[t]
        for t in range(len(series))
        if series[t] < series.mean()
    ]
    busy = [s for s in series if s >= series.mean()]
    import numpy as np

    spin_level = float(np.mean(spinning)) if spinning else 0.0
    busy_level = float(np.mean(busy)) if busy else 0.0
    return {
        "core": spin_core,
        "busy_power": busy_level,
        "spin_power": spin_level,
        "spin_to_busy_ratio": spin_level / busy_level if busy_level else 0.0,
        "spin_std": float(np.std(spinning)) if spinning else 0.0,
    }


def fig7_barrier_token_flow() -> List[Dict[str, object]]:
    """The 4-core barrier walkthrough of Figure 7.

    Local budgets are 10 tokens; a spinning core consumes 4 and donates
    6.  As cores reach the barrier one by one, the remaining cores'
    effective budgets grow: 12, 16, 28 — exactly the paper's numbers
    (10+2, 10+6, 10+18).
    """
    steps = []
    spinning: List[int] = []
    for newly_spinning in (1, 2, 0):  # cores reach the barrier in turn
        spinning.append(newly_spinning)
        running = [c for c in range(4) if c not in spinning]
        pool = 6 * len(spinning)
        overs = [0, 0, 0, 0]
        for c in running:
            overs[c] = 1  # every running core welcomes extra tokens
        grants = PTBLoadBalancer.distribute(pool, overs, "toall")
        steps.append(
            {
                "spinning": list(spinning),
                "running": running,
                "pool": pool,
                "effective_budgets": {
                    c: 10 + grants[c] for c in running
                },
            }
        )
    return steps


def fig8_balancer_constants(cfg: CMPConfig = DEFAULT_CONFIG) -> Dict[int, Dict[str, float]]:
    """PTB load-balancer latency and power overhead per core count."""
    return {
        n: {
            "round_trip_cycles": cfg.ptb.round_trip_latency(n),
            "power_overhead_pct": cfg.ptb.power_overhead * 100.0,
        }
        for n in CORE_COUNTS
    }


# --------------------------------------------------------------------- #
# figures 9-14 — the PTB evaluation                                      #
# --------------------------------------------------------------------- #

def _technique_metrics(
    runner: ExperimentRunner,
    benchmark: str,
    cores: int,
    technique: str,
    policy: Optional[str],
    relax: float = 0.0,
) -> Dict[str, float]:
    base = runner.base(benchmark, cores)
    r = runner.run(benchmark, cores, technique, policy, relax=relax)
    return {
        "energy_pct": normalized_energy_pct(r, base),
        "aopb_pct": normalized_aopb_pct(r, base),
        "slowdown_pct": slowdown_pct(r, base),
    }


def fig9_core_policy_sweep(
    runner: ExperimentRunner,
    core_counts: Sequence[int] = CORE_COUNTS,
    policies: Sequence[str] = ("toone", "toall"),
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Average energy & AoPB per {core count x policy} per technique.

    Returns ``{"<cores>Core_<Policy>": {technique: metrics}}`` — the
    eight column groups of Figure 9.  DVFS/DFS/2level do not depend on
    the PTB policy; their numbers repeat across policy groups as in the
    paper's figure.
    """
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    runner.run_many(fig9_recipes(core_counts, policies, names))
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for policy in policies:
        for cores in core_counts:
            col = f"{cores}Core_{policy.capitalize()}"
            agg: Dict[str, Dict[str, float]] = {}
            for technique, _ in PTB_FIGURE_TECHNIQUES:
                pol = policy if technique == "ptb" else None
                sums = [0.0, 0.0, 0.0]
                for b in names:
                    m = _technique_metrics(runner, b, cores, technique, pol)
                    sums[0] += m["energy_pct"]
                    sums[1] += m["aopb_pct"]
                    sums[2] += m["slowdown_pct"]
                agg[technique] = {
                    "energy_pct": sums[0] / len(names),
                    "aopb_pct": sums[1] / len(names),
                    "slowdown_pct": sums[2] / len(names),
                }
            out[col] = agg
    return out


def _detail_figure(
    runner: ExperimentRunner,
    policy: Optional[str],
    cores: int,
    benchmarks: Optional[Sequence[str]],
    relax: float = 0.0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    runner.run_many(_detail_recipes(policy, cores, names, relax))
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    sums: Dict[str, List[float]] = {}
    for b in names:
        row: Dict[str, Dict[str, float]] = {}
        for technique, _ in PTB_FIGURE_TECHNIQUES:
            pol = policy if technique == "ptb" else None
            m = _technique_metrics(runner, b, cores, technique, pol,
                                   relax=relax if technique == "ptb" else 0.0)
            row[technique] = m
            s = sums.setdefault(technique, [0.0, 0.0, 0.0])
            s[0] += m["energy_pct"]
            s[1] += m["aopb_pct"]
            s[2] += m["slowdown_pct"]
        out[b] = row
    out["Avg."] = {
        t: {
            "energy_pct": s[0] / len(names),
            "aopb_pct": s[1] / len(names),
            "slowdown_pct": s[2] / len(names),
        }
        for t, s in sums.items()
    }
    return out


def fig10_detail_toall(
    runner: ExperimentRunner,
    cores: int = 16,
    benchmarks: Optional[Sequence[str]] = None,
):
    """Per-benchmark energy & AoPB, 16 cores, ToAll policy."""
    return _detail_figure(runner, "toall", cores, benchmarks)


def fig11_detail_toone(
    runner: ExperimentRunner,
    cores: int = 16,
    benchmarks: Optional[Sequence[str]] = None,
):
    """Per-benchmark energy & AoPB, 16 cores, ToOne policy."""
    return _detail_figure(runner, "toone", cores, benchmarks)


def fig12_dynamic_policy(
    runner: ExperimentRunner,
    cores: int = 16,
    benchmarks: Optional[Sequence[str]] = None,
):
    """Per-benchmark energy & AoPB with the dynamic policy selector."""
    return _detail_figure(runner, "dynamic", cores, benchmarks)


def fig13_performance(
    runner: ExperimentRunner,
    cores: int = 16,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Per-benchmark slowdown of PTB+2level (dynamic selector)."""
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    runner.run_many(fig13_recipes(cores, names))
    out: Dict[str, float] = {}
    for b in names:
        base = runner.base(b, cores)
        r = runner.run(b, cores, "ptb", "dynamic")
        out[b] = slowdown_pct(r, base)
    out["Avg."] = sum(out[b] for b in names) / len(names)
    return out


def fig14_relaxed_ptb(
    runner: ExperimentRunner,
    core_counts: Sequence[int] = CORE_COUNTS,
    policies: Sequence[str] = ("toone", "toall"),
    relax: float = 0.2,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Figure 9 plus the relaxed ("Restricted" in the figure legend)
    PTB variant that trades accuracy for energy (Section IV.C)."""
    names = list(benchmarks if benchmarks is not None else benchmark_names())
    runner.run_many(fig14_recipes(core_counts, policies, relax, names))
    out = fig9_core_policy_sweep(runner, core_counts, policies, names)
    for policy in policies:
        for cores in core_counts:
            col = f"{cores}Core_{policy.capitalize()}"
            sums = [0.0, 0.0, 0.0]
            for b in names:
                m = _technique_metrics(
                    runner, b, cores, "ptb", policy, relax=relax
                )
                sums[0] += m["energy_pct"]
                sums[1] += m["aopb_pct"]
                sums[2] += m["slowdown_pct"]
            out[col]["ptb_relaxed"] = {
                "energy_pct": sums[0] / len(names),
                "aopb_pct": sums[1] / len(names),
                "slowdown_pct": sums[2] / len(names),
            }
    return out
