"""Plain-text rendering of experiment results.

The benchmark harness prints these tables; EXPERIMENTS.md embeds them.
Formatting is deliberately simple (fixed-width text) so diffs between
regenerated results stay readable.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table."""
    cols = len(headers)
    widths = [len(str(h)) for h in headers]
    str_rows = []
    for row in rows:
        if len(row) != cols:
            raise ValueError(f"row {row!r} does not match {cols} headers")
        srow = [
            f"{v:+.1f}" if isinstance(v, float) else str(v) for v in row
        ]
        str_rows.append(srow)
        for i, s in enumerate(srow):
            widths[i] = max(widths[i], len(s))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for srow in str_rows:
        lines.append("  ".join(s.rjust(widths[i]) for i, s in enumerate(srow)))
    return "\n".join(lines)


def format_metric_grid(
    data: Mapping[str, Mapping[str, Mapping[str, float]]],
    metric: str,
    title: Optional[str] = None,
    techniques: Optional[Sequence[str]] = None,
) -> str:
    """Render ``{row: {technique: {metric: value}}}`` as a table."""
    rows = list(data.keys())
    if techniques is None:
        first = data[rows[0]]
        techniques = list(first.keys())
    table_rows = []
    for r in rows:
        table_rows.append(
            [r] + [data[r].get(t, {}).get(metric, float("nan"))
                   for t in techniques]
        )
    return format_table(["benchmark"] + list(techniques), table_rows, title)


def format_breakdown(
    data: Mapping[str, Mapping[int, Mapping[str, float]]],
    title: Optional[str] = None,
) -> str:
    """Render the Figure 3-style execution-time breakdown."""
    rows = []
    for bench, per_cores in data.items():
        for cores, fracs in per_cores.items():
            rows.append(
                [
                    bench,
                    cores,
                    f"{100 * fracs['lock_acq']:.1f}",
                    f"{100 * fracs['lock_rel']:.1f}",
                    f"{100 * fracs['barrier']:.1f}",
                    f"{100 * fracs['busy']:.1f}",
                ]
            )
    return format_table(
        ["benchmark", "cores", "lock-acq%", "lock-rel%", "barrier%", "busy%"],
        rows,
        title,
    )


def format_spin_power(
    data: Mapping[str, Mapping[int, float]],
    title: Optional[str] = None,
) -> str:
    """Render the Figure 4-style spin-power table."""
    core_counts = sorted(next(iter(data.values())).keys())
    rows = [
        [bench] + [f"{100 * data[bench][n]:.1f}" for n in core_counts]
        for bench in data
    ]
    return format_table(
        ["benchmark"] + [f"{n}c %" for n in core_counts], rows, title
    )
