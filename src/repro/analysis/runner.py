"""Experiment runner with a persistent, concurrency-safe result cache.

Every figure of the paper aggregates dozens of simulation runs, and
several figures share runs (the base case of Figure 2 is the base case
of Figures 9-14).  The runner memoises :class:`SimResult` objects on
disk, keyed by the full run recipe, so regenerating all figures costs
each distinct simulation exactly once.

The runner is a three-stage machine:

1. **plan** — collect every :class:`Recipe` a figure set needs, dedupe
   them, and partition into warm (memory/disk cache hit) and cold.
2. **fan out** — simulate the cold recipes, either inline (``jobs=1``)
   or across a ``ProcessPoolExecutor`` (``--jobs N`` /  ``REPRO_JOBS``,
   default ``os.cpu_count()``).  Workers re-build the simulation from
   the recipe + seed, so results are identical however they are
   scheduled.
3. **gather** — collect ``SimResult`` objects back in recipe order, so
   serial and parallel renders are byte-identical.

The disk cache is safe under concurrency and crashes:

* writes go to a temp file in the cache directory and are published
  with ``os.replace`` (atomic on POSIX and Windows), so a reader never
  observes a half-written entry;
* each entry takes a per-entry advisory lock (``fcntl``) around the
  check-simulate-store critical section, so two *processes* racing on
  the same recipe simulate it once;
* an entry that fails to unpickle is quarantined (renamed to
  ``*.corrupt``) for inspection instead of being silently unlinked.

Set the environment variable ``REPRO_CACHE`` to relocate the cache,
``REPRO_SCALE`` (tiny/small/medium/large) to change the default
simulation scale, and ``REPRO_JOBS`` to change the default worker
count.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

try:  # POSIX advisory locking; degrade gracefully elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..config import CMPConfig
from ..sim.cmp import CMPSimulator
from ..sim.results import SimResult
from ..workloads import build_program

#: Bump when any model change invalidates previously cached results.
#: v8: PTBController charges donors for every in-flight pledge (the
#: full balancer pipe), changing every PTB ``SimResult``.
#: v9: the key carries a digest of the fully-resolved ``CMPConfig``
#: (see :func:`config_digest`), so a changed config default can never
#: silently alias an old entry again.  Results are unchanged; only the
#: key layout is.
CACHE_VERSION = 9

#: Budget fraction used throughout the paper's evaluation (Section IV).
DEFAULT_BUDGET_FRACTION = 0.5


class Recipe(NamedTuple):
    """One fully-specified simulation run (hashable, picklable)."""

    benchmark: str
    cores: int
    technique: str = "none"
    policy: Optional[str] = None
    relax: float = 0.0
    budget_fraction: Optional[float] = DEFAULT_BUDGET_FRACTION


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".repro_cache"


def default_scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` env var, else ``os.cpu_count()``."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
    return os.cpu_count() or 1


# -- cache entry primitives (module-level: shared by workers) ---------------


@contextlib.contextmanager
def _entry_lock(path: Path) -> Iterator[None]:
    """Advisory per-entry lock so two workers never simulate one recipe.

    Lives next to the entry as ``<entry>.lock``; processes without
    ``fcntl`` (non-POSIX) fall back to lock-free operation, which is
    still crash-safe (atomic publish) just not duplicate-proof.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    with lock_path.open("a") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def _load_entry(path: Path) -> Optional[SimResult]:
    """Read one cache entry; quarantine (never silently drop) corruption."""
    try:
        with path.open("rb") as fh:
            return pickle.load(fh)
    except FileNotFoundError:
        return None
    except Exception:
        # A truncated or stale-format entry is evidence of a bug or a
        # crash — keep it for inspection instead of unlinking.
        quarantine = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantine)
        except OSError:
            pass
        return None


def _store_entry(path: Path, result: SimResult) -> None:
    """Atomically publish one cache entry (write temp + ``os.replace``).

    A crash mid-write leaves only a ``*.tmp.<pid>`` file behind; the
    final path transitions from absent to complete in one step.
    """
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with tmp.open("wb") as fh:
            pickle.dump(result, fh)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _resolved_config(recipe: Recipe) -> CMPConfig:
    """The fully-resolved configuration a recipe simulates under.

    Single source of truth shared by :func:`_simulate` (which runs it)
    and :func:`_cache_key` (which digests it): every config field —
    explicit or defaulted — that can reach a cached ``SimResult`` is
    captured by the same object the key is derived from.
    """
    cfg = CMPConfig(num_cores=recipe.cores)
    if recipe.relax:
        cfg = cfg.with_ptb(relax_threshold=recipe.relax)
    return cfg


def config_digest(cfg: CMPConfig) -> str:
    """Stable short digest of a fully-resolved configuration.

    ``CMPConfig`` is a frozen dataclass tree of ints, floats, strings
    and tuples, so its ``repr`` is canonical and process-stable; the
    digest therefore changes whenever *any* nested field does —
    including defaults no ``Recipe`` field controls.
    """
    return hashlib.sha256(repr(cfg).encode()).hexdigest()[:16]


def _simulate(recipe: Recipe, scale, max_cycles: int, seed: int) -> SimResult:
    """Build and run one simulation from scratch (deterministic in seed)."""
    cfg = _resolved_config(recipe)
    program = build_program(recipe.benchmark, recipe.cores, scale=scale,
                            seed=seed)
    sim = CMPSimulator(
        cfg, program, technique=recipe.technique,
        budget_fraction=recipe.budget_fraction, ptb_policy=recipe.policy,
        seed=seed,
    )
    return sim.run(max_cycles)


def _worker(spec: Tuple[Recipe, object, int, int, Optional[str]]) -> SimResult:
    """Process-pool entry point: load-or-simulate one recipe.

    ``spec`` is ``(recipe, scale, max_cycles, seed, cache_dir)`` — all
    picklable primitives, so the worker re-seeds and rebuilds the whole
    simulator in a fresh process.  With a cache directory the worker
    takes the entry lock, re-checks the disk (another process may have
    finished the recipe meanwhile), and publishes its result atomically.
    """
    recipe, scale, max_cycles, seed, cache_dir = spec
    if cache_dir is None:
        return _simulate(recipe, scale, max_cycles, seed)
    path = _entry_path(Path(cache_dir), _cache_key(recipe, scale,
                                                  max_cycles, seed))
    result = _load_entry(path)
    if result is not None:
        return result
    with _entry_lock(path):
        result = _load_entry(path)
        if result is None:
            result = _simulate(recipe, scale, max_cycles, seed)
            _store_entry(path, result)
    return result


def _cache_key(recipe: Recipe, scale, max_cycles: int, seed: int) -> tuple:
    return (
        CACHE_VERSION, recipe.benchmark, recipe.cores, recipe.technique,
        recipe.policy, recipe.relax, recipe.budget_fraction, str(scale),
        max_cycles, seed, config_digest(_resolved_config(recipe)),
    )


def _entry_path(cache_dir: Path, key: tuple) -> Path:
    digest = hashlib.sha256(repr(key).encode()).hexdigest()[:24]
    return cache_dir / f"run_{digest}.pkl"


class ExperimentRunner:
    """Runs (benchmark, cores, technique, policy, ...) recipes, cached."""

    def __init__(
        self,
        scale: Optional[str | float] = None,
        cache_dir: Optional[Path] = None,
        max_cycles: int = 400_000,
        seed: int = 2011,
        use_cache: bool = True,
        jobs: Optional[int] = None,
    ) -> None:
        self.scale = scale if scale is not None else default_scale()
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.max_cycles = max_cycles
        self.seed = seed
        self.use_cache = use_cache
        self.jobs = jobs if jobs is not None else default_jobs()
        self._mem: Dict[tuple, SimResult] = {}
        #: Plan/fan-out statistics of this runner's lifetime, consumed by
        #: the CLI's ``BENCH_runner.json`` emitter.
        self.stats: Dict[str, int] = {
            "planned": 0, "mem_hits": 0, "disk_hits": 0, "simulated": 0,
        }
        if self.use_cache:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- cache plumbing -----------------------------------------------------

    def _key(
        self,
        benchmark: str,
        cores: int,
        technique: str,
        policy: Optional[str],
        relax: float,
        budget_fraction: Optional[float],
    ) -> tuple:
        recipe = Recipe(benchmark, cores, technique, policy, relax,
                        budget_fraction)
        return _cache_key(recipe, self.scale, self.max_cycles, self.seed)

    def _path(self, key: tuple) -> Path:
        return _entry_path(self.cache_dir, key)

    # -- plan / fan out / gather -------------------------------------------

    def plan(self, recipes: Iterable[Recipe]) -> List[Recipe]:
        """Stage 1: dedupe ``recipes`` against the memory and disk caches.

        Returns the *cold* recipes (first occurrence order preserved);
        disk hits are pulled into the in-memory memo as a side effect so
        a subsequent :meth:`run` is free.
        """
        cold: List[Recipe] = []
        seen: set = set()
        for recipe in recipes:
            recipe = Recipe(*recipe)
            key = _cache_key(recipe, self.scale, self.max_cycles, self.seed)
            if key in seen:
                continue
            seen.add(key)
            self.stats["planned"] += 1
            if key in self._mem:
                self.stats["mem_hits"] += 1
                continue
            if self.use_cache:
                hit = _load_entry(self._path(key))
                if hit is not None:
                    self.stats["disk_hits"] += 1
                    self._mem[key] = hit
                    continue
            cold.append(recipe)
        return cold

    def run_many(
        self,
        recipes: Sequence[Recipe],
        jobs: Optional[int] = None,
    ) -> List[SimResult]:
        """Plan, fan out the cold recipes, and gather deterministically.

        Returns one :class:`SimResult` per input recipe, in input order
        (duplicates included), regardless of worker count — parallel and
        serial renders are byte-identical.
        """
        recipes = [Recipe(*r) for r in recipes]
        cold = self.plan(recipes)
        jobs = jobs if jobs is not None else self.jobs
        cache_dir = str(self.cache_dir) if self.use_cache else None
        if cold:
            self.stats["simulated"] += len(cold)
            specs = [
                (r, self.scale, self.max_cycles, self.seed, cache_dir)
                for r in cold
            ]
            if jobs > 1 and len(cold) > 1:
                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(cold))
                ) as pool:
                    results = list(pool.map(_worker, specs))
            else:
                results = [_worker(spec) for spec in specs]
            for recipe, result in zip(cold, results):
                key = _cache_key(recipe, self.scale, self.max_cycles,
                                 self.seed)
                self._mem[key] = result
        return [
            self._mem[_cache_key(r, self.scale, self.max_cycles, self.seed)]
            for r in recipes
        ]

    # -- running ---------------------------------------------------------------

    def run(
        self,
        benchmark: str,
        cores: int,
        technique: str = "none",
        policy: Optional[str] = None,
        relax: float = 0.0,
        budget_fraction: Optional[float] = DEFAULT_BUDGET_FRACTION,
    ) -> SimResult:
        """Run one recipe (or fetch it from the cache)."""
        recipe = Recipe(benchmark, cores, technique, policy, relax,
                        budget_fraction)
        key = _cache_key(recipe, self.scale, self.max_cycles, self.seed)
        hit = self._mem.get(key)
        if hit is not None:
            return hit
        if not self.plan([recipe]):
            return self._mem[key]
        self.stats["simulated"] += 1
        cache_dir = str(self.cache_dir) if self.use_cache else None
        result = _worker((recipe, self.scale, self.max_cycles, self.seed,
                          cache_dir))
        self._mem[key] = result
        return result

    def base(self, benchmark: str, cores: int) -> SimResult:
        """The uncontrolled run all normalizations divide by."""
        return self.run(benchmark, cores, technique="none")

    def truncated_of(self, recipes: Iterable[Recipe]) -> List[Recipe]:
        """Already-memoised recipes whose runs hit ``max_cycles``.

        Memo-only (no simulation, no stats side effects): intended for
        report footnotes after the figures' recipes have been run.
        """
        out: List[Recipe] = []
        seen: set = set()
        for recipe in recipes:
            recipe = Recipe(*recipe)
            key = _cache_key(recipe, self.scale, self.max_cycles, self.seed)
            if key in seen:
                continue
            seen.add(key)
            result = self._mem.get(key)
            if result is not None and result.truncated:
                out.append(recipe)
        return out

    # -- convenience sweeps -------------------------------------------------------

    def sweep(
        self,
        benchmarks: Iterable[str],
        cores: int,
        recipes: Iterable[Tuple[str, Optional[str]]],
        relax: float = 0.0,
    ) -> Dict[str, Dict[Tuple[str, Optional[str]], SimResult]]:
        """Run every (technique, policy) recipe for every benchmark."""
        benchmarks = list(benchmarks)
        pairs = list(recipes)
        self.run_many([
            Recipe(b, cores, technique, policy, relax)
            for b in benchmarks for technique, policy in pairs
        ])
        out: Dict[str, Dict[Tuple[str, Optional[str]], SimResult]] = {}
        for b in benchmarks:
            out[b] = {}
            for technique, policy in pairs:
                out[b][(technique, policy)] = self.run(
                    b, cores, technique, policy, relax=relax
                )
        return out
