"""Experiment runner with a persistent result cache.

Every figure of the paper aggregates dozens of simulation runs, and
several figures share runs (the base case of Figure 2 is the base case
of Figures 9-14).  The runner memoises :class:`SimResult` objects on
disk, keyed by the full run recipe, so regenerating all figures costs
each distinct simulation exactly once.

Set the environment variable ``REPRO_CACHE`` to relocate the cache, and
``REPRO_SCALE`` (tiny/small/medium/large) to change the default
simulation scale.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import CMPConfig
from ..sim.cmp import CMPSimulator
from ..sim.results import SimResult
from ..workloads import build_program

#: Bump when any model change invalidates previously cached results.
CACHE_VERSION = 7

#: Budget fraction used throughout the paper's evaluation (Section IV).
DEFAULT_BUDGET_FRACTION = 0.5


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".repro_cache"


def default_scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


class ExperimentRunner:
    """Runs (benchmark, cores, technique, policy, ...) recipes, cached."""

    def __init__(
        self,
        scale: Optional[str | float] = None,
        cache_dir: Optional[Path] = None,
        max_cycles: int = 400_000,
        seed: int = 2011,
        use_cache: bool = True,
    ) -> None:
        self.scale = scale if scale is not None else default_scale()
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.max_cycles = max_cycles
        self.seed = seed
        self.use_cache = use_cache
        self._mem: Dict[tuple, SimResult] = {}
        if self.use_cache:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- cache plumbing -----------------------------------------------------

    def _key(
        self,
        benchmark: str,
        cores: int,
        technique: str,
        policy: Optional[str],
        relax: float,
        budget_fraction: Optional[float],
    ) -> tuple:
        return (
            CACHE_VERSION, benchmark, cores, technique, policy, relax,
            budget_fraction, str(self.scale), self.max_cycles, self.seed,
        )

    def _path(self, key: tuple) -> Path:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:24]
        return self.cache_dir / f"run_{digest}.pkl"

    # -- running ---------------------------------------------------------------

    def run(
        self,
        benchmark: str,
        cores: int,
        technique: str = "none",
        policy: Optional[str] = None,
        relax: float = 0.0,
        budget_fraction: Optional[float] = DEFAULT_BUDGET_FRACTION,
    ) -> SimResult:
        """Run one recipe (or fetch it from the cache)."""
        key = self._key(benchmark, cores, technique, policy, relax,
                        budget_fraction)
        hit = self._mem.get(key)
        if hit is not None:
            return hit
        if self.use_cache:
            path = self._path(key)
            if path.exists():
                try:
                    with path.open("rb") as fh:
                        result = pickle.load(fh)
                    self._mem[key] = result
                    return result
                except Exception:
                    path.unlink(missing_ok=True)

        cfg = CMPConfig(num_cores=cores)
        if relax:
            cfg = cfg.with_ptb(relax_threshold=relax)
        program = build_program(benchmark, cores, scale=self.scale,
                                seed=self.seed)
        sim = CMPSimulator(
            cfg, program, technique=technique,
            budget_fraction=budget_fraction, ptb_policy=policy,
            seed=self.seed,
        )
        result = sim.run(self.max_cycles)
        self._mem[key] = result
        if self.use_cache:
            with self._path(key).open("wb") as fh:
                pickle.dump(result, fh)
        return result

    def base(self, benchmark: str, cores: int) -> SimResult:
        """The uncontrolled run all normalizations divide by."""
        return self.run(benchmark, cores, technique="none")

    # -- convenience sweeps -------------------------------------------------------

    def sweep(
        self,
        benchmarks: Iterable[str],
        cores: int,
        recipes: Iterable[Tuple[str, Optional[str]]],
        relax: float = 0.0,
    ) -> Dict[str, Dict[Tuple[str, Optional[str]], SimResult]]:
        """Run every (technique, policy) recipe for every benchmark."""
        out: Dict[str, Dict[Tuple[str, Optional[str]], SimResult]] = {}
        for b in benchmarks:
            out[b] = {}
            for technique, policy in recipes:
                out[b][(technique, policy)] = self.run(
                    b, cores, technique, policy, relax=relax
                )
        return out
