"""Section IV.D — the importance of accuracy: cores under a fixed TDP.

The paper's worked example: a 16-core CMP with a 100 W TDP gives
6.25 W/core.  Halving the per-core budget would ideally allow 32 cores
under the same TDP — but only with *perfect* budget matching.  A
technique whose AoPB error is ``e`` (fraction of energy left over the
budget) effectively makes each core consume ``budget x (1 + e)``, so
the achievable core count is ``TDP / (budget x (1 + e))``.

With the paper's measured errors — DVFS 65%, plain 2level 40%, PTB
<10% — the achievable counts are 19, 22 and 29 cores respectively.
:func:`cores_under_tdp` reproduces the arithmetic; the benchmark
harness feeds it our *measured* AoPB errors as well as the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class TDPScenario:
    """The Section IV.D scenario parameters."""

    tdp_watts: float = 100.0
    baseline_cores: int = 16
    budget_fraction: float = 0.5

    @property
    def baseline_per_core(self) -> float:
        return self.tdp_watts / self.baseline_cores

    @property
    def budget_per_core(self) -> float:
        return self.baseline_per_core * self.budget_fraction


def cores_under_tdp(aopb_error_fraction: float,
                    scenario: TDPScenario = TDPScenario()) -> int:
    """Cores that fit in the TDP given a budget-matching error.

    ``aopb_error_fraction`` is the normalized AoPB expressed as a
    fraction (0.65 for DVFS's 65%).  Perfect matching (0.0) doubles the
    core count under a 50% budget.
    """
    if aopb_error_fraction < 0:
        raise ValueError("error fraction must be >= 0")
    effective_per_core = scenario.budget_per_core * (1.0 + aopb_error_fraction)
    return int(scenario.tdp_watts / effective_per_core)


#: The paper's quoted error levels and resulting core counts.
PAPER_ERRORS: Dict[str, float] = {
    "dvfs": 0.65,
    "2level": 0.40,
    "ptb": 0.10,
}

PAPER_CORE_COUNTS: Dict[str, int] = {
    "dvfs": 19,
    "2level": 22,
    "ptb": 29,
}


def sec4d_table(measured_errors: Dict[str, float] | None = None,
                scenario: TDPScenario = TDPScenario()) -> Dict[str, Dict[str, float]]:
    """Paper-vs-measured cores-under-TDP comparison.

    ``measured_errors`` maps technique -> AoPB fraction from our runs;
    defaults to the paper's numbers only.
    """
    out: Dict[str, Dict[str, float]] = {}
    for tech, err in PAPER_ERRORS.items():
        row = {
            "paper_error": err,
            "paper_cores": cores_under_tdp(err, scenario),
        }
        if measured_errors and tech in measured_errors:
            row["measured_error"] = measured_errors[tech]
            row["measured_cores"] = cores_under_tdp(
                measured_errors[tech], scenario
            )
        out[tech] = row
    out["ideal"] = {
        "paper_error": 0.0,
        "paper_cores": cores_under_tdp(0.0, scenario),
    }
    return out
