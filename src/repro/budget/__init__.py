"""Budget enforcement: naive split, DVFS/DFS/2-level, and PTB."""

from typing import Optional

from ..config import CMPConfig
from ..power.model import EnergyModel
from ..units import Watts
from .controller import BudgetController, LocalBudgetController
from .ptb import PTBController, PTBLoadBalancer
from .spingate import SpinGatingPTBController

#: Techniques accepted by :func:`make_controller` and the simulator.
TECHNIQUES = ("none", "dvfs", "dfs", "2level", "ptb", "ptb-spingate")


def make_controller(
    technique: str,
    cfg: CMPConfig,
    energy: EnergyModel,
    global_budget: Watts,
    ptb_policy: Optional[str] = None,
) -> BudgetController:
    """Build the budget controller for a named technique.

    ``technique`` is one of :data:`TECHNIQUES`; ``ptb_policy`` overrides
    ``cfg.ptb.policy`` for the ``"ptb"`` technique.
    """
    if technique == "none":
        return BudgetController(cfg, energy, global_budget)
    if technique in ("dvfs", "dfs", "2level"):
        return LocalBudgetController(cfg, energy, global_budget, technique)
    if technique == "ptb":
        return PTBController(cfg, energy, global_budget, policy=ptb_policy)
    if technique == "ptb-spingate":
        return SpinGatingPTBController(
            cfg, energy, global_budget, policy=ptb_policy
        )
    raise ValueError(f"unknown technique {technique!r}; expected {TECHNIQUES}")


__all__ = [
    "BudgetController",
    "SpinGatingPTBController",
    "LocalBudgetController",
    "PTBController",
    "PTBLoadBalancer",
    "TECHNIQUES",
    "make_controller",
]
