"""Power-budget enforcement framework.

A controller owns the per-core actuators (DVFS mode selection,
microarchitectural throttles) and decides, cycle by cycle, what each
core may do next cycle.  The simulator's contract:

1. ``directives`` arrays are read at the top of every global cycle —
   ``execute[i]`` (False = frequency-skipped cycle), ``fetch_allowed[i]``,
   ``issue_width[i]`` (None = full width) and ``v_scale[i]``.
2. After all cores stepped, the simulator calls
   :meth:`BudgetController.end_cycle` with each core's measured power
   (EU) and power-token consumption; the controller updates actuator
   state for the *next* cycle.  All reactions therefore see at least
   one cycle of latency, as a real controller would.

The *naive* policy of Section III.C splits the global budget equally:
``local = global / num_cores``, and a core is only throttled when the
CMP as a whole exceeds the global budget **and** the core exceeds its
local share.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import CMPConfig
from ..power.dvfs import DVFSController
from ..power.microarch import (
    ISSUE_TECHNIQUES,
    MicroarchThrottle,
    Technique,
    select_technique,
)
from ..power.model import EnergyModel
from ..units import Tokens, Watts


class BudgetController:
    """Base class: no throttling, full speed (the paper's base case)."""

    name = "none"
    uses_ptht = False

    def __init__(
        self,
        cfg: CMPConfig,
        energy: EnergyModel,
        global_budget: Watts,
    ) -> None:
        self.cfg = cfg
        self.energy = energy
        self.num_cores = cfg.num_cores
        self.global_budget: Watts = global_budget
        self.local_budget: Watts = global_budget / cfg.num_cores
        n = cfg.num_cores
        self.execute: List[bool] = [True] * n
        self.fetch_allowed: List[bool] = [True] * n
        self.issue_width: List[Optional[int]] = [None] * n
        self.v_scale: List[float] = [1.0] * n
        #: Per-core budget *line* used by the AoPB metric (Figure 1):
        #: the equal share under the naive split; PTB raises/lowers it
        #: with granted/pledged tokens while conserving the global sum.
        self.budget_lines: List[Watts] = [self.local_budget] * n
        self.throttled_cycles = 0
        #: Optional :class:`repro.telemetry.TelemetrySession` hook.
        self._telemetry = None

    def begin_cycle(self, now: int) -> None:  # pragma: no cover - trivial
        pass

    def end_cycle(
        self,
        now: int,
        tokens: List[Tokens],
        powers: List[Watts],
        sync_domain=None,
    ) -> None:
        pass


class LocalBudgetController(BudgetController):
    """Naive equal-split enforcement with DVFS / DFS / 2-level actuators.

    ``technique``:

    * ``"dvfs"``  — five-mode voltage+frequency scaling, window-averaged.
    * ``"dfs"``   — frequency-only scaling (no voltage headroom).
    * ``"2level"``— DVFS as level 1 plus per-cycle microarchitectural
      spike removal as level 2 (Cebrián et al. [2]).
    """

    def __init__(
        self,
        cfg: CMPConfig,
        energy: EnergyModel,
        global_budget: Watts,
        technique: str = "dvfs",
    ) -> None:
        super().__init__(cfg, energy, global_budget)
        if technique not in ("dvfs", "dfs", "2level"):
            raise ValueError(f"unknown technique {technique!r}")
        self.name = technique
        self.uses_ptht = technique == "2level"
        n = cfg.num_cores
        dfs = technique == "dfs"
        self._dvfs = [DVFSController(cfg.dvfs, dfs=dfs) for _ in range(n)]
        self._throttles = (
            [MicroarchThrottle() for _ in range(n)]
            if technique == "2level"
            else None
        )
        # Window-averaged global-over verdict gating the DVFS level.
        self._win_energy = 0.0
        self._win_left = cfg.dvfs.window_cycles
        self._global_over_window = False

    def end_cycle(
        self,
        now: int,
        tokens: List[Tokens],
        powers: List[Watts],
        sync_domain=None,
    ) -> None:
        total = 0.0
        for p in powers:
            total += p
        global_over_now = total > self.global_budget

        # Track the same window the per-core DVFS controllers use, so the
        # coarse level only reacts when the *CMP* is over budget.
        self._win_energy += total
        self._win_left -= 1
        if self._win_left <= 0:
            w = self.cfg.dvfs.window_cycles
            self._global_over_window = (self._win_energy / w) > self.global_budget
            self._win_energy = 0.0
            self._win_left = w

        local = self.local_budget
        dvfs_budget = local if self._global_over_window else float("inf")
        throttles = self._throttles
        dvfs = self._dvfs
        execute = self.execute
        v_scales = self.v_scale
        fetch_allowed = self.fetch_allowed
        issue_widths = self.issue_width
        full_width = self.cfg.core.issue_width
        telemetry = self._telemetry
        for i in range(self.num_cores):
            ctl = dvfs[i]
            execute[i] = ctl.tick(powers[i], dvfs_budget)
            v_scales[i] = ctl.v_scale
            if throttles is not None:
                th = throttles[i]
                if global_over_now and powers[i] > local:
                    overshoot = (powers[i] - local) / local
                    th.set(select_technique(overshoot))
                else:
                    th.set(Technique.NONE)
                th.tick()
                fetch_allowed[i] = th.fetch_allowed
                issue_widths[i] = (
                    th.issue_width(full_width)
                    if th.technique in ISSUE_TECHNIQUES
                    else None
                )
                if th.technique != Technique.NONE:
                    self.throttled_cycles += 1
                if telemetry is not None:
                    telemetry.on_throttle(i, int(th.technique))
            if not execute[i]:
                self.throttled_cycles += 0  # f-skips tracked by DVFS itself

    # -- introspection -----------------------------------------------------

    def mode_of(self, core: int) -> int:
        return self._dvfs[core].mode

    def technique_of(self, core: int) -> Technique:
        if self._throttles is None:
            return Technique.NONE
        return self._throttles[core].technique
