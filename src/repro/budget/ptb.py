"""Power Token Balancing (PTB) — the paper's contribution.

Every cycle, each core reports how many power tokens it consumed
against its local per-cycle allotment.  Cores under their allotment
offer the difference (their *spare* tokens) to the centralized PTB
load-balancer; the balancer redistributes them to cores over their
allotment so those cores can keep running at full speed without the CMP
exceeding the global budget.  Tokens are a currency: only counts travel
over the dedicated wires, and nothing is banked — spares unused in a
cycle vanish (Section III.E.2: "tokens from previous cycles are not
stored in the balancer").

Distribution policies (Section III.E.1):

* **ToAll** — split the pool equally among all cores over budget.
* **ToOne** — give the whole pool to the single most over-budget core.
* **dynamic** — pick ToOne while lock-spinning dominates and ToAll
  while barrier-spinning dominates (Section IV.B).

Timing: the balancer round-trip (send + process + return) is 3 cycles
for 4 cores, 5 for 8, 10 for 16 (Xilinx ISE estimates in the paper), so
grants arriving at cycle ``t`` were computed from spares and requests
of cycle ``t - latency``.  A core that pledged spares runs under a
correspondingly *more restrictive* budget until the pledge lands, so
the global constraint holds while tokens are in flight.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..config import CMPConfig
from ..power.microarch import ISSUE_TECHNIQUES, Technique, select_technique
from ..power.model import EnergyModel
from ..units import Tokens, Watts
from .controller import LocalBudgetController


class PTBLoadBalancer:
    """The centralized token redistribution logic (pure, unit-testable)."""

    __slots__ = ("num_cores", "latency", "_pipe", "_pending",
                 "granted_total", "_sanitizer", "_telemetry")

    def __init__(self, num_cores: int, latency: int) -> None:
        if num_cores <= 0:
            raise ValueError("need at least one core")
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.num_cores = num_cores
        self.latency = latency
        # In-flight (spares, overs, priority) snapshots.
        self._pipe: Deque[Tuple[List[int], List[int], List[int]]] = deque()
        # Running per-core sum of the spare columns in ``_pipe``, kept
        # incrementally (integer tokens, so add/subtract is exact) to
        # make :meth:`pending_pledge` O(1) instead of O(latency).
        self._pending: List[int] = [0] * num_cores
        self.granted_total = 0
        #: Optional :class:`repro.simcheck.TokenSanitizer` hook.
        self._sanitizer = None
        #: Optional :class:`repro.telemetry.TelemetrySession` hook.
        self._telemetry = None

    @staticmethod
    def distribute(
        pool: Tokens,
        overs: List[Tokens],
        policy: str,
        priority: Optional[List[int]] = None,
    ) -> List[Tokens]:
        """Split ``pool`` spare tokens among over-budget cores.

        ``overs[i]`` is how many tokens core ``i`` is over its local
        budget (0 = not over).  Returns per-core grants.  Grants never
        exceed the pool (token conservation) but a single core may
        receive more than its overshoot (headroom for the next cycle).

        ``priority`` lists cores holding contended locks: under ToOne
        those threads gate the whole application, so the pool goes to
        them even before their power ramps over the budget ("priority to
        threads that enter a critical section", Section IV.B).
        """
        n = len(overs)
        grants = [0] * n
        if pool <= 0:
            return grants
        if policy == "toone":
            # Concentrate tokens on the most power-hungry core first: it
            # is served *fully* (with headroom) before anyone else sees a
            # token, then the remainder flows to the next-most-needy.  A
            # contended-lock holder outranks raw overshoot — it gates the
            # whole application's progress.
            order = [i for i in range(n) if overs[i] > 0]
            order.sort(key=overs.__getitem__, reverse=True)
            for p in reversed(priority or ()):
                if p in order:
                    order.remove(p)
                order.insert(0, p)
            for i in order:
                if pool <= 0:
                    break
                want = max(overs[i] * 2, 1)
                g = min(pool, want)
                grants[i] = g
                pool -= g
            return grants
        if policy == "toall":
            needy = [i for i in range(n) if overs[i] > 0]
            for p in priority or ():
                if p not in needy:
                    needy.append(p)
            if not needy:
                return grants
            share, rem = divmod(pool, len(needy))
            for j, i in enumerate(needy):
                grants[i] = share + (1 if j < rem else 0)
            return grants
        raise ValueError(f"unknown distribution policy {policy!r}")

    def cycle(
        self,
        spares: List[Tokens],
        overs: List[Tokens],
        policy: str,
        priority: Optional[List[int]] = None,
    ) -> List[Tokens]:
        """Advance one cycle: ingest this cycle's reports, emit grants.

        The returned grants correspond to the reports of ``latency``
        cycles ago (wire + processing delay).  With ``latency == 0`` the
        balancer is combinational (used by the ablation benchmarks).
        """
        self._pipe.append((list(spares), list(overs), list(priority or ())))
        pending = self._pending
        for i in range(self.num_cores):
            pending[i] += spares[i]
        if len(self._pipe) <= self.latency:
            grants = [0] * self.num_cores
        else:
            old_spares, old_overs, old_priority = self._pipe.popleft()
            pool = 0
            for i in range(self.num_cores):
                delivered = old_spares[i]
                pending[i] -= delivered
                pool += delivered
            grants = self.distribute(pool, old_overs, policy, old_priority)
            if self._sanitizer is not None:
                self._sanitizer.check_distribution(pool, grants)
            self.granted_total += sum(grants)
        if self._telemetry is not None:
            # Pledges are stamped at ingestion, grants at delivery.
            self._telemetry.on_balancer(spares, grants)
        return grants

    def pending_pledge(self, core: int) -> Tokens:
        """Tokens core ``core`` has reported spare and not yet delivered."""
        return self._pending[core]

    def copy_pending(self, out: List[Tokens]) -> None:
        """Snapshot every core's undelivered pledge into ``out`` in place
        (the controller's per-cycle buffer; avoids a fresh list per cycle)."""
        out[:] = self._pending


class PTBController(LocalBudgetController):
    """PTB on top of the 2-level technique (the paper's "PTB+2level").

    Control currency is tokens/cycle.  The local token allotment is the
    controllable slice of the local power budget:

        T_local = (global_budget / n - uncontrollable) / token_unit

    Each cycle the controller computes per-core spares and overshoots,
    runs them through the balancer, and triggers the second-level
    microarchitectural technique only on cores whose consumption exceeds
    their *augmented* budget (allotment + granted - pledged) while the
    CMP is over the global budget — with an optional relaxation factor
    (Section IV.C) that trades accuracy for energy.
    """

    def __init__(
        self,
        cfg: CMPConfig,
        energy: EnergyModel,
        global_budget: Watts,
        policy: Optional[str] = None,
    ) -> None:
        super().__init__(cfg, energy, global_budget, technique="2level")
        self.name = "ptb"
        self.uses_ptht = True
        self.policy = policy if policy is not None else cfg.ptb.policy
        if self.policy not in ("toall", "toone", "dynamic"):
            raise ValueError(f"unknown PTB policy {self.policy!r}")
        self.relax = cfg.ptb.relax_threshold
        latency = cfg.ptb.round_trip_latency(cfg.num_cores)
        self.balancer = PTBLoadBalancer(cfg.num_cores, latency)
        unctrl = energy.uncontrollable_power
        self.token_budget: Tokens = max(
            1.0, energy.eu_to_tokens(self.local_budget - unctrl)
        )
        self.global_token_budget: Tokens = self.token_budget * cfg.num_cores
        self._grants: List[Tokens] = [0] * cfg.num_cores
        self._last_spares: List[Tokens] = [0] * cfg.num_cores
        self._last_overs: List[Tokens] = [0] * cfg.num_cores
        # Per-cycle scratch reused across end_cycle calls (PERF001: four
        # fresh lists per cycle otherwise).  ``_last_spares``/``_last_overs``
        # alias the report buffers after end_cycle — observers read them
        # before the next cycle overwrites them, and the balancer snapshots
        # its own copies into the pipe.
        self._zeros: List[Tokens] = [0] * cfg.num_cores
        self._pledged_buf: List[Tokens] = [0] * cfg.num_cores
        self._spares_buf: List[Tokens] = [0] * cfg.num_cores
        self._overs_buf: List[Tokens] = [0] * cfg.num_cores
        #: Per-core effective token budget of the last completed cycle:
        #: allotment + delivered grants - every pledge still in flight.
        self.effective_budgets: List[Tokens] = (
            [self.token_budget] * cfg.num_cores
        )
        #: Optional :class:`repro.simcheck.TokenSanitizer` hook.
        self._sanitizer = None
        self.policy_switches = 0
        self._current_policy = (
            "toall" if self.policy == "dynamic" else self.policy
        )

    def _select_policy(self, sync_domain) -> str:
        """Dynamic selector: lock-spinning -> ToOne, barriers -> ToAll."""
        if self.policy != "dynamic":
            return self.policy
        if sync_domain is None:
            return "toall"
        locks = sync_domain.cores_waiting_on_locks()
        barriers = sync_domain.cores_waiting_on_barriers()
        chosen = "toone" if locks > barriers else "toall"
        if chosen != self._current_policy:
            self.policy_switches += 1
            self._current_policy = chosen
        return chosen

    def end_cycle(
        self,
        now: int,
        tokens: List[Tokens],
        powers: List[Watts],
        sync_domain=None,
    ) -> None:
        n = self.num_cores
        t_local = self.token_budget

        # --- DVFS level 1, identical to the naive controller ----------------
        total = 0.0
        for p in powers:
            total += p
        self._win_energy += total
        self._win_left -= 1
        if self._win_left <= 0:
            w = self.cfg.dvfs.window_cycles
            self._global_over_window = (self._win_energy / w) > self.global_budget
            self._win_energy = 0.0
            self._win_left = w
        dvfs_budget = (
            self.local_budget if self._global_over_window else float("inf")
        )

        # --- token bookkeeping ------------------------------------------------
        global_over = sum(tokens) > self.global_token_budget
        zeros = self._zeros
        spares = self._spares_buf
        spares[:] = zeros
        overs = self._overs_buf
        overs[:] = zeros
        grants = self._grants
        # Cores *approaching* their allotment request tokens too: the
        # balancer round trip is 3-10 cycles, so waiting until a core is
        # already over would leave every power ramp uncovered for a full
        # round trip.
        near_floor = int(t_local * 0.85)
        # A pledging core's usable allotment shrinks by *everything* it
        # has reported spare that the balancer has not delivered yet —
        # the pipe holds `latency` cycles of undelivered pledges, not
        # just the last cycle's.  Snapshot before this cycle's reports
        # enter the pipe.
        pledged = self._pledged_buf
        self.balancer.copy_pending(pledged)
        for i in range(n):
            usable = t_local - pledged[i] + grants[i]
            if tokens[i] >= near_floor:
                # Power-hungry (at or approaching the allotment):
                # request the gap between consumption and what is
                # actually usable.  In-flight pledges shrink `usable`,
                # so a ramping ex-donor asks for its own escrowed
                # tokens back instead of spending them a second time
                # while the balancer grants them to someone else.
                request = tokens[i] - min(int(usable), near_floor)
                if request > 0:
                    overs[i] = int(request)
            elif tokens[i] < t_local:
                # Spares flow whenever they exist (Figure 7's barrier
                # example): a spinner's unused allotment continuously
                # subsidises whoever is doing useful work.  Each cycle's
                # spare is drawn from that cycle's fresh allotment, so
                # pending pledges don't reduce the *flow* a steady
                # spinner offers — they reduce what it may *spend*.
                spare = int(t_local - tokens[i])
                if spare > 0:
                    spares[i] = spare

        if self._sanitizer is not None:
            self._sanitizer.check_reports(
                tokens, spares, overs, t_local, self.global_token_budget
            )

        policy = self._select_policy(sync_domain)
        priority = (
            sync_domain.contended_lock_holders()
            if sync_domain is not None
            else []
        )
        grants = self._grants = self.balancer.cycle(spares, overs, policy, priority)
        # Last cycle's reports, kept for observability (tests, sanitizers).
        self._last_spares = spares
        self._last_overs = overs

        # --- actuators for next cycle -----------------------------------------
        throttles = self._throttles
        relax = self.relax
        dvfs = self._dvfs
        execute = self.execute
        v_scales = self.v_scale
        effective_budgets = self.effective_budgets
        budget_lines = self.budget_lines
        local_budget = self.local_budget
        tokens_to_eu = self.energy.tokens_to_eu
        telemetry = self._telemetry
        fetch_allowed = self.fetch_allowed
        issue_widths = self.issue_width
        full_width = self.cfg.core.issue_width
        for i in range(n):
            ctl = dvfs[i]
            execute[i] = ctl.tick(powers[i], dvfs_budget)
            v_scales[i] = ctl.v_scale
            th = throttles[i]
            # Control plane: a pledging donor runs under a restricted
            # budget until its tokens land (paper Section III.E.2).
            # Restriction covers the full round trip: every snapshot
            # still in the pipe (pledged[i] was taken before this
            # cycle's reports entered it, so add spares[i]) including
            # the one delivered as this cycle's grants — the donor
            # stays restricted through the cycle its tokens are spent,
            # so sum(effective budgets) + pipe contents never exceeds
            # the global token budget.
            eff_budget = t_local + grants[i] - (pledged[i] + spares[i])
            effective_budgets[i] = eff_budget
            # Metric plane: the AoPB budget line rises with granted
            # tokens; a donor is simply under its local line, so the
            # pledge does not lower the line it is measured against.
            budget_lines[i] = local_budget + tokens_to_eu(grants[i])
            if global_over and eff_budget <= 0 and tokens[i] > 0:
                # The core pledged its whole allotment away (or more)
                # and is consuming anyway: in-flight tokens must not be
                # spendable by the donor and grantable to a receiver
                # simultaneously.  Graded against the nominal allotment
                # (eff_budget can't scale a deficit), so a lightly
                # spinning donor is nudged while a deeply overdrawn one
                # is gated.  No relax slack here: relaxation spares
                # performance-critical work, not escrow violations.
                overshoot = (tokens[i] - eff_budget) / t_local
                th.set(select_technique(overshoot))
                self.throttled_cycles += 1
            elif (global_over and eff_budget > 0
                    and tokens[i] > eff_budget * (1.0 + relax)):
                overshoot = (tokens[i] - eff_budget) / eff_budget
                th.set(select_technique(overshoot))
                self.throttled_cycles += 1
            else:
                th.set(Technique.NONE)
            th.tick()
            if telemetry is not None:
                telemetry.on_throttle(i, int(th.technique))
            fetch_allowed[i] = th.fetch_allowed
            issue_widths[i] = (
                th.issue_width(full_width)
                if th.technique in ISSUE_TECHNIQUES
                else None
            )
