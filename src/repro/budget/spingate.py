"""Spin gating — the paper's future-work extension (Section IV.C).

    "higher energy savings could be achieved if we use PTB as a
     spinlock detector and we disable the spinning cores to save
     power. But the later is out of the scope of the current paper
     and part of our future work."

This module implements that extension on top of the PTB controller: a
core known to be busy-waiting is fetch-gated outright (its spin loop
stops issuing), cutting its power to the gated floor; its spare tokens
keep flowing to the balancer.  The gated core still observes lock
grants / barrier releases through the coherence-driven sync state
machine, so wake-up is prompt and deadlock-free.

Spin identification follows the paper's dynamic-selector methodology
(Section IV.B): for the *reported* mechanism we use the actual
synchronization state ("assisted by actual application-specific
information"), while the pure power-pattern detector of
:class:`repro.core.spin.PowerPatternSpinDetector` — the paper's
"indirect detection via heuristics" — is available and evaluated
separately; on the EMA-filtered sensor it cannot reliably separate
spinning from memory-stalled compute, which is precisely why the
authors left it as future work.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import CMPConfig
from ..power.model import EnergyModel
from .ptb import PTBController


class SpinGatingPTBController(PTBController):
    """PTB+2level plus gating of spinning cores.

    ``gate_delay`` is the number of consecutive spinning cycles before
    a core is parked (a short hysteresis so a lock about to be granted
    is not gated pointlessly).
    """

    def __init__(
        self,
        cfg: CMPConfig,
        energy: EnergyModel,
        global_budget: float,
        policy: Optional[str] = None,
        gate_delay: int = 24,
    ) -> None:
        super().__init__(cfg, energy, global_budget, policy=policy)
        self.name = "ptb+spingate"
        if gate_delay < 0:
            raise ValueError("gate delay must be >= 0")
        self.gate_delay = gate_delay
        self._spin_streak: List[int] = [0] * cfg.num_cores
        self.gated_cycles = 0
        self.gate_events = 0

    def end_cycle(
        self,
        now: int,
        tokens: List[int],
        powers: List[float],
        sync_domain=None,
    ) -> None:
        super().end_cycle(now, tokens, powers, sync_domain)
        if sync_domain is None:
            return
        spinning = sync_domain.spinning_cores()
        for i in range(self.num_cores):
            if i in spinning:
                streak = self._spin_streak[i] + 1
                self._spin_streak[i] = streak
                if streak >= self.gate_delay:
                    if streak == self.gate_delay:
                        self.gate_events += 1
                    self.fetch_allowed[i] = False
                    self.gated_cycles += 1
            else:
                self._spin_streak[i] = 0
