"""Simulated CMP configuration (paper Table 1).

Every architectural, power and control parameter of the simulated system
lives here.  The defaults reproduce Table 1 of the paper:

==========================  =======================================
Process technology          32 nm
Frequency                   3000 MHz
VDD                         0.9 V
Instruction window          128-entry ROB + 64-entry load/store queue
Decode / issue width        4 inst/cycle
Functional units            6 IntALU, 2 IntMult, 4 FPALU, 4 FPMult
Pipeline                    14 stages
Branch predictor            64 KB, 16-bit gshare
Coherence                   MOESI
Memory latency              300 cycles
L1 I / L1 D                 64 KB, 2-way, 1-cycle latency
L2                          1 MB/core, 4-way, unified, 12-cycle latency
Network                     2D mesh, 4-cycle links, 4-byte flits
==========================  =======================================

Configuration objects are immutable dataclasses so that a config can be
hashed and reused as a memoisation key by the experiment runner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of a single cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry parameters must be positive")
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )
        n_sets = self.num_sets
        if n_sets & (n_sets - 1):
            raise ValueError(f"number of sets must be a power of two, got {n_sets}")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def index_bits(self) -> int:
        return self.num_sets.bit_length() - 1

    @property
    def offset_bits(self) -> int:
        return self.line_bytes.bit_length() - 1


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (paper Table 1, left column)."""

    rob_entries: int = 128
    lsq_entries: int = 64
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    int_alu: int = 6
    int_mult: int = 2
    fp_alu: int = 4
    fp_mult: int = 4
    pipeline_stages: int = 14
    # gshare: 64 KB of 2-bit counters -> 256K counters -> 18 bits of history
    # in a real table; the paper says "64KB, 16 bit Gshare".
    bp_history_bits: int = 16
    bp_table_bytes: int = 64 * 1024
    # Front-end depth between fetch and execute; a branch misprediction
    # flushes and refills this many stages.
    misprediction_penalty: int = 14

    def __post_init__(self) -> None:
        if self.rob_entries <= 0 or self.lsq_entries <= 0:
            raise ValueError("ROB/LSQ sizes must be positive")
        if min(self.decode_width, self.issue_width, self.commit_width) <= 0:
            raise ValueError("pipeline widths must be positive")


@dataclass(frozen=True)
class MemoryConfig:
    """Memory hierarchy parameters (paper Table 1, right column)."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, latency=1)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, latency=1)
    )
    l2_per_core: CacheConfig = field(
        default_factory=lambda: CacheConfig(1024 * 1024, 4, latency=12)
    )
    memory_latency: int = 300
    coherence_protocol: str = "MOESI"

    def __post_init__(self) -> None:
        if self.memory_latency <= 0:
            raise ValueError("memory latency must be positive")
        if self.coherence_protocol not in ("MOESI", "MESI", "MSI"):
            raise ValueError(f"unknown protocol {self.coherence_protocol!r}")


@dataclass(frozen=True)
class NetworkConfig:
    """2D-mesh interconnect parameters (paper Table 1, bottom right)."""

    topology: str = "mesh2d"
    link_latency: int = 4
    flit_bytes: int = 4
    link_bandwidth_flits: int = 1
    router_latency: int = 1

    def __post_init__(self) -> None:
        if self.link_latency <= 0 or self.flit_bytes <= 0:
            raise ValueError("network parameters must be positive")


@dataclass(frozen=True)
class TechConfig:
    """Process/clock/voltage parameters (paper Table 1, top left)."""

    process_nm: int = 32
    frequency_mhz: int = 3000
    vdd: float = 0.9
    # Threshold voltage used by the leakage model (HotLeakage-style
    # exponential dependence).  Representative 32 nm high-performance value.
    vth: float = 0.32
    # Ambient / package temperature for the lumped thermal model (Kelvin).
    ambient_k: float = 318.0

    def __post_init__(self) -> None:
        if not (0 < self.vth < self.vdd):
            raise ValueError("need 0 < vth < vdd")
        if self.frequency_mhz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def cycle_time_ns(self) -> float:
        return 1e3 / self.frequency_mhz


#: The five DVFS power modes evaluated in the paper (Section III.C):
#: (voltage scale, frequency scale) pairs, from fastest to slowest.
DVFS_MODES: Tuple[Tuple[float, float], ...] = (
    (1.00, 1.00),
    (0.95, 0.95),
    (0.90, 0.90),
    (0.90, 0.75),
    (0.90, 0.65),
)

#: DFS uses the same frequency points but never lowers the voltage.
DFS_MODES: Tuple[Tuple[float, float], ...] = tuple(
    (1.0, f) for _, f in DVFS_MODES
)


@dataclass(frozen=True)
class DVFSConfig:
    """DVFS controller parameters.

    The paper selects Kim's on-chip regulator implementation [8] as a
    best-case scenario with a fast 30-50 mV/ns transition.  At 0.9 V and
    3 GHz, a 45 mV step (one mode) completes in ~1-1.5 ns, i.e. a handful
    of cycles; we charge ``transition_cycles_per_step`` cycles per mode
    step during which the core keeps running at the *old* mode's speed
    but pays the *higher* of the two modes' power.
    """

    modes: Tuple[Tuple[float, float], ...] = DVFS_MODES
    window_cycles: int = 256
    transition_cycles_per_step: int = 10

    def __post_init__(self) -> None:
        if self.window_cycles <= 0:
            raise ValueError("window must be positive")
        if len(self.modes) < 2:
            raise ValueError("need at least two power modes")
        for v, f in self.modes:
            if not (0 < v <= 1 and 0 < f <= 1):
                raise ValueError(f"mode scales must be in (0,1]: {(v, f)}")


@dataclass(frozen=True)
class PTBConfig:
    """Power Token Balancing parameters (paper Section III.E.2).

    Latencies were estimated by the authors with Xilinx ISE:

    * 4-core CMP : 1 cycle send + 1 process + 1 return  = 3 cycles
    * 8-core CMP : 2 + 1 + 2                            = 5 cycles
    * 16-core CMP: 4 + 2 + 4                            = 10 cycles

    The dedicated token wires add ~1% to average application power, which
    the power model charges whenever PTB is enabled.
    """

    policy: str = "toall"  # "toall" | "toone" | "dynamic"
    #: Extra AoPB slack before local mechanisms trigger (0.0 = strict PTB,
    #: 0.2 = the paper's "relaxed +20%" variant in Section IV.C).
    relax_threshold: float = 0.0
    #: Power overhead of the balancer and its wires (fraction of core power).
    power_overhead: float = 0.01
    #: Cores per balancer cluster for >16-core scalability (Section III.E.2).
    cluster_size: int = 16
    #: Override the send+process+return latency (None = paper values).
    latency_override: int | None = None

    def __post_init__(self) -> None:
        if self.policy not in ("toall", "toone", "dynamic"):
            raise ValueError(f"unknown PTB policy {self.policy!r}")
        if self.relax_threshold < 0:
            raise ValueError("relax threshold must be >= 0")
        if self.cluster_size <= 0:
            raise ValueError("cluster size must be positive")

    def round_trip_latency(self, num_cores: int) -> int:
        """Send + process + return latency of the balancer in cycles."""
        if self.latency_override is not None:
            return self.latency_override
        cluster = min(num_cores, self.cluster_size)
        if cluster <= 4:
            return 3
        if cluster <= 8:
            return 5
        return 10


@dataclass(frozen=True)
class PowerConfig:
    """Knobs of the per-structure energy model (see ``repro.power``)."""

    #: 8K-entry Power Token History Table, as in the paper (Section III.B).
    ptht_entries: int = 8192
    #: Number of K-means base-power instruction groups (paper uses 8).
    token_classes: int = 8
    #: Fraction of dynamic power still burned by a clock-gated idle
    #: structure (imperfect gating).
    gating_residue: float = 0.10
    #: Leakage power as a fraction of per-core peak dynamic power at
    #: nominal VDD and ambient temperature (typical for 32 nm HP).
    leakage_fraction: float = 0.20
    #: EMA coefficient of the power-sensor filter.  Package/grid
    #: capacitance integrates instantaneous switching energy over a few
    #: cycles, so both the controllers and the AoPB metric see the
    #: filtered curve (Figure 1/6 show smooth per-cycle power).
    sensor_alpha: float = 0.08


@dataclass(frozen=True)
class CMPConfig:
    """Complete simulated-system configuration (paper Table 1)."""

    num_cores: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    mem: MemoryConfig = field(default_factory=MemoryConfig)
    net: NetworkConfig = field(default_factory=NetworkConfig)
    tech: TechConfig = field(default_factory=TechConfig)
    dvfs: DVFSConfig = field(default_factory=DVFSConfig)
    ptb: PTBConfig = field(default_factory=PTBConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    #: Run the :mod:`repro.simcheck` invariant sanitizers during
    #: simulation (also enabled by the ``REPRO_SANITIZE=1`` env var).
    sanitize: bool = False
    #: Record :mod:`repro.telemetry` events/metrics during simulation
    #: (also enabled by the ``REPRO_TELEMETRY=1`` env var).  Off by
    #: default: probes are ``None`` and cost one attribute test.
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("need at least one core")

    @property
    def mesh_dims(self) -> Tuple[int, int]:
        """Width x height of the squarest 2D mesh holding all cores."""
        w = int(math.isqrt(self.num_cores))
        while self.num_cores % w:
            w -= 1
        h = self.num_cores // w
        return (max(w, h), min(w, h))

    def with_cores(self, n: int) -> "CMPConfig":
        """Return a copy of this config with ``n`` cores."""
        return replace(self, num_cores=n)

    def with_ptb(self, **kwargs) -> "CMPConfig":
        """Return a copy with PTB parameters overridden."""
        return replace(self, ptb=replace(self.ptb, **kwargs))

    def with_telemetry(self, enabled: bool = True) -> "CMPConfig":
        """Return a copy with telemetry recording switched on/off."""
        return replace(self, telemetry=enabled)

    def describe(self) -> str:
        """Render the configuration as a Table 1-style text table."""
        c, m, n, t = self.core, self.mem, self.net, self.tech
        rows = [
            ("Process Technology", f"{t.process_nm} nanometres"),
            ("Frequency", f"{t.frequency_mhz} MHz"),
            ("VDD", f"{t.vdd} V"),
            ("Instruction Window",
             f"{c.rob_entries} entries + {c.lsq_entries} Load Store Queue"),
            ("Decode Width", f"{c.decode_width} inst/cycle"),
            ("Issue Width", f"{c.issue_width} inst/cycle"),
            ("Functional Units",
             f"{c.int_alu} Int Alu; {c.int_mult} Int Mult; "
             f"{c.fp_alu} FP Alu; {c.fp_mult} FP Mult"),
            ("Pipeline", f"{c.pipeline_stages} stages"),
            ("Branch Predictor",
             f"{c.bp_table_bytes // 1024}KB, {c.bp_history_bits} bit Gshare"),
            ("Coherence Protocol", m.coherence_protocol),
            ("Memory Latency", f"{m.memory_latency} Cycles"),
            ("L1 I-cache",
             f"{m.l1i.size_bytes // 1024}KB, {m.l1i.assoc}-way, "
             f"{m.l1i.latency} cycle lat."),
            ("L1 D-cache",
             f"{m.l1d.size_bytes // 1024}KB, {m.l1d.assoc}-way, "
             f"{m.l1d.latency} cycle lat."),
            ("L2 cache",
             f"{m.l2_per_core.size_bytes // (1024 * 1024)}MB/core, "
             f"{m.l2_per_core.assoc}-way, unified, "
             f"{m.l2_per_core.latency} cycles latency"),
            ("Topology", "2D mesh"),
            ("Link Latency", f"{n.link_latency} cycles"),
            ("Flit size", f"{n.flit_bytes} bytes"),
            ("Link Bandwidth", f"{n.link_bandwidth_flits} flit / cycle"),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


DEFAULT_CONFIG = CMPConfig()
