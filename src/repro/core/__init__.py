"""Out-of-order core model: pipeline, predictor, FUs, spin detection."""

from .branch import GsharePredictor
from .functional_units import FunctionalUnitPool
from .pipeline import Core, SyncPhase
from .spin import BCTSpinDetector, PowerPatternSpinDetector

__all__ = [
    "GsharePredictor",
    "FunctionalUnitPool",
    "Core",
    "SyncPhase",
    "BCTSpinDetector",
    "PowerPatternSpinDetector",
]
