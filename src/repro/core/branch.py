"""Gshare branch predictor (Table 1: 64 KB, 16-bit gshare).

Classic gshare: the prediction index is the branch PC XORed with a
global history register; each table entry is a 2-bit saturating
counter.  A 64 KB table of 2-bit counters holds 256K counters (18
index bits); the paper's "16 bit" refers to the history length, which
we honour.
"""

from __future__ import annotations


class GsharePredictor:
    """2-bit-counter gshare with configurable history length."""

    __slots__ = ("_table", "_mask", "history", "_hist_mask",
                 "lookups", "mispredictions")

    def __init__(self, table_bytes: int = 64 * 1024, history_bits: int = 16):
        if table_bytes <= 0:
            raise ValueError("table size must be positive")
        counters = table_bytes * 4  # 2-bit counters
        if counters & (counters - 1):
            raise ValueError("counter count must be a power of two")
        # Weakly-taken initial state: loops predict well immediately.
        self._table = bytearray([2]) * 1  # placeholder, replaced below
        self._table = bytearray([2] * counters)
        self._mask = counters - 1
        self.history = 0
        self._hist_mask = (1 << history_bits) - 1
        self.lookups = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & self._mask

    def predict(self, pc: int) -> bool:
        self.lookups += 1
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train and advance history; returns ``mispredicted``.

        Combines lookup and update because the simulator resolves
        branches at fetch (the *timing* cost of a misprediction is
        applied separately by the pipeline).
        """
        i = self._index(pc)
        c = self._table[i]
        predicted = c >= 2
        if taken:
            if c < 3:
                self._table[i] = c + 1
        else:
            if c > 0:
                self._table[i] = c - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) & self._hist_mask
        self.lookups += 1
        mispred = predicted != taken
        if mispred:
            self.mispredictions += 1
        return mispred

    @property
    def accuracy(self) -> float:
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.lookups
