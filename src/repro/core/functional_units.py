"""Functional-unit pool scheduling.

Table 1 gives each core 6 IntALU, 2 IntMult, 4 FPALU and 4 FPMult
units.  Loads/stores/atomics share the load-store ports (modelled as
the IntALU AGU ports); branches use IntALUs.

The pipeline assigns execution start times at dispatch, so the pool
tracks, per unit, the earliest cycle it is next free.  ALUs and FP
units are pipelined (new op every cycle, ``occupancy=1``); the integer
multiplier and atomics hold their unit for the full latency.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import CoreConfig
from ..isa.instructions import Kind

#: Kind -> FU pool name.
_POOL_OF: Dict[int, str] = {
    int(Kind.INT_ALU): "int_alu",
    int(Kind.INT_MULT): "int_mult",
    int(Kind.FP_ALU): "fp_alu",
    int(Kind.FP_MULT): "fp_mult",
    int(Kind.LOAD): "int_alu",    # AGU shares the integer ports
    int(Kind.STORE): "int_alu",
    int(Kind.BRANCH): "int_alu",
    int(Kind.ATOMIC): "int_alu",
    int(Kind.NOP): "int_alu",
}

#: Pools whose units are NOT pipelined (occupy for the full latency).
_UNPIPELINED = frozenset(("int_mult", "fp_mult"))


class FunctionalUnitPool:
    """Earliest-free-unit tracking for all FU pools of one core."""

    __slots__ = ("_pools", "structural_stalls")

    def __init__(self, cfg: CoreConfig) -> None:
        self._pools: Dict[str, List[int]] = {
            "int_alu": [0] * cfg.int_alu,
            "int_mult": [0] * cfg.int_mult,
            "fp_alu": [0] * cfg.fp_alu,
            "fp_mult": [0] * cfg.fp_mult,
        }
        self.structural_stalls = 0

    def schedule(self, kind: int, ready: int, latency: int) -> int:
        """Book a unit for an instruction ready at cycle ``ready``.

        Returns the cycle execution *starts* (>= ready); completion is
        ``start + latency`` as computed by the caller.
        """
        pool_name = _POOL_OF[kind]
        pool = self._pools[pool_name]
        # Find the earliest-free unit (pools are tiny: 2-6 entries).
        best_i = 0
        best_t = pool[0]
        for i in range(1, len(pool)):
            if pool[i] < best_t:
                best_t = pool[i]
                best_i = i
        start = ready if ready >= best_t else best_t
        if start > ready:
            self.structural_stalls += 1
        occupancy = latency if pool_name in _UNPIPELINED else 1
        pool[best_i] = start + occupancy
        return start
