"""Cycle-level out-of-order core model.

One :class:`Core` per CMP core.  The model is trace-driven and
dispatch-scheduled: at fetch, every instruction is assigned its
execution start (respecting the statistical dependence chain, FU
availability and memory latency from the cache hierarchy) and its
completion cycle; the commit stage retires completed instructions in
order, up to ``commit_width`` per cycle.  This keeps the per-cycle work
O(width) while still producing the per-cycle power shape the paper's
mechanisms react to: full-width bursts, miss-induced droops, ROB-full
stalls, misprediction bubbles and the characteristic low-power spin
signature of Figure 6.

The core also hosts the per-core *sync unit*: a small state machine
that executes lock acquire/release and barrier arrive operations by
injecting real atomic/store instructions into the pipeline and busy-
waiting with a dependent spin loop (load - compare - backward branch)
whose loads hit the locally cached synchronization line until the
releaser's store invalidates it — exactly the traffic pattern PTB
exploits.
"""

from __future__ import annotations

from collections import deque
from enum import IntEnum
from typing import Deque, List, Optional

from ..config import CMPConfig
from ..isa.instructions import BASE_ENERGY, EXEC_LATENCY, Kind
from ..isa.kmeans import TokenClassMap
from ..mem.hierarchy import MemoryHierarchy
from ..power.model import CycleEvents
from ..power.tokens import TokenAccountant
from ..sync.primitives import SyncDomain
from ..trace.generator import InstrBatch, ThreadTraceGenerator
from ..trace.phases import SyncKind, SyncOp
from .branch import GsharePredictor
from .functional_units import FunctionalUnitPool

#: Flattened by-kind-code tables for the hot loop.
_BASE_E: List[float] = [BASE_ENERGY[k] for k in Kind]
_EXEC_LAT: List[int] = [EXEC_LATENCY[k] for k in Kind]

_KIND_LOAD = int(Kind.LOAD)
_KIND_STORE = int(Kind.STORE)
_KIND_ATOMIC = int(Kind.ATOMIC)
_KIND_BRANCH = int(Kind.BRANCH)
_KIND_ALU = int(Kind.INT_ALU)

#: Front-end depth between fetch and earliest issue (half the 14-stage
#: pipeline lives in front of the scheduler).
_DISPATCH_DELAY = 5
#: Cycles to redirect fetch after a mispredicted branch resolves.
_REDIRECT_CYCLES = 3

#: ROB entry field indices (entries are plain lists for speed).
_PC, _KIND, _BASE_EN, _BASE_TOK, _DISPATCH, _COMPLETE, _FLAGS = range(7)

_F_MEM = 1
_F_SYNC = 2


class SyncPhase(IntEnum):
    """What the thread is doing, for the Figure 3 breakdown."""

    BUSY = 0
    LOCK_ACQ = 1
    LOCK_REL = 2
    BARRIER = 3


class _SyncState(IntEnum):
    NONE = 0
    ACQ_WAIT = 1    # test&set in flight
    ACQ_SPIN = 2    # lost; spinning on the lock line
    ACQ_RETRY = 3   # granted; winning test&set in flight
    REL_WAIT = 4    # releasing store in flight
    BAR_WAIT = 5    # arrival atomic in flight
    BAR_FLIP = 6    # last arrival's sense-flip store in flight
    BAR_SPIN = 7    # spinning on the sense line


#: Synthetic PCs of injected sync and spin instructions.
_SYNC_PC = 0x5F000000
_SPIN_PC = 0x5E000000


class Core:
    """One out-of-order core plus its sync unit and token accountant."""

    def __init__(
        self,
        core_id: int,
        cfg: CMPConfig,
        token_map: TokenClassMap,
        hierarchy: MemoryHierarchy,
        sync_domain: SyncDomain,
        generator: ThreadTraceGenerator,
    ) -> None:
        self.core_id = core_id
        self.cfg = cfg
        self.hierarchy = hierarchy
        self.sync = sync_domain
        self.gen = generator

        core = cfg.core
        self.rob_entries = core.rob_entries
        self.lsq_entries = core.lsq_entries
        self.decode_width = core.decode_width
        self.commit_width = core.commit_width

        self.rob: Deque[list] = deque()
        self.predictor = GsharePredictor(
            core.bp_table_bytes, core.bp_history_bits
        )
        self.fus = FunctionalUnitPool(core)
        self.accountant = TokenAccountant(token_map, cfg.power.ptht_entries)
        self.events = CycleEvents()

        # Batch cursor (filled lazily from the generator).
        self._batch: Optional[InstrBatch] = None
        self._bi = 0

        self._last_complete = 0
        self._inflight_mem = 0
        self._fetch_stall_until = 0
        self._spin_next = 0

        # Sync unit state.
        self._sync_state = _SyncState.NONE
        self._sync_obj = -1
        self._bar_generation = -1
        self.sync_phase = SyncPhase.BUSY

        self.done = False
        self.committed = 0
        self.executed_cycles = 0
        self.spin_iterations = 0
        self.mem_stall_cycles = 0

        #: Optional :class:`repro.simcheck.PipelineSanitizer` hook.
        self._sanitizer = None
        #: Optional :class:`repro.telemetry.TelemetrySession` hook.
        self._telemetry = None

    # ------------------------------------------------------------------ #
    # public per-cycle entry points                                      #
    # ------------------------------------------------------------------ #

    def step(
        self,
        now: int,
        fetch_allowed: bool = True,
        issue_width: Optional[int] = None,
    ) -> None:
        """Execute one core cycle at global cycle ``now``."""
        ev = self.events
        ev.reset()
        rob = self.rob
        acc = self.accountant
        san = self._sanitizer
        self.executed_cycles += 1

        # ---- commit stage -------------------------------------------------
        # Commit always proceeds, even under PIPELINE_GATE: gating stops
        # admission (fetch/issue) while the window drains, which is what
        # lets a gated core's occupancy power sink below its budget.
        n_commit = 0
        commit_width = self.commit_width
        while rob and n_commit < commit_width:
            e = rob[0]
            if e[_COMPLETE] > now:
                break
            rob.popleft()
            n_commit += 1
            self.committed += 1
            ev.committed_energy += e[_BASE_EN]
            acc.on_commit(e[_PC], e[_BASE_TOK], now - e[_DISPATCH])
            if san is not None:
                san.on_commit(self.core_id, e[_DISPATCH], e[_COMPLETE], now)
            flags = e[_FLAGS]
            if flags & _F_MEM:
                self._inflight_mem -= 1
            if flags & _F_SYNC:
                self._sync_commit(now)

        occupancy = len(rob)
        ev.rob_occupancy = occupancy
        acc.begin_cycle(occupancy)
        if rob and not n_commit and occupancy >= self.rob_entries - self.decode_width:
            self.mem_stall_cycles += 1

        # ---- sync unit polling ---------------------------------------------
        st = self._sync_state
        if st == _SyncState.ACQ_SPIN:
            if self.sync.lock_granted(self._sync_obj, self.core_id, now):
                self._inject_sync(now, _KIND_ATOMIC,
                                  self.sync.lock(self._sync_obj).addr)
                self._sync_state = _SyncState.ACQ_RETRY
                if self._telemetry is not None:
                    self._telemetry.on_spin(self.core_id, False, "lock")
            else:
                # A fetch-gated spinner stops issuing its spin loop (the
                # spin-gating extension); it still observes the grant.
                if fetch_allowed:
                    self._spin_fetch(now, self.sync.lock(self._sync_obj).addr)
                if san is not None:
                    self._sanitize_rob(san, now)
                acc.end_cycle()
                return
        elif st == _SyncState.BAR_SPIN:
            if self.sync.barrier_released(
                self._sync_obj, self.core_id, self._bar_generation, now
            ):
                self._sync_state = _SyncState.NONE
                self.sync_phase = SyncPhase.BUSY
                if self._telemetry is not None:
                    self._telemetry.on_spin(self.core_id, False, "barrier")
            else:
                if fetch_allowed:
                    self._spin_fetch(
                        now, self.sync.barrier(self._sync_obj).sense_addr
                    )
                if san is not None:
                    self._sanitize_rob(san, now)
                acc.end_cycle()
                return

        # ---- fetch stage ----------------------------------------------------
        if (
            fetch_allowed
            and self._sync_state == _SyncState.NONE
            and not self.done
            and now >= self._fetch_stall_until
        ):
            self._fetch(now, issue_width)

        if san is not None:
            self._sanitize_rob(san, now)
        acc.end_cycle()

    def _sanitize_rob(self, san, now: int) -> None:
        """Window-wide ROB invariant check (sanitizers enabled only)."""
        rob = self.rob
        san.check_rob(
            self.core_id, now, len(rob), self.rob_entries,
            (e[_DISPATCH] for e in rob),
        )

    def idle_cycle(self, now: int) -> None:
        """A frequency-skipped (or post-completion) global cycle."""
        ev = self.events
        ev.reset()
        ev.active = False
        ev.rob_occupancy = len(self.rob)
        acc = self.accountant
        acc.begin_cycle(ev.rob_occupancy)
        acc.end_cycle()

    # ------------------------------------------------------------------ #
    # fetch machinery                                                    #
    # ------------------------------------------------------------------ #

    def _fetch(self, now: int, issue_width: Optional[int]) -> None:
        width = self.decode_width
        if issue_width is not None:
            width = min(width, issue_width)
        if width <= 0:
            return
        rob = self.rob
        ev = self.events
        first = True
        while width > 0:
            if len(rob) >= self.rob_entries:
                break
            batch = self._batch
            if batch is None or self._bi >= batch.n:
                item = self.gen.next_item()
                if item is None:
                    self._batch = None
                    if not rob and self._sync_state == _SyncState.NONE:
                        self.done = True
                    return
                if isinstance(item, SyncOp):
                    self._batch = None
                    self._start_sync(now, item)
                    return
                self._batch = batch = item
                self._bi = 0
            i = self._bi
            kind = batch.kinds[i]
            is_mem = kind == _KIND_LOAD or kind == _KIND_STORE or kind == _KIND_ATOMIC
            if is_mem and self._inflight_mem >= self.lsq_entries:
                break
            pc = batch.pcs[i]
            if first:
                ic = self.hierarchy.fetch_instr(self.core_id, pc)
                if ic.latency:
                    ev.l2_accesses += 1
                    if ic.mem_access:
                        ev.mem_accesses += 1
                    self._fetch_stall_until = now + ic.latency
                    return
                first = False

            mem_extra = 0
            if is_mem:
                if kind == _KIND_LOAD:
                    res = self.hierarchy.load(self.core_id, batch.addrs[i])
                elif kind == _KIND_STORE:
                    res = self.hierarchy.store(self.core_id, batch.addrs[i])
                else:
                    res = self.hierarchy.atomic(self.core_id, batch.addrs[i])
                if not res.l1_hit:
                    if res.l2_access:
                        ev.l2_accesses += 1
                    if res.mem_access:
                        ev.mem_accesses += 1
                    ev.flit_hops += res.flit_hops
                    ev.invalidations += res.invalidations
                    mem_extra = res.latency
                self._inflight_mem += 1

            ready = now + _DISPATCH_DELAY
            if batch.deps[i] and self._last_complete > ready:
                ready = self._last_complete
            lat = _EXEC_LAT[kind]
            start = self.fus.schedule(kind, ready, lat)
            if kind == _KIND_STORE:
                complete = start + 1  # retires from the store buffer
            else:
                complete = start + lat + mem_extra
            base_e = _BASE_E[kind]
            base_tok = self.accountant.on_fetch(pc, kind)
            rob.append(
                [pc, kind, base_e, base_tok, now, complete,
                 _F_MEM if is_mem else 0]
            )
            ev.fetched_energy += base_e
            ev.n_fetched += 1
            self._last_complete = complete
            self._bi = i + 1
            width -= 1

            if kind == _KIND_BRANCH:
                ev.n_branches += 1
                mispred = self.predictor.update(pc, bool(batch.takens[i]))
                if mispred:
                    self._fetch_stall_until = complete + _REDIRECT_CYCLES
                    # Wrong-path fetch energy wasted before the redirect.
                    ev.fetched_energy += 2.0 * _BASE_E[_KIND_ALU]
                    return

    def _spin_fetch(self, now: int, spin_addr: int) -> None:
        """Fetch one dependent spin-loop iteration (load-test-branch)."""
        if now < self._spin_next or len(self.rob) >= self.rob_entries - 3:
            return
        ev = self.events
        rob = self.rob
        acc = self.accountant
        self.spin_iterations += 1

        res = self.hierarchy.load(self.core_id, spin_addr)
        mem_extra = 0
        if not res.l1_hit:
            if res.l2_access:
                ev.l2_accesses += 1
            if res.mem_access:
                ev.mem_accesses += 1
            ev.flit_hops += res.flit_hops
            mem_extra = res.latency

        ready = now + _DISPATCH_DELAY
        start = self.fus.schedule(_KIND_LOAD, ready, 1)
        c_load = start + 1 + mem_extra
        start = self.fus.schedule(_KIND_ALU, c_load, 1)
        c_alu = start + 1
        start = self.fus.schedule(_KIND_BRANCH, c_alu, 1)
        c_br = start + 1

        pcs = (_SPIN_PC, _SPIN_PC + 4, _SPIN_PC + 8)
        kinds = (_KIND_LOAD, _KIND_ALU, _KIND_BRANCH)
        completes = (c_load, c_alu, c_br)
        for pc, kind, comp in zip(pcs, kinds, completes):
            base_e = _BASE_E[kind]
            base_tok = acc.on_fetch(pc, kind)
            rob.append([pc, kind, base_e, base_tok, now, comp,
                        _F_MEM if kind == _KIND_LOAD else 0])
            ev.fetched_energy += base_e
            ev.n_fetched += 1
        ev.n_branches += 1
        self.predictor.update(_SPIN_PC + 8, True)
        # The predictor knows the loop: while the line hits in L1 the
        # next iteration issues right behind the load-use chain; when
        # the line was invalidated (release!), the re-read gates it.
        self._spin_next = now + 2 if mem_extra == 0 else c_load
        self._last_complete = c_br

    # ------------------------------------------------------------------ #
    # sync unit                                                           #
    # ------------------------------------------------------------------ #

    def _start_sync(self, now: int, op: SyncOp) -> None:
        self._sync_obj = op.obj_id
        if op.kind == SyncKind.ACQUIRE:
            self.sync_phase = SyncPhase.LOCK_ACQ
            self._sync_state = _SyncState.ACQ_WAIT
            self._inject_sync(now, _KIND_ATOMIC, self.sync.lock(op.obj_id).addr)
        elif op.kind == SyncKind.RELEASE:
            self.sync_phase = SyncPhase.LOCK_REL
            self._sync_state = _SyncState.REL_WAIT
            self._inject_sync(now, _KIND_STORE, self.sync.lock(op.obj_id).addr)
        else:  # BARRIER
            self.sync_phase = SyncPhase.BARRIER
            self._sync_state = _SyncState.BAR_WAIT
            self._inject_sync(
                now, _KIND_ATOMIC, self.sync.barrier(op.obj_id).count_addr
            )

    def _inject_sync(self, now: int, kind: int, addr: int) -> None:
        """Dispatch one synchronization instruction into the pipeline."""
        ev = self.events
        if kind == _KIND_STORE:
            res = self.hierarchy.store(self.core_id, addr)
        else:
            res = self.hierarchy.atomic(self.core_id, addr)
        mem_extra = 0
        if not res.l1_hit:
            if res.l2_access:
                ev.l2_accesses += 1
            if res.mem_access:
                ev.mem_accesses += 1
            ev.flit_hops += res.flit_hops
            ev.invalidations += res.invalidations
            mem_extra = res.latency
        ready = now + _DISPATCH_DELAY
        if self._last_complete > ready:
            ready = self._last_complete
        lat = _EXEC_LAT[kind]
        start = self.fus.schedule(kind, ready, lat)
        complete = start + lat + mem_extra
        base_e = _BASE_E[kind]
        base_tok = self.accountant.on_fetch(_SYNC_PC + self._sync_obj * 4, kind)
        self.rob.append(
            [_SYNC_PC + self._sync_obj * 4, kind, base_e, base_tok, now,
             complete, _F_MEM | _F_SYNC]
        )
        ev.fetched_energy += base_e
        ev.n_fetched += 1
        self._inflight_mem += 1
        self._last_complete = complete

    def _sync_commit(self, now: int) -> None:
        """An injected sync instruction just committed."""
        st = self._sync_state
        if st == _SyncState.ACQ_WAIT:
            if self.sync.try_acquire(self._sync_obj, self.core_id, now):
                self._sync_state = _SyncState.NONE
                self.sync_phase = SyncPhase.BUSY
            else:
                self._sync_state = _SyncState.ACQ_SPIN
                self._spin_next = now + 1
                if self._telemetry is not None:
                    self._telemetry.on_spin(self.core_id, True, "lock")
        elif st == _SyncState.ACQ_RETRY:
            # Ownership was transferred by ``lock_granted``; the winning
            # test&set has now committed.
            self._sync_state = _SyncState.NONE
            self.sync_phase = SyncPhase.BUSY
        elif st == _SyncState.REL_WAIT:
            self.sync.release(self._sync_obj, self.core_id, now)
            self._sync_state = _SyncState.NONE
            self.sync_phase = SyncPhase.BUSY
        elif st == _SyncState.BAR_WAIT:
            self._bar_generation = self.sync.barrier(self._sync_obj).generation
            if self.sync.barrier_arrive(self._sync_obj, self.core_id, now):
                # Last arrival: flip the sense line (wakes the spinners).
                self._sync_state = _SyncState.BAR_FLIP
                self._inject_sync(
                    now, _KIND_STORE, self.sync.barrier(self._sync_obj).sense_addr
                )
            else:
                self._sync_state = _SyncState.BAR_SPIN
                self._spin_next = now + 1
                if self._telemetry is not None:
                    self._telemetry.on_spin(self.core_id, True, "barrier")
        elif st == _SyncState.BAR_FLIP:
            self._sync_state = _SyncState.NONE
            self.sync_phase = SyncPhase.BUSY

    # ------------------------------------------------------------------ #
    # introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def is_spinning(self) -> bool:
        return self._sync_state in (_SyncState.ACQ_SPIN, _SyncState.BAR_SPIN)

    @property
    def rob_occupancy(self) -> int:
        return len(self.rob)
