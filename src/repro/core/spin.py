"""Spin detection.

Two detectors, both from the paper's discussion:

* :class:`BCTSpinDetector` — Li et al. [12]: watch commits between
  *backward control transfers* (BCTs).  If the observable machine state
  is identical across several consecutive BCT intervals (same PC, no
  stores, same interval signature), the core is spinning.

* :class:`PowerPatternSpinDetector` — the paper's "transparent"
  alternative (Section III.E.1, Figure 6): after the initial power peak,
  a spinning core's per-cycle power drops and *stabilises* under the
  budget.  A sustained, low-variance, low-mean stretch of per-cycle
  token consumption flags spinning without any instruction inspection.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class BCTSpinDetector:
    """Backward-control-transfer state-comparison spin detector [12]."""

    __slots__ = ("_threshold", "_last_bct_pc", "_interval_sig", "_sig",
                 "_identical", "spinning", "detections")

    def __init__(self, identical_intervals: int = 3) -> None:
        if identical_intervals < 1:
            raise ValueError("need at least one interval")
        self._threshold = identical_intervals
        self._last_bct_pc: Optional[int] = None
        self._interval_sig: Optional[tuple] = None
        self._sig = [0, 0, 0]  # [instr count, store count, addr xor]
        self._identical = 0
        self.spinning = False
        self.detections = 0

    def on_commit(self, pc: int, is_backward_branch: bool,
                  is_store: bool, mem_addr: int = 0) -> None:
        sig = self._sig
        sig[0] += 1
        if is_store:
            sig[1] += 1
        if mem_addr:
            sig[2] ^= mem_addr
        if not is_backward_branch:
            return
        interval = (pc, sig[0], sig[1], sig[2])
        if (
            self._last_bct_pc == pc
            and self._interval_sig == interval
            and sig[1] == 0  # true spinning writes nothing
        ):
            self._identical += 1
            if self._identical >= self._threshold and not self.spinning:
                self.spinning = True
                self.detections += 1
        else:
            self._identical = 0
            self.spinning = False
        self._last_bct_pc = pc
        self._interval_sig = interval
        self._sig = [0, 0, 0]

    def reset(self) -> None:
        self._last_bct_pc = None
        self._interval_sig = None
        self._sig = [0, 0, 0]
        self._identical = 0
        self.spinning = False


class PowerPatternSpinDetector:
    """Detect spinning from the per-cycle power-token signature (Fig. 6).

    Flags spinning when a trailing window of per-cycle token consumption
    has both a low mean (below ``mean_threshold`` tokens/cycle) and low
    variability (max-min spread below ``spread_threshold``): the
    "stabilised under the budget" shape the paper describes.
    """

    __slots__ = ("window", "mean_threshold", "spread_threshold", "_hist",
                 "_sum", "spinning", "detections")

    def __init__(
        self,
        window: int = 32,
        mean_threshold: float = 20.0,
        spread_threshold: float = 12.0,
    ) -> None:
        if window < 4:
            raise ValueError("window too small to be meaningful")
        self.window = window
        self.mean_threshold = mean_threshold
        self.spread_threshold = spread_threshold
        self._hist: Deque[float] = deque(maxlen=window)
        self._sum = 0.0
        self.spinning = False
        self.detections = 0

    def on_cycle(self, tokens: float) -> bool:
        h = self._hist
        if len(h) == self.window:
            self._sum -= h[0]
        h.append(tokens)
        self._sum += tokens
        if len(h) < self.window:
            self.spinning = False
            return False
        mean = self._sum / self.window
        spread = max(h) - min(h)
        was = self.spinning
        self.spinning = (
            mean <= self.mean_threshold and spread <= self.spread_threshold
        )
        if self.spinning and not was:
            self.detections += 1
        return self.spinning

    def reset(self) -> None:
        self._hist.clear()
        self._sum = 0.0
        self.spinning = False
