"""Instruction set model and power-token class calibration."""

from .instructions import (
    BASE_ENERGY,
    EXEC_LATENCY,
    SPIN_LOOP_KINDS,
    Instruction,
    Kind,
)
from .kmeans import (
    TokenClassMap,
    calibrate_token_classes,
    default_token_classes,
    kmeans_1d,
)

__all__ = [
    "BASE_ENERGY",
    "EXEC_LATENCY",
    "SPIN_LOOP_KINDS",
    "Instruction",
    "Kind",
    "TokenClassMap",
    "calibrate_token_classes",
    "default_token_classes",
    "kmeans_1d",
]
