"""Instruction model.

The simulator is trace-driven: workload generators emit streams of
:class:`Instruction` records.  Each record carries the architectural
information the pipeline and the power model need — kind, execution
latency class, memory behaviour and branch behaviour — plus a synthetic
PC used to index the branch predictor and the Power Token History Table.

Instruction *kinds* map onto the functional units of Table 1 (6 IntALU,
2 IntMult, 4 FPALU, 4 FPMult) plus loads, stores, branches and the
atomic read-modify-write operations used by the synchronization
primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict


class Kind(IntEnum):
    """Instruction kinds recognised by the pipeline and power model."""

    INT_ALU = 0
    INT_MULT = 1
    FP_ALU = 2
    FP_MULT = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6
    ATOMIC = 7  # ll/sc or test&set used by spinlocks/barriers
    NOP = 8


#: Execution latency (cycles in a functional unit) per kind.  Memory
#: operations add cache latency on top (resolved by the memory hierarchy).
EXEC_LATENCY: Dict[Kind, int] = {
    Kind.INT_ALU: 1,
    Kind.INT_MULT: 4,
    Kind.FP_ALU: 3,
    Kind.FP_MULT: 5,
    Kind.LOAD: 1,     # address generation; +cache latency
    Kind.STORE: 1,    # address generation; retires from LSQ
    Kind.BRANCH: 1,
    Kind.ATOMIC: 2,   # RMW occupies the port longer
    Kind.NOP: 1,
}


#: Base *energy* of one execution of each kind, in power-token units
#: before K-means quantization (see :mod:`repro.isa.kmeans`).  These are
#: relative numbers derived from a Cacti-style structure model (see
#: :mod:`repro.power.cacti`): an FP multiply costs far more than an
#: integer add; memory instructions pay LSQ + L1 access; atomics pay an
#: extra coherence action.  One power-token = the energy of one
#: instruction occupying the ROB for one cycle.
BASE_ENERGY: Dict[Kind, float] = {
    Kind.INT_ALU: 4.0,
    Kind.INT_MULT: 9.0,
    Kind.FP_ALU: 11.0,
    Kind.FP_MULT: 16.0,
    Kind.LOAD: 7.0,
    Kind.STORE: 6.0,
    Kind.BRANCH: 5.0,   # includes predictor read/update
    Kind.ATOMIC: 10.0,
    Kind.NOP: 1.0,
}


@dataclass(frozen=True)
class Instruction:
    """A single dynamic instruction in a trace.

    Attributes
    ----------
    pc:
        Synthetic program counter.  Loopy code reuses PCs, which is what
        gives the PTHT and the branch predictor their hit rates.
    kind:
        Functional class of the instruction.
    mem_addr:
        Cache-line-aligned address for loads/stores/atomics (0 otherwise).
    taken:
        For branches, the actual direction.
    is_backward:
        For branches, whether the target is backward (loop branch).  Used
        by the BCT spin detector of Li et al. [12].
    """

    pc: int
    kind: Kind
    mem_addr: int = 0
    taken: bool = False
    is_backward: bool = False

    @property
    def is_mem(self) -> bool:
        return self.kind in (Kind.LOAD, Kind.STORE, Kind.ATOMIC)

    @property
    def exec_latency(self) -> int:
        return EXEC_LATENCY[self.kind]

    @property
    def base_energy(self) -> float:
        return BASE_ENERGY[self.kind]


#: Canonical spin-loop body: test (load), compare (alu), backward branch.
#: Used by the synchronization layer while a core busy-waits.
SPIN_LOOP_KINDS = (Kind.LOAD, Kind.INT_ALU, Kind.BRANCH)
