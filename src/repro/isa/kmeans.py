"""K-means grouping of instruction base power into token classes.

The paper (Section III.B) calibrates per-instruction base power by
running SPECint2000, then groups instructions with similar base power
using a K-means algorithm.  Eight groups are enough for the
power-token accounting to stay within 1% of the exact per-instruction
energy.

We reproduce the same procedure: :func:`calibrate_token_classes` takes
a population of observed base energies (one sample per dynamic
instruction of a calibration run), clusters them into ``k`` groups with
a deterministic 1-D K-means, and returns a :class:`TokenClassMap` that
quantizes any instruction's base energy to its class centroid
(rounded to whole tokens — tokens are a currency, not a float).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from .instructions import BASE_ENERGY, Kind


def kmeans_1d(
    values: np.ndarray,
    k: int,
    max_iter: int = 100,
    tol: float = 1e-9,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic 1-D K-means.

    Centroids are initialised at evenly spaced quantiles, which makes the
    algorithm deterministic (no random restarts needed in 1-D, where
    K-means with sorted data converges to a local optimum that is stable
    for our purposes).

    Returns ``(centroids, labels)`` with centroids sorted ascending.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("cannot cluster an empty sample")
    if k <= 0:
        raise ValueError("k must be positive")
    uniq = np.unique(values)
    if uniq.size <= k:
        # Fewer distinct values than clusters: every value is its own class.
        centroids = uniq
        labels = np.searchsorted(uniq, values)
        return centroids, labels

    qs = np.linspace(0, 1, k + 2)[1:-1]
    centroids = np.quantile(values, qs)
    centroids = np.unique(centroids)
    # Pad back to k centroids if quantiles collided.  The rng must live
    # outside the loop: recreating default_rng(0) per iteration yields
    # the same candidate forever, and np.unique then never grows the
    # array (infinite loop on heavily skewed samples).
    rng = np.random.default_rng(0)
    lo, hi = values.min(), values.max()
    while centroids.size < k:
        extra = lo + (hi - lo) * rng.random()
        centroids = np.unique(np.append(centroids, extra))

    for _ in range(max_iter):
        # Assign each value to the nearest centroid (1-D: searchsorted on
        # midpoints is O(n log k), cheaper than a full distance matrix).
        mids = (centroids[1:] + centroids[:-1]) / 2.0
        labels = np.searchsorted(mids, values)
        new_centroids = centroids.copy()
        for j in range(centroids.size):
            members = values[labels == j]
            if members.size:
                new_centroids[j] = members.mean()
        new_centroids = np.sort(new_centroids)
        if np.abs(new_centroids - centroids).max() < tol:
            centroids = new_centroids
            break
        centroids = new_centroids

    mids = (centroids[1:] + centroids[:-1]) / 2.0
    labels = np.searchsorted(mids, values)
    return centroids, labels


@dataclass(frozen=True)
class TokenClassMap:
    """Quantizer from exact base energy to one of ``k`` token classes."""

    centroids: Tuple[float, ...]
    #: Integer token cost of each class (centroid rounded to >= 1 token).
    class_tokens: Tuple[int, ...]
    #: Kind -> class index, precomputed for the 9 static kinds.
    kind_class: Tuple[int, ...]

    @property
    def num_classes(self) -> int:
        return len(self.centroids)

    def classify(self, energy: float) -> int:
        """Return the class index whose centroid is nearest to ``energy``."""
        cents = self.centroids
        best, best_d = 0, abs(energy - cents[0])
        for i in range(1, len(cents)):
            d = abs(energy - cents[i])
            if d < best_d:
                best, best_d = i, d
        return best

    def tokens_for_kind(self, kind: Kind) -> int:
        """Quantized base-token cost of an instruction kind."""
        return self.class_tokens[self.kind_class[kind]]

    def tokens_for_energy(self, energy: float) -> int:
        return self.class_tokens[self.classify(energy)]

    def quantization_error(
        self, sample: Sequence[float], token_unit: float = 1.0
    ) -> float:
        """Relative error of token accounting vs. exact energies.

        The paper reports that 8 groups keep this below 1% versus the
        exact joule accounting from HotLeakage.
        """
        arr = np.asarray(sample, dtype=np.float64)
        if arr.size == 0:
            return 0.0
        exact = arr.sum()
        quant = sum(self.tokens_for_energy(e) for e in arr) * token_unit
        if exact == 0:
            return 0.0
        return abs(quant - exact) / exact


def calibrate_token_classes(
    sample_energies: Iterable[float],
    k: int = 8,
    token_unit: float = 1.0,
) -> TokenClassMap:
    """Build a :class:`TokenClassMap` from a calibration run's energies.

    Parameters
    ----------
    sample_energies:
        Per-dynamic-instruction base energies observed during the
        calibration run (our stand-in for the paper's SPECint2000 run).
    k:
        Number of groups; the paper uses 8.
    token_unit:
        Energy of one power token (one instruction resident in the ROB
        for one cycle).  Base energies are expressed as multiples of
        this unit, per the paper's definition (Section III.B).
    """
    if token_unit <= 0:
        raise ValueError("token unit must be positive")
    values = np.fromiter(sample_energies, dtype=np.float64)
    centroids, _ = kmeans_1d(values, k)
    class_tokens = tuple(
        max(1, round(float(c) / token_unit)) for c in centroids
    )
    cmap_partial = TokenClassMap(
        centroids=tuple(float(c) for c in centroids),
        class_tokens=class_tokens,
        kind_class=tuple(0 for _ in Kind),
    )
    kind_class = tuple(
        cmap_partial.classify(BASE_ENERGY[kind]) for kind in Kind
    )
    return TokenClassMap(
        centroids=cmap_partial.centroids,
        class_tokens=class_tokens,
        kind_class=kind_class,
    )


def default_token_classes(
    k: int = 8, seed: int = 12345, token_unit: float = 1.0
) -> TokenClassMap:
    """Token classes from a synthetic SPECint-like calibration population.

    We synthesise a calibration sample with an integer-dominated dynamic
    instruction mix (SPECint2000 is integer code) and small per-dynamic-
    instance energy noise (data-dependent toggling), then cluster it.
    """
    rng = np.random.default_rng(seed)
    # SPECint-like dynamic mix: heavy on INT_ALU, loads and branches.
    mix: Dict[Kind, float] = {
        Kind.INT_ALU: 0.42,
        Kind.INT_MULT: 0.03,
        Kind.FP_ALU: 0.02,
        Kind.FP_MULT: 0.01,
        Kind.LOAD: 0.24,
        Kind.STORE: 0.11,
        Kind.BRANCH: 0.15,
        Kind.ATOMIC: 0.01,
        Kind.NOP: 0.01,
    }
    kinds = list(mix.keys())
    probs = np.array([mix[kd] for kd in kinds])
    probs = probs / probs.sum()
    n = 20000
    chosen = rng.choice(len(kinds), size=n, p=probs)
    base = np.array([BASE_ENERGY[kinds[i]] for i in chosen])
    noise = rng.normal(0.0, 0.15, size=n) * base
    sample = np.clip(base + noise, 0.5, None)
    return calibrate_token_classes(sample, k=k, token_unit=token_unit)
