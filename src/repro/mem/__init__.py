"""Memory subsystem: caches, MOESI coherence, hierarchy (Table 1)."""

from .cache import Cache
from .coherence import CoherenceResult, DirEntry, Directory, State
from .hierarchy import AccessResult, MemoryHierarchy

__all__ = [
    "Cache",
    "CoherenceResult",
    "DirEntry",
    "Directory",
    "State",
    "AccessResult",
    "MemoryHierarchy",
]
