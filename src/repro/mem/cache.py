"""Set-associative cache with LRU replacement.

Used for the per-core L1 I/D caches and the per-core unified L2
(Table 1).  Lines are tracked at cache-line (64 B) granularity; the
simulator only cares about hit/miss timing, occupancy and the victim
line (for write-back accounting and inclusive-hierarchy invalidation),
not data values.

The implementation favours the common case — a hit in a 2- or 4-way
set — which is a short scan over a Python list.  Tag arrays are plain
nested lists: for associativities this small they beat numpy scalar
indexing by a wide margin.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..config import CacheConfig


class Cache:
    """One level of set-associative cache.

    Stores line addresses (address >> offset_bits) rather than raw
    addresses.  ``probe``/``fill``/``invalidate`` are the only
    operations; the hierarchy composes them into load/store handling.
    """

    __slots__ = (
        "cfg", "num_sets", "assoc", "_index_mask", "_offset_bits",
        "_tags", "_lru", "_tick", "hits", "misses", "evictions",
    )

    def __init__(self, cfg: CacheConfig) -> None:
        self.cfg = cfg
        self.num_sets = cfg.num_sets
        self.assoc = cfg.assoc
        self._index_mask = self.num_sets - 1
        self._offset_bits = cfg.offset_bits
        self._tags: List[List[int]] = [
            [-1] * self.assoc for _ in range(self.num_sets)
        ]
        self._lru: List[List[int]] = [
            [0] * self.assoc for _ in range(self.num_sets)
        ]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def line_of(self, addr: int) -> int:
        return addr >> self._offset_bits

    def _set_of(self, line: int) -> int:
        return line & self._index_mask

    def probe(self, line: int, update_lru: bool = True) -> bool:
        """True if ``line`` is present; updates LRU and counters."""
        s = self._set_of(line)
        tags = self._tags[s]
        for w in range(self.assoc):
            if tags[w] == line:
                if update_lru:
                    self._tick += 1
                    self._lru[s][w] = self._tick
                self.hits += 1
                return True
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Presence check without touching LRU or hit/miss counters."""
        return line in self._tags[self._set_of(line)]

    def fill(self, line: int) -> Optional[int]:
        """Insert ``line``; returns the evicted line (or None)."""
        s = self._set_of(line)
        tags = self._tags[s]
        lru = self._lru[s]
        self._tick += 1
        victim_way = 0
        victim_line: Optional[int] = None
        for w in range(self.assoc):
            if tags[w] == line:      # already present (racing fills)
                lru[w] = self._tick
                return None
            if tags[w] == -1:
                tags[w] = line
                lru[w] = self._tick
                return None
        # Set full: evict true LRU way.
        oldest = lru[0]
        for w in range(1, self.assoc):
            if lru[w] < oldest:
                oldest = lru[w]
                victim_way = w
        victim_line = tags[victim_way]
        tags[victim_way] = line
        lru[victim_way] = self._tick
        self.evictions += 1
        return victim_line

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if present; returns whether it was present."""
        s = self._set_of(line)
        tags = self._tags[s]
        for w in range(self.assoc):
            if tags[w] == line:
                tags[w] = -1
                self._lru[s][w] = 0
                return True
        return False

    def flush(self) -> None:
        for s in range(self.num_sets):
            for w in range(self.assoc):
                self._tags[s][w] = -1
                self._lru[s][w] = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def occupancy(self) -> Tuple[int, int]:
        """(valid lines, total ways) — used by tests and reports."""
        valid = sum(
            1
            for s in range(self.num_sets)
            for w in range(self.assoc)
            if self._tags[s][w] != -1
        )
        return valid, self.num_sets * self.assoc
