"""MOESI directory coherence protocol.

A directory-based MOESI protocol keeps the per-core private cache
hierarchies coherent (Table 1: "Coherence Protocol: MOESI").  The
directory is distributed across the mesh by address interleaving; a
request travels to the line's *home node*, which forwards/invalidate
as the protocol requires.

States (per line, per core):

* ``M`` (Modified)  — only copy, dirty.
* ``O`` (Owned)     — dirty, shared; this core supplies data.
* ``E`` (Exclusive) — only copy, clean.
* ``S`` (Shared)    — clean copy, possibly many.
* ``I`` (Invalid)   — not present.

The protocol here is atomic-transaction (no transient races): the
simulator serialises coherence transactions within a cycle, which is
the standard simplification for trace-driven power studies — the
*latency* of each transaction is still modelled in full (directory
indirection, forwarding hop, invalidation round-trips) through the
mesh model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Set, Tuple

from ..units import Cycles


class State(IntEnum):
    I = 0
    S = 1
    E = 2
    O = 3
    M = 4


@dataclass
class DirEntry:
    """Directory knowledge about one line."""

    owner: int = -1            # core holding M/O/E, -1 if none
    sharers: Set[int] = field(default_factory=set)
    dirty: bool = False        # memory copy stale (some core in M/O)

    def is_uncached(self) -> bool:
        return self.owner == -1 and not self.sharers


@dataclass(frozen=True)
class CoherenceResult:
    """Outcome of one coherence transaction.

    ``latency`` is in cycles *beyond* the local cache lookup;
    ``hops`` counts mesh link traversals (for NoC energy);
    ``invalidations`` counts remote copies killed (for L1 energy);
    ``from_cache`` is True for cache-to-cache transfers (vs. memory).
    """

    latency: Cycles
    hops: int
    invalidations: int
    from_cache: bool


class Directory:
    """Distributed MOESI directory over a mesh of ``num_cores`` nodes.

    The caller (the memory hierarchy) tells the directory about every
    miss and upgrade on *shared* lines; the directory returns the
    resulting state for the requester and the transaction cost.  Private
    lines never generate coherence traffic, so the hierarchy bypasses
    the directory for them.
    """

    def __init__(self, num_cores: int, mesh, memory_latency: Cycles) -> None:
        self.num_cores = num_cores
        self.mesh = mesh
        self.memory_latency = memory_latency
        self._entries: Dict[int, DirEntry] = {}
        # Per-core line -> State view (the L2-level coherence state; L1s
        # are kept inclusive by the hierarchy).
        self._core_state: List[Dict[int, State]] = [
            {} for _ in range(num_cores)
        ]
        self.transactions = 0
        self.cache_to_cache = 0
        self.memory_fetches = 0
        self.invalidations_sent = 0
        self.writebacks = 0
        #: Optional :class:`repro.simcheck.CoherenceSanitizer` hook —
        #: when set, every transaction re-validates the touched line.
        self._sanitizer = None
        #: Optional :class:`repro.telemetry.TelemetrySession` hook.
        self._telemetry = None

    # -- helpers ---------------------------------------------------------

    def home_of(self, line: int) -> int:
        """Home node of a line (address-interleaved)."""
        return line % self.num_cores

    def state_of(self, core: int, line: int) -> State:
        return self._core_state[core].get(line, State.I)

    def _entry(self, line: int) -> DirEntry:
        e = self._entries.get(line)
        if e is None:
            e = DirEntry()
            self._entries[line] = e
        return e

    def _set_state(self, core: int, line: int, state: State) -> None:
        if state == State.I:
            self._core_state[core].pop(line, None)
        else:
            self._core_state[core][line] = state

    def _dir_hops(self, requester: int, line: int) -> int:
        return self.mesh.hop_count(requester, self.home_of(line))

    # -- protocol transactions -------------------------------------------

    def read_miss(self, core: int, line: int) -> CoherenceResult:
        """Core issues GetS (load miss in its private hierarchy)."""
        self.transactions += 1
        entry = self._entry(line)
        home_hops = self._dir_hops(core, line)
        lat = self.mesh.traversal_latency(home_hops)  # request to home
        hops = home_hops

        if entry.owner != -1 and entry.owner != core:
            # Forward to owner; owner supplies data and downgrades:
            # M -> O (MOESI keeps the dirty copy on-chip), E -> S.
            owner = entry.owner
            fwd_hops = self.mesh.hop_count(self.home_of(line), owner)
            data_hops = self.mesh.hop_count(owner, core)
            lat += self.mesh.traversal_latency(fwd_hops)
            lat += self.mesh.traversal_latency(data_hops)
            hops += fwd_hops + data_hops
            ost = self.state_of(owner, line)
            if ost in (State.M, State.O):
                self._set_state(owner, line, State.O)
                entry.dirty = True
            else:  # E (or stale directory info treated as clean)
                self._set_state(owner, line, State.S)
                entry.owner = -1
                entry.sharers.add(owner)
            entry.sharers.add(core)
            self._set_state(core, line, State.S)
            self.cache_to_cache += 1
            if self._sanitizer is not None:
                self._sanitizer.check_line(core, line)
            if self._telemetry is not None:
                self._telemetry.on_moesi("GetS", core, line, lat)
            return CoherenceResult(lat, hops, 0, True)

        if entry.sharers - {core}:
            # Clean sharers exist: home supplies data (from its L2/memory
            # image); requester joins the sharer set.
            back_hops = self.mesh.hop_count(self.home_of(line), core)
            lat += self.mesh.traversal_latency(back_hops)
            hops += back_hops
            entry.sharers.add(core)
            self._set_state(core, line, State.S)
            self.cache_to_cache += 1
            if self._sanitizer is not None:
                self._sanitizer.check_line(core, line)
            if self._telemetry is not None:
                self._telemetry.on_moesi("GetS", core, line, lat)
            return CoherenceResult(lat, hops, 0, True)

        # Uncached anywhere else: fetch from memory, grant E.
        back_hops = self.mesh.hop_count(self.home_of(line), core)
        lat += self.memory_latency + self.mesh.traversal_latency(back_hops)
        hops += back_hops
        entry.owner = core
        entry.sharers = {core}
        entry.dirty = False
        self._set_state(core, line, State.E)
        self.memory_fetches += 1
        if self._sanitizer is not None:
            self._sanitizer.check_line(core, line)
        if self._telemetry is not None:
            self._telemetry.on_moesi("GetS", core, line, lat)
        return CoherenceResult(lat, hops, 0, False)

    def write_miss(self, core: int, line: int) -> CoherenceResult:
        """Core issues GetM (store/atomic miss or upgrade from S/O)."""
        self.transactions += 1
        entry = self._entry(line)
        my_state = self.state_of(core, line)
        home_hops = self._dir_hops(core, line)
        lat = self.mesh.traversal_latency(home_hops)
        hops = home_hops
        invals = 0

        # Invalidate every other copy.  Sorted iteration: the loop body is
        # order-independent today, but hash order must never decide stat
        # or latency outcomes (SIM002 determinism rule).
        others = (entry.sharers | ({entry.owner} if entry.owner != -1 else set())) - {core}
        max_inval_hops = 0
        for other in sorted(others):
            h = self.mesh.hop_count(self.home_of(line), other)
            max_inval_hops = max(max_inval_hops, h)
            self._set_state(other, line, State.I)
            invals += 1
        if invals:
            # Invalidations go in parallel; wait for the farthest ack.
            lat += 2 * self.mesh.traversal_latency(max_inval_hops)
            self.invalidations_sent += invals

        from_cache = False
        if my_state == State.I:
            if entry.owner != -1 and entry.owner != core:
                # Dirty copy forwarded from previous owner.
                owner = entry.owner
                data_hops = self.mesh.hop_count(owner, core)
                lat += self.mesh.traversal_latency(data_hops)
                hops += data_hops
                from_cache = True
                self.cache_to_cache += 1
            elif others:
                back_hops = self.mesh.hop_count(self.home_of(line), core)
                lat += self.mesh.traversal_latency(back_hops)
                hops += back_hops
                from_cache = True
                self.cache_to_cache += 1
            else:
                back_hops = self.mesh.hop_count(self.home_of(line), core)
                lat += self.memory_latency + self.mesh.traversal_latency(back_hops)
                hops += back_hops
                self.memory_fetches += 1

        entry.owner = core
        entry.sharers = {core}
        entry.dirty = True
        self._set_state(core, line, State.M)
        if self._sanitizer is not None:
            self._sanitizer.check_line(core, line)
        if self._telemetry is not None:
            self._telemetry.on_moesi("GetM", core, line, lat)
        return CoherenceResult(lat, hops, invals, from_cache)

    def evict(self, core: int, line: int) -> bool:
        """Core evicts ``line`` from its private hierarchy.

        Returns True when the eviction wrote dirty data back (M/O).
        """
        st = self.state_of(core, line)
        if st == State.I:
            return False
        entry = self._entry(line)
        self._set_state(core, line, State.I)
        entry.sharers.discard(core)
        wrote_back = False
        if entry.owner == core:
            entry.owner = -1
            if st in (State.M, State.O):
                self.writebacks += 1
                wrote_back = True
                entry.dirty = False
        if entry.is_uncached():
            del self._entries[line]
        if self._sanitizer is not None:
            self._sanitizer.check_line(core, line)
        if self._telemetry is not None:
            self._telemetry.on_moesi("Evict", core, line,
                                     1 if wrote_back else 0)
        return wrote_back

    # -- invariants (exercised by the property-based tests) ---------------

    def check_invariants(self) -> None:
        """Assert protocol invariants over the whole directory."""
        per_line: Dict[int, List[Tuple[int, State]]] = {}
        for core, view in enumerate(self._core_state):
            for line, st in view.items():
                per_line.setdefault(line, []).append((core, st))
        for line, holders in per_line.items():
            states = [st for _, st in holders]
            # At most one writable/dirty-supplier copy.
            assert sum(1 for s in states if s in (State.M, State.E, State.O)) <= 1, (
                f"line {line:#x}: multiple M/E/O holders: {holders}"
            )
            if any(s == State.M for s in states) or any(s == State.E for s in states):
                assert len(holders) == 1, (
                    f"line {line:#x}: M/E coexists with other copies: {holders}"
                )
            entry = self._entries.get(line)
            assert entry is not None, f"line {line:#x} cached but no dir entry"
            for core, st in holders:
                if st in (State.M, State.O, State.E):
                    assert entry.owner == core, (
                        f"line {line:#x}: owner mismatch {entry.owner} vs {core}"
                    )
