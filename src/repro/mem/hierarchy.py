"""Per-core cache hierarchy glued to the MOESI directory.

Each core owns a private L1I, L1D and unified L2 (Table 1).  The L2 is
inclusive of both L1s.  Accesses to the globally shared address region
(``addr >= SHARED_BASE``) are kept coherent through the distributed
MOESI directory (:mod:`repro.mem.coherence`); private accesses only pay
the private-hierarchy latencies.

The hierarchy returns an :class:`AccessResult` with the latency beyond
the L1 lookup plus the event counts the power model converts into
energy (L1/L2/memory accesses, NoC flit-hops, invalidations).
"""

from __future__ import annotations

from typing import List, NamedTuple

from ..config import CMPConfig
from ..noc.mesh import Mesh2D
from ..units import Cycles
from ..trace.generator import SHARED_BASE
from .cache import Cache
from .coherence import Directory, State


class AccessResult(NamedTuple):
    """Timing and energy-relevant events of one memory access."""

    latency: Cycles     # beyond the L1 lookup (0 = L1 hit)
    l1_hit: bool
    l2_access: bool
    mem_access: bool
    flit_hops: int
    invalidations: int
    writeback: bool


_L1_HIT = AccessResult(0, True, False, False, 0, 0, False)


class MemoryHierarchy:
    """All private caches of the CMP plus the shared MOESI directory."""

    def __init__(self, cfg: CMPConfig, mesh: Mesh2D) -> None:
        self.cfg = cfg
        self.mesh = mesh
        n = cfg.num_cores
        self.l1i: List[Cache] = [Cache(cfg.mem.l1i) for _ in range(n)]
        self.l1d: List[Cache] = [Cache(cfg.mem.l1d) for _ in range(n)]
        self.l2: List[Cache] = [Cache(cfg.mem.l2_per_core) for _ in range(n)]
        self.directory = Directory(n, mesh, cfg.mem.memory_latency)
        self._l2_lat: Cycles = cfg.mem.l2_per_core.latency
        self._mem_lat: Cycles = cfg.mem.memory_latency
        self._shared_line_floor = SHARED_BASE >> cfg.mem.l1d.offset_bits

    # -- helpers ----------------------------------------------------------

    def is_shared_line(self, line: int) -> bool:
        return line >= self._shared_line_floor

    def _fill_l2(self, core: int, line: int) -> AccessResult | None:
        """Insert into L2, handling inclusive back-invalidation and
        coherence eviction of the victim.  Returns writeback info."""
        victim = self.l2[core].fill(line)
        wrote_back = False
        if victim is not None:
            # Inclusive hierarchy: kill the victim in both L1s.
            self.l1i[core].invalidate(victim)
            self.l1d[core].invalidate(victim)
            if self.is_shared_line(victim):
                wrote_back = self.directory.evict(core, victim)
        if wrote_back:
            return AccessResult(0, False, False, False, 0, 0, True)
        return None

    # -- instruction fetch -------------------------------------------------

    def fetch_instr(self, core: int, pc: int) -> AccessResult:
        """Instruction-cache access for one fetch group leader."""
        line = self.l1i[core].line_of(pc)
        if self.l1i[core].probe(line):
            return _L1_HIT
        lat = self._l2_lat
        l2 = self.l2[core]
        if not l2.probe(line):
            lat += self._mem_lat
            self._fill_l2(core, line)
        self.l1i[core].fill(line)
        return AccessResult(lat, False, True, lat > self._l2_lat, 0, 0, False)

    # -- data accesses ------------------------------------------------------

    def load(self, core: int, addr: int) -> AccessResult:
        line = self.l1d[core].line_of(addr)
        shared = self.is_shared_line(line)
        if self.l1d[core].probe(line):
            if not shared:
                return _L1_HIT
            # Shared line cached locally: still a hit unless another core
            # invalidated it (handled below via directory state).
            if self.directory.state_of(core, line) != State.I:
                return _L1_HIT
            self.l1d[core].invalidate(line)
            self.l2[core].invalidate(line)
            self.l1d[core].misses += 1  # reclassify the stale hit

        lat = self._l2_lat
        l2_hit = self.l2[core].probe(line)
        if shared and l2_hit and self.directory.state_of(core, line) == State.I:
            self.l2[core].invalidate(line)
            l2_hit = False

        flit_hops = 0
        invals = 0
        mem = False
        wb = False
        if not l2_hit:
            if shared:
                res = self.directory.read_miss(core, line)
                lat += res.latency
                flit_hops = self.mesh.record_message(res.hops)
                mem = not res.from_cache
            else:
                lat += self._mem_lat
                mem = True
            wb_res = self._fill_l2(core, line)
            wb = wb_res is not None
        self.l1d[core].fill(line)
        return AccessResult(lat, False, True, mem, flit_hops, invals, wb)

    def store(self, core: int, addr: int) -> AccessResult:
        line = self.l1d[core].line_of(addr)
        shared = self.is_shared_line(line)
        if not shared:
            # Private store: same path as a load (write-allocate).
            if self.l1d[core].probe(line):
                return _L1_HIT
            lat = self._l2_lat
            mem = False
            if not self.l2[core].probe(line):
                lat += self._mem_lat
                mem = True
                self._fill_l2(core, line)
            self.l1d[core].fill(line)
            return AccessResult(lat, False, True, mem, 0, 0, False)

        st = self.directory.state_of(core, line)
        l1_present = self.l1d[core].probe(line)
        if st in (State.M, State.E) and l1_present:
            if st == State.E:
                # Silent E->M upgrade.
                self.directory._set_state(core, line, State.M)
                entry = self.directory._entry(line)
                entry.dirty = True
            return _L1_HIT
        # Need GetM: upgrade from S/O/I (and refetch if not present).
        res = self.directory.write_miss(core, line)
        lat = self._l2_lat + res.latency
        flit_hops = self.mesh.record_message(res.hops)
        if not self.l2[core].contains(line):
            self._fill_l2(core, line)
        if not l1_present:
            self.l1d[core].fill(line)
        return AccessResult(
            lat, False, True, False, flit_hops, res.invalidations, False
        )

    def atomic(self, core: int, addr: int) -> AccessResult:
        """Atomic read-modify-write (lock/barrier primitives).

        Always needs M; modelled as a store with RMW port occupancy
        charged by the pipeline.
        """
        return self.store(core, addr)

    # -- warm-up -------------------------------------------------------------

    def prewarm(
        self,
        core: int,
        private_lines: range,
        shared_lines: range = range(0),
    ) -> None:
        """Preload a core's L2 with its working set (no stats, no timing).

        Mirrors the paper's methodology of measuring the *parallel phase*:
        by then the initialization phase has touched all program data, so
        steady-state runs see capacity/coherence misses, not a cold-start
        compulsory-miss storm.  Shared lines enter in S state (read by
        everyone during initialization).
        """
        l2 = self.l2[core]
        hits, misses = l2.hits, l2.misses
        for line in private_lines:
            if not l2.contains(line):
                l2.fill(line)
        for line in shared_lines:
            if not l2.contains(line):
                l2.fill(line)
            st = self.directory.state_of(core, line)
            if st == State.I:
                entry = self.directory._entry(line)
                entry.sharers.add(core)
                self.directory._set_state(core, line, State.S)
        l2.hits, l2.misses = hits, misses

    # -- statistics ---------------------------------------------------------

    def miss_rates(self, core: int) -> dict:
        def rate(c: Cache) -> float:
            return c.misses / c.accesses if c.accesses else 0.0

        return {
            "l1i": rate(self.l1i[core]),
            "l1d": rate(self.l1d[core]),
            "l2": rate(self.l2[core]),
        }
