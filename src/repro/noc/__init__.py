"""On-chip interconnect: switched 2D mesh (Table 1)."""

from .mesh import Mesh2D, MeshCoord

__all__ = ["Mesh2D", "MeshCoord"]
