"""2D-mesh interconnection network (Table 1, "Network Parameters").

Switched 2D mesh with XY (dimension-ordered) routing, 4-cycle link
latency, 4-byte flits and 1 flit/cycle link bandwidth.  The simulator
uses the mesh for two things:

* *latency* of coherence transactions (hop count x per-hop latency,
  plus serialisation of the message's flits), and
* *energy* of on-chip traffic (per flit-hop).

Link contention is modelled statistically: coherence misses are rare
enough in these workloads that queueing is second-order; the router
pipeline latency is charged per hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..config import NetworkConfig
from ..units import Cycles


@dataclass(frozen=True)
class MeshCoord:
    x: int
    y: int


class Mesh2D:
    """A ``width x height`` mesh of routers, one core per router."""

    def __init__(self, num_nodes: int, cfg: NetworkConfig) -> None:
        if num_nodes <= 0:
            raise ValueError("mesh needs at least one node")
        self.cfg = cfg
        self.num_nodes = num_nodes
        self.width, self.height = self._dims(num_nodes)
        self._coords: List[MeshCoord] = [
            MeshCoord(i % self.width, i // self.width)
            for i in range(num_nodes)
        ]
        self.flit_hops = 0          # total flit-link traversals (energy)
        self.messages = 0
        #: Optional :class:`repro.simcheck.NoCProgressSanitizer` hook.
        self._sanitizer = None
        #: Optional :class:`repro.telemetry.TelemetrySession` hook.
        self._telemetry = None

    @staticmethod
    def _dims(n: int) -> Tuple[int, int]:
        import math

        w = int(math.isqrt(n))
        while n % w:
            w -= 1
        h = n // w
        return (max(w, h), min(w, h))

    def coord_of(self, node: int) -> MeshCoord:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} out of range")
        return self._coords[node]

    def hop_count(self, src: int, dst: int) -> int:
        """Manhattan distance under XY routing."""
        a, b = self.coord_of(src), self.coord_of(dst)
        return abs(a.x - b.x) + abs(a.y - b.y)

    def route(self, src: int, dst: int) -> List[int]:
        """The XY route as a list of node ids, inclusive of endpoints."""
        a, b = self.coord_of(src), self.coord_of(dst)
        path = [src]
        x, y = a.x, a.y
        while x != b.x:
            x += 1 if b.x > x else -1
            path.append(y * self.width + x)
        while y != b.y:
            y += 1 if b.y > y else -1
            path.append(y * self.width + x)
        return path

    def traversal_latency(self, hops: int, payload_bytes: int = 64) -> Cycles:
        """Latency of a message crossing ``hops`` links.

        Head latency = hops x (link + router); tail adds flit
        serialisation at 1 flit/cycle for the payload (a 64 B cache line
        = 16 flits of 4 B).
        """
        if hops <= 0:
            return 0
        flits = max(
            1, -(-payload_bytes // self.cfg.flit_bytes)
        )  # ceil division
        head = hops * (self.cfg.link_latency + self.cfg.router_latency)
        tail = (flits - 1) // self.cfg.link_bandwidth_flits
        return head + tail

    def record_message(self, hops: int, payload_bytes: int = 64) -> int:
        """Account energy-relevant flit-hops for a message; returns them."""
        flits = max(1, -(-payload_bytes // self.cfg.flit_bytes))
        fh = flits * max(hops, 0)
        self.flit_hops += fh
        self.messages += 1
        if self._sanitizer is not None:
            self._sanitizer.on_inject(hops, flits)
        if self._telemetry is not None:
            self._telemetry.on_mesh(hops, flits, fh)
        return fh
