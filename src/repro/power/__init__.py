"""Power modelling: structure energies, tokens/PTHT, DVFS, throttles, thermal."""

from .cacti import StructureEnergies, cache_access_energy, sram_access_energy
from .dvfs import DVFSController
from .microarch import MicroarchThrottle, Technique, select_technique
from .model import (
    CLOCK_POWER_EU,
    LEAKAGE_NOMINAL_EU,
    TOKEN_UNIT_EU,
    CycleEvents,
    EnergyModel,
)
from .thermal import ThermalModel
from .tokens import PowerTokenHistoryTable, TokenAccountant

__all__ = [
    "StructureEnergies",
    "cache_access_energy",
    "sram_access_energy",
    "DVFSController",
    "MicroarchThrottle",
    "Technique",
    "select_technique",
    "CLOCK_POWER_EU",
    "LEAKAGE_NOMINAL_EU",
    "TOKEN_UNIT_EU",
    "CycleEvents",
    "EnergyModel",
    "ThermalModel",
    "PowerTokenHistoryTable",
    "TokenAccountant",
]
