"""Cacti-style structure energy scaling.

The paper obtains its 32 nm power scaling factors from Cacti 5.1 [16].
We reproduce the *relative* energy relationships with a simplified
analytical model of SRAM-array access energy: access energy grows
roughly with the square root of capacity (bitline/wordline lengths)
times an associativity term (parallel tag+data way reads), all scaled
by the process feature size.

Absolute joules are irrelevant to the reproduction — every result in
the paper is normalized — so energies are expressed in *energy units*
(EU), where 1 EU is calibrated such that typical per-instruction base
costs match the power-token table in :mod:`repro.isa.instructions`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import CacheConfig, CMPConfig


def sram_access_energy(
    size_bytes: int,
    assoc: int,
    line_bytes: int = 64,
    feature_nm: int = 32,
) -> float:
    """Access energy of an SRAM array in EU.

    Scaling: ~sqrt(capacity) for wire energy, a sublinear associativity
    term for the parallel way reads, and quadratic improvement with
    feature size (capacitance per wire-length x voltage^2).
    """
    if size_bytes <= 0 or assoc <= 0:
        raise ValueError("size and associativity must be positive")
    kb = size_bytes / 1024.0
    way_term = 0.6 + 0.4 * math.sqrt(assoc)
    tech_term = (feature_nm / 32.0) ** 2
    return 0.12 * math.sqrt(kb) * way_term * tech_term


def cache_access_energy(cfg: CacheConfig, feature_nm: int = 32) -> float:
    return sram_access_energy(
        cfg.size_bytes, cfg.assoc, cfg.line_bytes, feature_nm
    )


def wire_energy_per_mm(feature_nm: int = 32) -> float:
    """Energy to move one bit 1 mm on a mid-layer wire (EU)."""
    return 0.0015 * (feature_nm / 32.0)


@dataclass(frozen=True)
class StructureEnergies:
    """Per-event energies (EU) of every modelled structure."""

    l1i_access: float
    l1d_access: float
    l2_access: float
    mem_access: float
    noc_flit_hop: float
    invalidation: float
    ptht_access: float
    bpred_access: float

    @classmethod
    def from_config(cls, cfg: CMPConfig) -> "StructureEnergies":
        nm = cfg.tech.process_nm
        l1i = cache_access_energy(cfg.mem.l1i, nm)
        l1d = cache_access_energy(cfg.mem.l1d, nm)
        l2 = cache_access_energy(cfg.mem.l2_per_core, nm)
        # Off-chip access: I/O drivers + DRAM row activation dominate;
        # roughly an order of magnitude over a large L2 access.
        mem = 12.0 * l2
        # One 4-byte flit over one ~1.5 mm mesh link + router traversal.
        flit = 32 * 1.5 * wire_energy_per_mm(nm) + 0.05
        inval = l1d + 0.1  # tag probe + state write at the target
        # PTHT: 8K entries x ~2 B = 16 KB direct-mapped structure.
        ptht = sram_access_energy(
            cfg.power.ptht_entries * 2, 1, feature_nm=nm
        )
        bp = sram_access_energy(cfg.core.bp_table_bytes, 1, feature_nm=nm)
        return cls(
            l1i_access=l1i,
            l1d_access=l1d,
            l2_access=l2,
            mem_access=mem,
            noc_flit_hop=flit,
            invalidation=inval,
            ptht_access=ptht,
            bpred_access=bp,
        )
