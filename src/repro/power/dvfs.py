"""Per-core DVFS / DFS controller.

Implements the coarse-grained first level of the evaluated techniques
(Section III.C): five power modes

    (100% V, 100% f) (95, 95) (90, 90) (90, 75) (90, 65)

for DVFS, and the same frequency points at full voltage for DFS.

The controller follows the classic exploration/use-window structure the
paper describes as DVFS's handicap: it observes average power over a
``window_cycles`` window and only then re-selects a mode; mode changes
pay a per-step transition latency (Kim's fast on-chip regulators [8],
the paper's best-case assumption) during which the core runs at the
slower of the two modes' frequencies while paying the higher voltage.
"""

from __future__ import annotations

from typing import Tuple

from ..config import DVFSConfig
from ..units import Cycles, Joules, Watts


def _window_joules(power: Watts) -> Joules:
    """One cycle of power folded into the observation-window energy.

    Exchange rate 1 (one sample = one cycle); the accumulator crosses
    dimensions here so the checker sees the conversion is deliberate.
    """
    return power  # simcheck: disable=UNIT004 - the declared exchange


class DVFSController:
    """Window-averaged mode selection toward a local power budget."""

    __slots__ = (
        "cfg", "modes", "mode", "target_mode", "_window_energy",
        "_window_left", "_transition_left", "transitions", "f_credit",
        "_telemetry", "_core_id",
    )

    def __init__(self, cfg: DVFSConfig, dfs: bool = False) -> None:
        self.cfg = cfg
        if dfs:
            self.modes: Tuple[Tuple[float, float], ...] = tuple(
                (1.0, f) for _, f in cfg.modes
            )
        else:
            self.modes = cfg.modes
        self.mode = 0
        self.target_mode = 0
        self._window_energy: Joules = 0.0
        self._window_left: Cycles = cfg.window_cycles
        self._transition_left: Cycles = 0
        self.transitions = 0
        self.f_credit = 0.0
        #: Optional :class:`repro.telemetry.TelemetrySession` hook; the
        #: session stamps ``_core_id`` when it attaches.
        self._telemetry = None
        self._core_id = -1

    # -- state queries -----------------------------------------------------

    @property
    def v_scale(self) -> float:
        if self._transition_left > 0:
            # Pay the higher voltage of the two endpoint modes.
            return max(self.modes[self.mode][0], self.modes[self.target_mode][0])
        return self.modes[self.mode][0]

    @property
    def f_scale(self) -> float:
        if self._transition_left > 0:
            return min(self.modes[self.mode][1], self.modes[self.target_mode][1])
        return self.modes[self.mode][1]

    @property
    def in_transition(self) -> bool:
        return self._transition_left > 0

    # -- per-cycle operation -------------------------------------------------

    def tick(self, core_power: Watts, local_budget: Watts) -> bool:
        """Advance one global cycle.

        Returns True when the core should execute a pipeline step this
        cycle (frequency scaling by cycle-skipping: the core earns
        ``f_scale`` execution credit per global cycle).
        """
        if self._transition_left > 0:
            self._transition_left -= 1
            if self._transition_left == 0:
                self.mode = self.target_mode

        self._window_energy += _window_joules(core_power)
        self._window_left -= 1
        if self._window_left <= 0:
            avg: Watts = self._window_energy / self.cfg.window_cycles
            self._select_mode(avg, local_budget)
            self._window_energy = 0.0
            self._window_left = self.cfg.window_cycles

        self.f_credit += self.f_scale
        if self.f_credit >= 1.0:
            self.f_credit -= 1.0
            return True
        return False

    def _select_mode(self, avg_power: Watts, budget: Watts) -> None:
        """Pick the fastest mode whose scaled power fits the budget."""
        if self._transition_left > 0:
            return  # finish the current transition first
        if avg_power <= 0:
            target = 0
        else:
            cur_v, cur_f = self.modes[self.mode]
            cur_scale = cur_v * cur_v * cur_f
            target = len(self.modes) - 1  # default: slowest mode
            for i, (v, f) in enumerate(self.modes):
                scale = v * v * f
                # Predicted power if we moved to mode i.
                predicted = avg_power * (scale / cur_scale)
                if predicted <= budget:
                    target = i
                    break
        if target != self.mode:
            steps = abs(target - self.mode)
            self._transition_left = steps * self.cfg.transition_cycles_per_step
            self.target_mode = target
            self.transitions += 1
            if self._telemetry is not None:
                self._telemetry.on_dvfs(self._core_id, self.mode, target)

    def force_mode(self, mode: int) -> None:
        """Jump to a mode instantly (used by tests and warm starts)."""
        if not (0 <= mode < len(self.modes)):
            raise ValueError(f"mode {mode} out of range")
        self.mode = mode
        self.target_mode = mode
        self._transition_left = 0
