"""Microarchitectural power-saving techniques (the "second level").

The 2-level approach of Cebrián et al. [2] first applies DVFS to bring
average power near the budget, then engages fine-grained
microarchitectural techniques to shave the remaining power spikes.
Which technique fires depends on how far over the budget the core is —
deeper overshoot, more aggressive mechanism:

=====================  =============================================
overshoot (fraction)   technique
=====================  =============================================
<= 10%                 fetch throttling (fetch every other cycle)
<= 25%                 fetch gating (no fetch this cycle)
<= 50%                 fetch gating + issue-width halving
>  50%                 pipeline gating (no fetch, no issue)
=====================  =============================================

These all act within a single cycle (no transition latency), which is
what makes the second level accurate where DVFS is not.
"""

from __future__ import annotations

from enum import IntEnum


class Technique(IntEnum):
    """Second-level mechanisms, ordered by aggressiveness."""

    NONE = 0
    FETCH_LIGHT = 1      # skip fetch one cycle in four
    FETCH_THROTTLE = 2   # fetch on alternate cycles
    FETCH_GATE = 3       # no fetch
    ISSUE_HALF = 4       # no fetch + half issue width
    PIPELINE_GATE = 5    # no fetch, no issue (drain/commit only)


#: The techniques that narrow the issue width.  A module constant so the
#: controllers' per-core actuator loops don't rebuild the tuple every
#: cycle (simcheck PERF001).
ISSUE_TECHNIQUES = (Technique.ISSUE_HALF, Technique.PIPELINE_GATE)

#: Overshoot thresholds (fractions over the local budget) selecting each
#: technique, scanned in order.
_THRESHOLDS = (
    (0.05, Technique.FETCH_LIGHT),
    (0.12, Technique.FETCH_THROTTLE),
    (0.25, Technique.FETCH_GATE),
    (0.50, Technique.ISSUE_HALF),
)


def select_technique(overshoot_fraction: float) -> Technique:
    """Choose the mechanism for a given relative overshoot.

    ``overshoot_fraction`` is ``(power - budget) / budget``; values <= 0
    need no mechanism.
    """
    if overshoot_fraction <= 0.0:
        return Technique.NONE
    for limit, tech in _THRESHOLDS:
        if overshoot_fraction <= limit:
            return tech
    return Technique.PIPELINE_GATE


class MicroarchThrottle:
    """Per-core actuator applying the selected technique each cycle."""

    __slots__ = ("technique", "_phase", "engaged_cycles", "by_technique")

    def __init__(self) -> None:
        self.technique = Technique.NONE
        self._phase = 0
        self.engaged_cycles = 0
        self.by_technique = [0] * (max(Technique) + 1)

    def set(self, technique: Technique) -> None:
        self.technique = technique

    def tick(self) -> None:
        """Advance internal state; call once per executed cycle."""
        self._phase = (self._phase + 1) & 3
        if self.technique != Technique.NONE:
            self.engaged_cycles += 1
            self.by_technique[self.technique] += 1

    @property
    def fetch_allowed(self) -> bool:
        t = self.technique
        if t == Technique.NONE:
            return True
        if t == Technique.FETCH_LIGHT:
            return self._phase != 0
        if t == Technique.FETCH_THROTTLE:
            return (self._phase & 1) == 0
        return False  # FETCH_GATE, ISSUE_HALF, PIPELINE_GATE

    def issue_width(self, full_width: int) -> int:
        t = self.technique
        if t == Technique.ISSUE_HALF:
            return max(1, full_width // 2)
        if t == Technique.PIPELINE_GATE:
            return 0
        return full_width
