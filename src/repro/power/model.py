"""Per-cycle core power model.

Power is reported in *energy units* (EU) per cycle.  A core's per-cycle
power is the sum of:

* **event energy** — each dynamic instruction's base energy
  (:data:`repro.isa.instructions.BASE_ENERGY`) charged in three slices:
  30% at fetch/decode/rename, 45% at execute-complete, 25% at commit.
  Memory-system events (L2, memory, NoC flits, invalidations) charge
  the Cacti-derived energies of :mod:`repro.power.cacti` when the
  access completes.
* **window occupancy** — every instruction resident in the ROB burns
  one *power-token unit* per cycle (wakeup/select, bypass and regfile
  background activity).  This term is the physical counterpart of the
  paper's power-token definition: one token = the energy of one
  instruction sitting in the ROB for one cycle.
* **clock tree and sequential overhead** — scaled by the core's
  activity with an imperfect-gating floor (``gating_residue``).
* **leakage** — HotLeakage-style: linear in voltage, exponential in
  temperature.

Dynamic terms scale with ``v_scale**2`` under DVFS; frequency scaling
dilates time (the core simply executes on a fraction of global cycles),
so no explicit ``f`` factor appears here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from ..config import CMPConfig
from ..isa.instructions import BASE_ENERGY, Kind
from ..units import Joules, Tokens, Watts
from .cacti import StructureEnergies

#: Slices of an instruction's base energy charged at each pipeline event.
FETCH_FRAC = 0.30
COMPLETE_FRAC = 0.45
COMMIT_FRAC = 0.25

#: EU burned per ROB-resident instruction per cycle (the power-token unit).
TOKEN_UNIT_EU: Watts = 0.15

#: Clock tree + sequential elements at full activity (EU/cycle).
CLOCK_POWER_EU: Watts = 12.0

#: Leakage at nominal voltage and reference temperature (EU/cycle).
LEAKAGE_NOMINAL_EU: Watts = 6.0

#: Temperature sensitivity of leakage (Kelvin per e-fold).
LEAKAGE_TEMP_EFOLD_K = 30.0


@dataclass
class CycleEvents:
    """Raw event counts of one core in one cycle (pipeline output)."""

    fetched_energy: float = 0.0      # sum of BASE_ENERGY over fetched
    completed_energy: float = 0.0    # over completed
    committed_energy: float = 0.0    # over committed
    n_fetched: int = 0
    n_branches: int = 0
    l2_accesses: int = 0
    mem_accesses: int = 0
    flit_hops: int = 0
    invalidations: int = 0
    rob_occupancy: int = 0
    active: bool = True              # False on f-scaled skipped cycles

    def reset(self) -> None:
        self.fetched_energy = 0.0
        self.completed_energy = 0.0
        self.committed_energy = 0.0
        self.n_fetched = 0
        self.n_branches = 0
        self.l2_accesses = 0
        self.mem_accesses = 0
        self.flit_hops = 0
        self.invalidations = 0
        self.rob_occupancy = 0
        self.active = True


class EnergyModel:
    """Converts pipeline events into per-cycle power (EU)."""

    def __init__(self, cfg: CMPConfig) -> None:
        self.cfg = cfg
        self.struct = StructureEnergies.from_config(cfg)
        self.token_unit = TOKEN_UNIT_EU
        self.clock_power = CLOCK_POWER_EU
        self.leak_nominal = LEAKAGE_NOMINAL_EU
        self.gating_residue = cfg.power.gating_residue
        self.temp_ref = cfg.tech.ambient_k + 20.0
        self._act_norm = 1.0 / (cfg.core.decode_width + cfg.core.commit_width)
        # Set True by the simulator when the controller uses the PTHT or
        # the PTB wires, so their overheads are charged.
        self.charge_ptht = False
        self.ptb_overhead_fraction = 0.0

    # -- component models --------------------------------------------------

    def leakage(self, v_scale: float, temp_k: float) -> Watts:
        """Leakage power (EU/cycle): ~V x exp(T)."""
        t_term = math.exp((temp_k - self.temp_ref) / LEAKAGE_TEMP_EFOLD_K)
        return self.leak_nominal * v_scale * t_term

    def clock(self, activity: float, v_scale: float) -> Watts:
        """Clock-tree power with imperfect gating, scaled by V^2."""
        g = self.gating_residue
        return self.clock_power * (g + (1.0 - g) * activity) * v_scale * v_scale

    # -- the per-cycle aggregation ------------------------------------------

    def cycle_power(
        self,
        ev: CycleEvents,
        v_scale: float = 1.0,
        temp_k: float | None = None,
    ) -> Watts:
        """Total power of one core for one cycle, in EU."""
        temp = self.temp_ref if temp_k is None else temp_k
        leak = self.leakage(v_scale, temp)
        if not ev.active:
            # Frequency-scaled skipped cycle: only gated clock, occupancy
            # hold power and leakage.
            v2 = v_scale * v_scale
            return (
                self.clock_power * self.gating_residue * v2
                + ev.rob_occupancy * self.token_unit * v2 * 0.5
                + leak
            )
        s = self.struct
        dyn = (
            ev.fetched_energy * FETCH_FRAC
            + ev.completed_energy * COMPLETE_FRAC
            + ev.committed_energy * COMMIT_FRAC
            + ev.n_branches * s.bpred_access
            + ev.l2_accesses * s.l2_access
            + ev.mem_accesses * s.mem_access
            + ev.flit_hops * s.noc_flit_hop
            + ev.invalidations * s.invalidation
            + ev.rob_occupancy * self.token_unit
        )
        if self.charge_ptht:
            dyn += ev.n_fetched * s.ptht_access
        activity = min(
            1.0, (ev.n_fetched + ev.rob_occupancy * 0.02) * self._act_norm * 2.0
        )
        v2 = v_scale * v_scale
        total = dyn * v2 + self.clock(activity, v_scale) + leak
        if self.ptb_overhead_fraction:
            total *= 1.0 + self.ptb_overhead_fraction
        return total

    # -- derived constants ----------------------------------------------------

    @cached_property
    def mean_busy_base_energy(self) -> Joules:
        """Average base energy of a busy-mix instruction (EU)."""
        from ..trace.phases import DEFAULT_MIX

        return sum(BASE_ENERGY[k] * f for k, f in DEFAULT_MIX.items())

    @cached_property
    def peak_core_power(self) -> Watts:
        """Sustained peak per-core power (EU/cycle) at nominal V/f.

        Architectural peak: full-width issue of *expensive* (FP-heavy)
        instructions — modelled as 1.75x the average busy instruction
        cost — with a half-full window, full clock activity and nominal
        leakage.  Calibrated so a 50% budget sits a little *below* the
        average busy-phase core power: busy cores hover just over their
        local share with bursts well above it, which is the regime the
        paper's mechanisms operate in (frequent moderate overshoot, not
        sustained 2x overload).
        """
        c = self.cfg.core
        events = (
            c.decode_width * 1.75 * self.mean_busy_base_energy
            + self.struct.bpred_access * c.decode_width * 0.15
        )
        occupancy = 0.5 * c.rob_entries * self.token_unit
        return (
            events
            + occupancy
            + self.clock(1.0, 1.0)
            + self.leakage(1.0, self.temp_ref)
        )

    @cached_property
    def uncontrollable_power(self) -> Watts:
        """Power a core burns even when fully gated (EU/cycle)."""
        return (
            self.clock_power * self.gating_residue
            + self.leakage(1.0, self.temp_ref)
        )

    def global_peak_power(self, num_cores: int) -> Watts:
        return self.peak_core_power * num_cores

    # -- token/EU exchange -----------------------------------------------------

    def tokens_to_eu(self, tokens: Tokens) -> Watts:
        """Token count -> per-cycle power (the declared exchange point)."""
        return tokens * self.token_unit

    def eu_to_tokens(self, eu: Watts) -> Tokens:
        """Per-cycle power -> token count (the declared exchange point)."""
        return eu / self.token_unit
