"""Lumped-RC per-core thermal model.

The paper reports that PTB's accuracy yields a lower and more stable
chip temperature (minimal standard deviation).  We model each core as a
single thermal RC node (HotSpot-style lumped approximation): the core's
temperature relaxes toward ``ambient + R_th * P`` with time constant
``tau`` cycles.

Updates are batched: the simulator accumulates energy over an update
interval and steps the RC once, which is both faster and numerically
friendlier than per-cycle integration (tau >> 1 cycle).
"""

from __future__ import annotations

import math
from typing import List

from ..units import Cycles, Joules, Watts


def _cycle_energy(power: Watts) -> Joules:
    """One cycle of power integrated over its one-cycle sample.

    The exchange rate is exactly 1 (every sample covers one cycle), but
    power and energy are different dimensions; the accumulator crosses
    through this function so the dimension checker sees the crossing is
    deliberate.
    """
    return power  # simcheck: disable=UNIT004 - the declared exchange


class ThermalModel:
    """Per-core lumped RC thermal nodes with neighbour coupling."""

    def __init__(
        self,
        num_cores: int,
        ambient_k: float,
        r_th: float = 0.9,
        tau_cycles: Cycles = 200_000.0,
        update_interval: Cycles = 256,
        coupling: float = 0.05,
    ) -> None:
        if num_cores <= 0:
            raise ValueError("need at least one core")
        if update_interval <= 0:
            raise ValueError("update interval must be positive")
        self.num_cores = num_cores
        self.ambient = ambient_k
        self.r_th = r_th
        self.tau = tau_cycles
        self.interval = update_interval
        self.coupling = coupling
        self.temps: List[float] = [ambient_k] * num_cores
        self._energy_acc: List[Joules] = [0.0] * num_cores
        self._cycles_acc: Cycles = 0
        # Temperature statistics over time (per update step).
        self._sum_t = 0.0
        self._sum_t2 = 0.0
        self._samples = 0

    def add_cycle(self, core_powers: List[Watts]) -> None:
        """Accumulate one cycle of per-core power (EU)."""
        acc = self._energy_acc
        for i, p in enumerate(core_powers):
            acc[i] += _cycle_energy(p)
        self._cycles_acc += 1
        if self._cycles_acc >= self.interval:
            self._step()

    def _step(self) -> None:
        n = self._cycles_acc
        if n == 0:
            return
        decay = math.exp(-n / self.tau)
        temps = self.temps
        mean_t = sum(temps) / len(temps)
        for i in range(self.num_cores):
            p_avg: Watts = self._energy_acc[i] / n
            # Steady-state target for this power level, pulled toward the
            # chip mean by lateral conduction.
            target = self.ambient + self.r_th * p_avg
            target += self.coupling * (mean_t - temps[i])
            temps[i] = target + (temps[i] - target) * decay
            self._energy_acc[i] = 0.0
            self._sum_t += temps[i]
            self._sum_t2 += temps[i] * temps[i]
            self._samples += 1
        self._cycles_acc = 0

    def flush(self) -> None:
        """Fold any partial interval into the statistics."""
        self._step()

    @property
    def mean_temperature(self) -> float:
        if self._samples == 0:
            return self.ambient
        return self._sum_t / self._samples

    @property
    def std_temperature(self) -> float:
        if self._samples == 0:
            return 0.0
        mean = self._sum_t / self._samples
        var = max(0.0, self._sum_t2 / self._samples - mean * mean)
        return math.sqrt(var)

    def hottest(self) -> float:
        return max(self.temps)
