"""Power tokens and the Power Token History Table (PTHT).

The paper (Section III.B) accounts per-instruction dynamic power in
*power tokens*: one token is the energy of one instruction occupying
the ROB for one cycle.  An instruction's total cost is

    tokens(instr) = base_tokens(class(instr)) + cycles_in_ROB(instr)

where the base cost is quantized to one of 8 K-means classes
(:mod:`repro.isa.kmeans`).

The PTHT is an 8K-entry, direct-mapped, PC-indexed table holding each
static instruction's cost on its *last* execution; it is updated at
commit and read at fetch, which lets a core predict the cost of the
work it is about to admit into the pipeline without performance
counters.
"""

from __future__ import annotations

from typing import List

from ..isa.kmeans import TokenClassMap
from ..units import Cycles, Tokens


def residency_tokens(rob_cycles: Cycles) -> Tokens:
    """ROB residency converted to tokens.

    One token per ROB-resident cycle is the paper's token *definition*
    (Section III.B), so the exchange rate is exactly 1 — but the two
    sides are different dimensions, and every crossing must go through
    this function so the dimension checker can see it is deliberate.
    """
    return rob_cycles  # simcheck: disable=UNIT004 - the declared exchange


class PowerTokenHistoryTable:
    """Direct-mapped, PC-indexed table of last-execution token costs."""

    __slots__ = ("_entries", "_mask", "_tags", "_costs", "default_cost",
                 "hits", "misses", "updates")

    def __init__(self, entries: int, default_cost: Tokens = 24) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("PTHT entries must be a positive power of two")
        self._entries = entries
        self._mask = entries - 1
        self._tags: List[int] = [-1] * entries
        self._costs: List[Tokens] = [default_cost] * entries
        self.default_cost = default_cost
        self.hits = 0
        self.misses = 0
        self.updates = 0

    @property
    def entries(self) -> int:
        return self._entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> Tokens:
        """Token cost of the instruction at ``pc`` per its last run."""
        i = self._index(pc)
        if self._tags[i] == pc:
            self.hits += 1
            return self._costs[i]
        self.misses += 1
        return self.default_cost

    def update(self, pc: int, tokens: Tokens) -> None:
        """Record the observed cost at commit (Section III.B)."""
        i = self._index(pc)
        self._tags[i] = pc
        self._costs[i] = tokens
        self.updates += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TokenAccountant:
    """Per-core, per-cycle power-token bookkeeping.

    Tracks two quantities every cycle:

    * ``consumed`` — tokens actually burned this cycle: one per
      ROB-resident instruction (the residency component) plus the base
      class tokens of each instruction fetched this cycle (the base
      component, charged up-front at fetch as the paper does).
    * ``predicted`` — the PTHT-predicted cost of the instructions
      fetched this cycle, used by controllers to act *before* the
      energy is spent.
    """

    __slots__ = ("token_map", "ptht", "consumed", "predicted",
                 "total_consumed", "_cycle_base", "_cycle_pred",
                 "_telemetry")

    def __init__(self, token_map: TokenClassMap, ptht_entries: int) -> None:
        self.token_map = token_map
        self.ptht = PowerTokenHistoryTable(ptht_entries)
        self.consumed: Tokens = 0       # burned in the current cycle
        self.predicted: Tokens = 0      # PTHT prediction, current cycle
        self.total_consumed: Tokens = 0
        self._cycle_base: Tokens = 0
        self._cycle_pred: Tokens = 0
        #: Optional per-core cost :class:`repro.telemetry.Histogram`.
        self._telemetry = None

    def begin_cycle(self, rob_occupancy: int) -> None:
        self._cycle_base = rob_occupancy  # residency component
        self._cycle_pred = 0

    def on_fetch(self, pc: int, kind: int) -> Tokens:
        """Charge base tokens for a fetched instruction.

        Returns the base class tokens (stored in the ROB entry so the
        commit-time PTHT update can add the residency).
        """
        base = self.token_map.class_tokens[self.token_map.kind_class[kind]]
        self._cycle_base += base
        self._cycle_pred += self.ptht.predict(pc)
        return base

    def on_commit(
        self, pc: int, base_tokens: Tokens, rob_cycles: Cycles
    ) -> Tokens:
        """Record an instruction's final cost in the PTHT at commit."""
        total = base_tokens + residency_tokens(rob_cycles)
        self.ptht.update(pc, total)
        if self._telemetry is not None:
            self._telemetry.observe(total)
        return total

    def end_cycle(self) -> Tokens:
        """Finalize the cycle; returns tokens consumed this cycle."""
        self.consumed = self._cycle_base
        self.predicted = self._cycle_pred
        self.total_consumed += self.consumed
        return self.consumed
