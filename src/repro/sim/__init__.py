"""CMP simulation driver and result types."""

from .cmp import DEFAULT_MAX_CYCLES, CMPSimulator, run_simulation
from .results import (
    PHASE_NAMES,
    SimResult,
    normalized_aopb_pct,
    normalized_energy_pct,
    slowdown_pct,
)

__all__ = [
    "DEFAULT_MAX_CYCLES",
    "CMPSimulator",
    "run_simulation",
    "PHASE_NAMES",
    "SimResult",
    "normalized_aopb_pct",
    "normalized_energy_pct",
    "slowdown_pct",
]
