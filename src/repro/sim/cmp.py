"""The CMP simulator: lock-stepped multicore cycle loop.

Ties every substrate together — cores, caches + MOESI directory, mesh,
sync domain, power model, thermal model and the budget controller — and
advances them one global cycle at a time, which is what lets PTB (a
cycle-level mechanism) be modelled faithfully.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

import numpy as np

from ..budget import make_controller
from ..config import CMPConfig
from ..core.pipeline import Core
from ..isa.kmeans import TokenClassMap, default_token_classes
from ..mem.hierarchy import MemoryHierarchy
from ..noc.mesh import Mesh2D
from ..power.model import CycleEvents, EnergyModel
from ..power.thermal import ThermalModel
from ..simcheck.sanitizers import SanitizerSuite, sanitize_enabled
from ..sync.primitives import SyncDomain
from ..telemetry.session import TelemetrySession, telemetry_enabled
from ..trace.generator import ThreadTraceGenerator
from ..trace.phases import ParallelProgram
from ..units import Watts
from .results import SimResult

#: Fallback run length when a program never completes (deadlock guard).
DEFAULT_MAX_CYCLES = 400_000


class CMPSimulator:
    """One simulation run of one program under one technique."""

    def __init__(
        self,
        cfg: CMPConfig,
        program: ParallelProgram,
        technique: str = "none",
        budget_fraction: Optional[float] = 0.5,
        ptb_policy: Optional[str] = None,
        seed: int = 2011,
        token_map: Optional[TokenClassMap] = None,
        collect_traces: bool = False,
        prewarm: bool = True,
    ) -> None:
        if program.num_threads != cfg.num_cores:
            raise ValueError(
                f"program has {program.num_threads} threads but the CMP has "
                f"{cfg.num_cores} cores (one thread per core required)"
            )
        self.cfg = cfg
        self.program = program
        self.technique = technique
        self.budget_fraction = budget_fraction
        self.collect_traces = collect_traces

        self.energy = EnergyModel(cfg)
        self.mesh = Mesh2D(cfg.num_cores, cfg.net)
        self.hierarchy = MemoryHierarchy(cfg, self.mesh)
        self.sync_domain = SyncDomain(cfg.num_cores, self.mesh)
        tmap = token_map if token_map is not None else default_token_classes(
            cfg.power.token_classes, token_unit=self.energy.token_unit
        )
        self.cores: List[Core] = [
            Core(
                i, cfg, tmap, self.hierarchy, self.sync_domain,
                ThreadTraceGenerator(program.threads[i], seed),
            )
            for i in range(cfg.num_cores)
        ]
        if prewarm:
            self._prewarm_caches()
        peak = self.energy.global_peak_power(cfg.num_cores)
        self.global_budget: Watts = (
            peak * budget_fraction if budget_fraction is not None else peak
        )
        self.controller = make_controller(
            technique, cfg, self.energy, self.global_budget, ptb_policy
        )
        # Charge modelling overheads of the control hardware.
        self.energy.charge_ptht = self.controller.uses_ptht
        if technique in ("ptb", "ptb-spingate"):
            self.energy.ptb_overhead_fraction = cfg.ptb.power_overhead
        self.thermal = ThermalModel(cfg.num_cores, cfg.tech.ambient_k)

        self._policy = (
            ptb_policy if technique in ("ptb", "ptb-spingate") else None
        )

        #: Runtime invariant sanitizers (None = off, zero overhead).
        self.sanitizers: Optional[SanitizerSuite] = None
        if sanitize_enabled(cfg):
            self.sanitizers = SanitizerSuite(cfg)
            self.sanitizers.attach(self)

        #: Telemetry session (None = off; probes cost one `is None` test).
        self.telemetry: Optional[TelemetrySession] = None
        if telemetry_enabled(cfg):
            self.telemetry = TelemetrySession(cfg)
            self.telemetry.attach(self)

    def _prewarm_caches(self) -> None:
        """Preload each core's L2 with its program's working set.

        Reproduces the paper's parallel-phase methodology (Section III.A):
        measurement starts after the sequential initialization phase has
        touched the data, so runs are dominated by steady-state behaviour
        rather than cold-start compulsory misses.
        """
        from ..trace.generator import LINE_BYTES, PRIVATE_REGION_BITS, SHARED_BASE
        from ..trace.phases import ComputePhase, LockPhase

        offset_bits = self.cfg.mem.l1d.offset_bits
        shared_floor = SHARED_BASE >> offset_bits
        for i, thread in enumerate(self.program.threads):
            footprint = 0
            for ph in thread.phases:
                if isinstance(ph, ComputePhase):
                    footprint = max(footprint, ph.footprint_lines)
                elif isinstance(ph, LockPhase):
                    footprint = max(
                        footprint, ph.critical_section.footprint_lines
                    )
            # Cap so the prewarm set fits the private L2 (~16K lines):
            # shared data beyond the hot region stays cold, like real
            # capacity-limited runs.
            l2_lines = self.cfg.mem.l2_per_core.size_bytes // LINE_BYTES
            private_span = min(footprint, (l2_lines * 3) // 4)
            shared_span = min(footprint, l2_lines // 8)
            private_floor = ((i + 1) << PRIVATE_REGION_BITS) >> offset_bits
            self.hierarchy.prewarm(
                i,
                range(private_floor, private_floor + private_span),
                range(shared_floor, shared_floor + shared_span),
            )
            # Program code is resident after initialization as well.
            self.hierarchy.prewarm(i, range(0, 1024))

    # ------------------------------------------------------------------ #

    def run(self, max_cycles: int = DEFAULT_MAX_CYCLES) -> SimResult:
        cfg = self.cfg
        n = cfg.num_cores
        cores = self.cores
        controller = self.controller
        energy = self.energy
        thermal = self.thermal
        budget = self.global_budget
        sync_domain = self.sync_domain

        execute = controller.execute
        fetch_allowed = controller.fetch_allowed
        issue_width = controller.issue_width
        v_scale = controller.v_scale
        budget_lines = controller.budget_lines
        unctrl = energy.uncontrollable_power
        inv_token_unit = 1.0 / energy.token_unit

        powers = [0.0] * n
        smoothed = [0.0] * n
        alpha = cfg.power.sensor_alpha
        beta = 1.0 - alpha
        tokens = [0] * n
        phase_cycles = [[0, 0, 0, 0] for _ in range(n)]
        spin_energy = 0.0
        total_energy = 0.0
        aopb = 0.0
        aopb_global = 0.0
        max_power = 0.0

        trace: Optional[list] = [] if self.collect_traces else None
        core_traces: Optional[list] = [] if self.collect_traces else None

        cycle_power = energy.cycle_power
        temps = thermal.temps
        sanitizers = self.sanitizers
        telemetry = self.telemetry
        begin_cycle = controller.begin_cycle
        end_cycle = controller.end_cycle
        add_thermal_cycle = thermal.add_cycle

        cycle = 0
        done_count = 0
        while cycle < max_cycles and done_count < n:
            if sanitizers is not None:
                sanitizers.on_cycle(cycle)
            if telemetry is not None:
                telemetry.begin_cycle(cycle)
            begin_cycle(cycle)
            total = 0.0
            done_count = 0
            for i in range(n):
                core = cores[i]
                if core.done:
                    done_count += 1
                    core.idle_cycle(cycle)
                elif execute[i]:
                    core.step(cycle, fetch_allowed[i], issue_width[i])
                else:
                    core.idle_cycle(cycle)
                p = cycle_power(core.events, v_scale[i], temps[i])
                powers[i] = p
                # Power grid/package capacitance integrates switching
                # energy; controllers and the AoPB metric both see the
                # filtered curve (cf. the smooth traces of Figures 1/6).
                ps = smoothed[i] * beta + p * alpha
                smoothed[i] = ps
                # Control-plane power tokens: the sensor reading expressed
                # in token currency (the paper's PTHT accounting tracks
                # true power within 1%, so controller and meter agree).
                over_floor = ps - unctrl
                tokens[i] = int(over_floor * inv_token_unit) if over_floor > 0 else 0
                total += p
                # AoPB (Figure 1): per-core area above the core's budget
                # line.  PTB raises a receiving core's line with granted
                # tokens, conserving the global sum.
                d = ps - budget_lines[i]
                if d > 0:
                    aopb += d
                if not core.done:
                    phase_cycles[i][core.sync_phase] += 1
                    if core.is_spinning:
                        spin_energy += p
            total_energy += total
            total_s = 0.0
            for ps in smoothed:
                total_s += ps
            if total_s > budget:
                aopb_global += total_s - budget
            if total > max_power:
                max_power = total
            add_thermal_cycle(powers)
            if telemetry is not None:
                # Same smoothed/budget_lines values the AoPB just used,
                # observed before the controller reacts to this cycle.
                telemetry.sample_cycle(powers, smoothed, budget_lines,
                                       total, total_s)
            end_cycle(cycle, tokens, smoothed, sync_domain)
            if trace is not None:
                trace.append(total)
                core_traces.append(list(powers))
            cycle += 1

        thermal.flush()
        committed = sum(c.committed for c in cores)
        ptht_hits = sum(c.accountant.ptht.hits for c in cores)
        ptht_total = ptht_hits + sum(c.accountant.ptht.misses for c in cores)

        truncated = done_count < n
        if truncated:
            if telemetry is not None:
                telemetry.on_truncated(cycle)
            warnings.warn(
                f"{self.program.name} x{n} ({self.technique}): simulation "
                f"truncated at max_cycles={max_cycles} with "
                f"{n - done_count} thread(s) unfinished; energy/AoPB "
                "aggregates cover the simulated prefix only",
                RuntimeWarning,
                stacklevel=2,
            )
        if telemetry is not None:
            telemetry.finish(cycle, committed)

        return SimResult(
            benchmark=self.program.name,
            technique=self.technique,
            policy=self._policy,
            num_cores=n,
            budget_fraction=self.budget_fraction,
            global_budget=budget,
            cycles=cycle,
            completed=done_count >= n,
            committed_instructions=committed,
            total_energy=total_energy,
            aopb_energy=aopb,
            spin_energy=spin_energy,
            max_power=max_power,
            phase_cycles=phase_cycles,
            mean_temperature=thermal.mean_temperature,
            std_temperature=thermal.std_temperature,
            throttled_cycles=controller.throttled_cycles,
            ptht_hit_rate=ptht_hits / ptht_total if ptht_total else 0.0,
            power_trace=np.asarray(trace) if trace is not None else None,
            extra={"aopb_global": aopb_global},
            core_power_traces=(
                np.asarray(core_traces) if core_traces is not None else None
            ),
            truncated=truncated,
        )


def run_simulation(
    cfg: CMPConfig,
    program: ParallelProgram,
    technique: str = "none",
    budget_fraction: Optional[float] = 0.5,
    ptb_policy: Optional[str] = None,
    seed: int = 2011,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    collect_traces: bool = False,
    token_map: Optional[TokenClassMap] = None,
    prewarm: bool = True,
) -> SimResult:
    """One-call convenience wrapper around :class:`CMPSimulator`."""
    sim = CMPSimulator(
        cfg, program, technique, budget_fraction, ptb_policy, seed,
        token_map, collect_traces, prewarm,
    )
    return sim.run(max_cycles)
