"""Simulation results and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

#: Sync-phase names in breakdown order (matches Figure 3's legend).
PHASE_NAMES = ("busy", "lock_acq", "lock_rel", "barrier")


@dataclass
class SimResult:
    """Everything one simulation run produces.

    Energies are in EU x cycles; powers in EU/cycle.  The paper reports
    normalized quantities, so units cancel in every reproduced figure.
    """

    benchmark: str
    technique: str
    policy: Optional[str]
    num_cores: int
    budget_fraction: Optional[float]
    global_budget: float

    cycles: int
    completed: bool
    committed_instructions: int

    total_energy: float
    aopb_energy: float                  # area over the power budget (Fig. 1)
    spin_energy: float                  # energy burned while spinning (Fig. 4)
    max_power: float
    #: per-core cycles in each sync phase: [core][phase] (Fig. 3)
    phase_cycles: List[List[int]]

    mean_temperature: float
    std_temperature: float

    throttled_cycles: int
    ptht_hit_rate: float

    #: optional per-cycle traces (None unless requested)
    power_trace: Optional[np.ndarray] = None
    core_power_traces: Optional[np.ndarray] = None

    extra: Dict[str, float] = field(default_factory=dict)

    #: The run hit ``max_cycles`` before every thread finished, so the
    #: energy/AoPB aggregates cover only the simulated prefix.
    truncated: bool = False

    def __setstate__(self, state: Dict[str, object]) -> None:
        # Cache entries pickled before `truncated` existed lack the
        # field; derive it from `completed` (its exact complement).
        state.setdefault("truncated", not state.get("completed", True))
        self.__dict__.update(state)

    # -- derived metrics ------------------------------------------------------

    @property
    def avg_power(self) -> float:
        return self.total_energy / self.cycles if self.cycles else 0.0

    @property
    def ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.committed_instructions / (self.cycles * self.num_cores)

    @property
    def aopb_fraction_of_energy(self) -> float:
        """AoPB as a fraction of total energy consumed."""
        return self.aopb_energy / self.total_energy if self.total_energy else 0.0

    @property
    def spin_fraction_of_energy(self) -> float:
        """Figure 4's metric: spin power / total power."""
        return self.spin_energy / self.total_energy if self.total_energy else 0.0

    def phase_fractions(self) -> Dict[str, float]:
        """Figure 3's metric: CMP-wide fraction of time per sync phase."""
        totals = [0] * len(PHASE_NAMES)
        for per_core in self.phase_cycles:
            for p, c in enumerate(per_core):
                totals[p] += c
        grand = sum(totals)
        if grand == 0:
            return {name: 0.0 for name in PHASE_NAMES}
        return {name: totals[p] / grand for p, name in enumerate(PHASE_NAMES)}


def normalized_energy_pct(result: SimResult, base: SimResult) -> float:
    """Energy of ``result`` relative to the uncontrolled base, in percent
    deviation (negative = saving), as in Figures 2/9-12 (left panels)."""
    if base.total_energy == 0:
        return 0.0
    return 100.0 * (result.total_energy / base.total_energy - 1.0)


def normalized_aopb_pct(result: SimResult, base: SimResult) -> float:
    """AoPB of ``result`` as a percentage of the base case's AoPB, as in
    Figures 2/9-12 (right panels).  0 = perfect budget matching."""
    if base.aopb_energy <= 0:
        return 0.0
    return 100.0 * result.aopb_energy / base.aopb_energy

def slowdown_pct(result: SimResult, base: SimResult) -> float:
    """Execution-time increase over the base case in percent (Fig. 13)."""
    if base.cycles == 0:
        return 0.0
    return 100.0 * (result.cycles / base.cycles - 1.0)
