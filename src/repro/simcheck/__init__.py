"""Simulator-correctness tooling: AST lint rules + runtime sanitizers.

PTB's headline numbers (AoPB within ~3% of the budget) are only as
trustworthy as the simulator's bookkeeping: a lost power token, a MOESI
state violation or a nondeterministic iteration order silently corrupts
every figure.  This package provides two independent lines of defence:

* **Static passes** — an ``ast``-based linter with simulator-specific
  rules (SIM001-SIM006; :mod:`repro.simcheck.lint`,
  :mod:`repro.simcheck.rules`) plus three whole-program analyses
  sharing one discovery/effect engine: tick-order hazards and units
  (:mod:`repro.simcheck.flow`), hot-loop perf + coupling
  (:mod:`repro.simcheck.kernel`), and cache-key soundness + worker
  purity (:mod:`repro.simcheck.purity`).  All four gate CI:
  ``python -m repro.simcheck {lint,flow,kernel,purity} src/repro``.

* **Runtime sanitizers** (:mod:`repro.simcheck.sanitizers`) — opt-in
  cross-cutting invariant checks (token conservation, MOESI single-owner,
  NoC progress, ROB ordering) enabled via ``CMPConfig.sanitize=True`` or
  ``REPRO_SANITIZE=1``; zero overhead when off.
"""

from .lint import (
    ConfigModel,
    Finding,
    LintRule,
    iter_rules,
    lint_paths,
    lint_source,
    register_rule,
)
from .sanitizers import (
    CoherenceSanitizer,
    NoCProgressSanitizer,
    PipelineSanitizer,
    SanitizerSuite,
    SanitizerViolation,
    TokenSanitizer,
    sanitize_enabled,
)

__all__ = [
    "ConfigModel",
    "Finding",
    "LintRule",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
    "CoherenceSanitizer",
    "NoCProgressSanitizer",
    "PipelineSanitizer",
    "SanitizerSuite",
    "SanitizerViolation",
    "TokenSanitizer",
    "sanitize_enabled",
]
