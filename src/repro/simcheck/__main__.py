"""``python -m repro.simcheck`` — lint, flow, kernel, purity + smoke entry point."""

import sys

from .cli import main

sys.exit(main())
