"""``python -m repro.simcheck`` — lint + sanitized smoke entry point."""

import sys

from .cli import main

sys.exit(main())
