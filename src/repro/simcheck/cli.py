"""``python -m repro.simcheck`` — the simcheck command-line front end.

Subcommands:

* ``lint PATH...``  — run the SIM rules; print ``file:line:col: RULE msg``
  per finding and exit non-zero when anything is found (CI gate).
* ``flow PATH``     — whole-program flow analyses: same-cycle tick-order
  hazards (FLOW rules) and unit/dimension propagation (UNIT rules),
  gated against ``.simcheck-baseline.json`` so CI fails only on
  regressions.
* ``kernel PATH``   — hot-loop performance lint (PERF rules) plus the
  per-core / cross-core / global field-coupling report that gates the
  numpy SoA rewrite (``--report kernel-report.json``), gated against
  ``.simcheck-kernel-baseline.json``.
* ``purity PATH``   — cache-key soundness (KEY rules) and worker-purity
  analysis (PURE rules) rooted at the experiment runner's cache, gated
  against ``.simcheck-purity-baseline.json``.
* ``smoke``         — run a short 2-core simulation under every PTB
  policy with all runtime sanitizers enabled; exit non-zero on any
  :class:`SanitizerViolation` (CI gate for hook regressions).

All four analysis subcommands accept ``--format json`` (one JSON object
``{"tool", "findings": [...], "count"}``) and ``--format sarif`` (SARIF
2.1.0 for code-scanning annotations); ``kernel`` and ``purity``
additionally accept ``--format table`` for the human report view.  All
four share one baseline surface — ``--baseline FILE`` /
``--write-baseline`` / ``--prune-baseline`` — so CI fails only on
regressions and every accepted finding carries a justification.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence  # noqa: F401 (signatures)

from .lint import Finding, iter_rules, lint_paths


def _emit_findings(
    tool: str, findings: Sequence[Finding], fmt: str
) -> None:
    """Print findings as ``file:line:col`` lines or one document."""
    if fmt == "sarif":
        from .sarif import render_sarif

        print(render_sarif(tool, findings))
    elif fmt == "json":
        print(
            json.dumps(
                {
                    "tool": tool,
                    "findings": [
                        {
                            "path": f.path,
                            "line": f.line,
                            "col": f.col,
                            "rule": f.rule_id,
                            "message": f.message,
                            "fingerprint": f.identity(),
                        }
                        for f in findings
                    ],
                    "count": len(findings),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())


def _add_baseline_args(sub: argparse.ArgumentParser, example: str) -> None:
    """The baseline flag triple shared by lint/flow/kernel/purity."""
    sub.add_argument(
        "--baseline",
        help="baseline JSON of accepted findings, fail only on regressions "
        f"(e.g. {example})",
    )
    sub.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from current findings and exit 0",
    )
    sub.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline entries that no longer fire and report them",
    )


def _gate_with_baseline(
    tool: str, args: argparse.Namespace, findings: Sequence[Finding]
):
    """Baseline plumbing shared by all four passes.

    Loads ``--baseline``, services ``--write-baseline`` /
    ``--prune-baseline``, and otherwise splits findings against the
    baseline.  Returns ``(handled, new, suppressed, stale)`` where
    ``handled`` is an exit code when the command is already finished
    (write/prune/load error) and None when the caller should emit
    ``new`` and gate on it.
    """
    from .flow import apply_baseline, load_baseline, write_baseline

    baseline_path = Path(args.baseline) if args.baseline else None
    baseline = {}
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"simcheck {tool}: {exc}", file=sys.stderr)
            return 2, [], [], []
    for flag in ("prune_baseline", "write_baseline"):
        if getattr(args, flag) and baseline_path is None:
            print(
                f"simcheck {tool}: --{flag.replace('_', '-')} requires "
                "--baseline FILE",
                file=sys.stderr,
            )
            return 2, [], [], []
    if args.prune_baseline:
        return _prune_baseline(tool, baseline_path, findings), [], [], []
    if args.write_baseline:
        count = write_baseline(baseline_path, findings, baseline)
        print(
            f"simcheck {tool}: wrote {count} baseline entries to "
            f"{baseline_path}",
            file=sys.stderr,
        )
        return 0, [], [], []
    new, suppressed, stale = apply_baseline(findings, baseline)
    return None, new, suppressed, stale


def _report_baseline_noise(tool: str, suppressed, stale) -> None:
    if suppressed:
        print(
            f"simcheck {tool}: {len(suppressed)} baselined finding(s) "
            "suppressed",
            file=sys.stderr,
        )
    for fp in stale:
        print(
            f"simcheck {tool}: stale baseline entry (no longer fires): {fp}",
            file=sys.stderr,
        )


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.rule_id}  {rule.description}")
        return 0
    if not args.paths:
        print("simcheck lint: no paths given", file=sys.stderr)
        return 2
    enable = args.enable.split(",") if args.enable else None
    disable = args.disable.split(",") if args.disable else None
    try:
        findings = lint_paths(
            args.paths, enable=enable, disable=disable,
            config_path=args.config,
        )
    except (OSError, SyntaxError) as exc:
        print(f"simcheck lint: {exc}", file=sys.stderr)
        return 2
    handled, new, suppressed, stale = _gate_with_baseline(
        "lint", args, findings
    )
    if handled is not None:
        return handled
    _emit_findings("lint", new, args.format)
    _report_baseline_noise("lint", suppressed, stale)
    if new:
        print(f"simcheck: {len(new)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from .flow import analyze_package

    root = Path(args.path)
    if not root.is_dir():
        print(f"simcheck flow: not a directory: {root}", file=sys.stderr)
        return 2

    findings, notes = analyze_package(
        root,
        hazards=not args.no_hazards,
        units=not args.no_units,
    )
    if args.verbose:
        for note in notes:
            print(note, file=sys.stderr)

    handled, new, suppressed, stale = _gate_with_baseline(
        "flow", args, findings
    )
    if handled is not None:
        return handled
    _emit_findings("flow", new, args.format)
    _report_baseline_noise("flow", suppressed, stale)
    if new:
        print(
            f"simcheck flow: {len(new)} new finding(s) — fix them or "
            "baseline with a justification",
            file=sys.stderr,
        )
        return 1
    return 0


def _prune_baseline(
    tool: str, baseline_path: Path, findings: Sequence[Finding]
) -> int:
    """Drop baseline entries whose fingerprint no longer fires.

    Rewrites the file in place preserving rule/example/justification on
    the surviving entries, and reports exactly what was pruned so the
    cleanup is auditable from the CI log.
    """
    if not baseline_path.exists():
        print(
            f"simcheck {tool}: no baseline at {baseline_path}; nothing to prune",
            file=sys.stderr,
        )
        return 2
    try:
        data = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"simcheck {tool}: {exc}", file=sys.stderr)
        return 2
    entries = data.get("findings", []) if isinstance(data, dict) else None
    if entries is None:
        print(
            f"simcheck {tool}: {baseline_path}: unsupported baseline format",
            file=sys.stderr,
        )
        return 2
    fired = {f.identity() for f in findings}
    kept = [e for e in entries if e.get("fingerprint") in fired]
    pruned = [e for e in entries if e.get("fingerprint") not in fired]
    for entry in pruned:
        print(
            f"simcheck {tool}: pruned stale baseline entry "
            f"{entry.get('fingerprint')} (was {entry.get('example', '?')})"
        )
    if pruned:
        data["findings"] = kept
        baseline_path.write_text(json.dumps(data, indent=2) + "\n")
    print(
        f"simcheck {tool}: pruned {len(pruned)} stale entr"
        f"{'y' if len(pruned) == 1 else 'ies'}, kept {len(kept)}",
        file=sys.stderr,
    )
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    from .kernel import analyze_kernel, render_json, render_table

    root = Path(args.path)
    if not root.is_dir():
        print(f"simcheck kernel: not a directory: {root}", file=sys.stderr)
        return 2

    analysis = analyze_kernel(root)
    if args.verbose:
        for note in analysis.notes:
            print(note, file=sys.stderr)
    if analysis.report is None:
        print(
            "simcheck kernel: no per-cycle driver loop found; "
            "nothing to analyze",
            file=sys.stderr,
        )
        return 2

    if args.report:
        Path(args.report).write_text(render_json(analysis.report))
        print(
            f"simcheck kernel: wrote report to {args.report}", file=sys.stderr
        )

    handled, new, suppressed, stale = _gate_with_baseline(
        "kernel", args, analysis.findings
    )
    if handled is not None:
        return handled
    if args.format == "table":
        print(render_table(analysis.report), end="")
        for finding in new:
            print(finding.render())
    else:
        _emit_findings("kernel", new, args.format)
    _report_baseline_noise("kernel", suppressed, stale)

    status = 0
    unknown = analysis.unknown_fields
    if unknown:
        for f in unknown:
            print(
                f"simcheck kernel: UNCLASSIFIED field {f.key} "
                f"(written at {f.where}) — extend the coupling analysis",
                file=sys.stderr,
            )
        print(
            f"simcheck kernel: {len(unknown)} field(s) could not be "
            "classified; the coupling report is incomplete",
            file=sys.stderr,
        )
        status = 1
    if new:
        print(
            f"simcheck kernel: {len(new)} new PERF finding(s) — fix them "
            "or baseline with a justification",
            file=sys.stderr,
        )
        status = 1
    return status


def _cmd_purity(args: argparse.Namespace) -> int:
    from .purity import analyze_purity
    from .purity import render_table as render_purity_table

    root = Path(args.path)
    if not root.is_dir():
        print(f"simcheck purity: not a directory: {root}", file=sys.stderr)
        return 2

    analysis = analyze_purity(root)
    if args.verbose:
        for note in analysis.notes:
            print(note, file=sys.stderr)
    if analysis.model is None:
        print(
            "simcheck purity: no cache-key builder found; nothing to analyze",
            file=sys.stderr,
        )
        return 2

    if args.report:
        Path(args.report).write_text(
            json.dumps(analysis.report, indent=2) + "\n"
        )
        print(
            f"simcheck purity: wrote report to {args.report}", file=sys.stderr
        )

    handled, new, suppressed, stale = _gate_with_baseline(
        "purity", args, analysis.findings
    )
    if handled is not None:
        return handled
    if args.format == "table":
        print(render_purity_table(analysis.report, new), end="")
    else:
        _emit_findings("purity", new, args.format)
    _report_baseline_noise("purity", suppressed, stale)
    if new:
        print(
            f"simcheck purity: {len(new)} new finding(s) — fix them or "
            "baseline with a justification",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from .schedule import analyze_schedule, render_json, render_table

    root = Path(args.path)
    if not root.is_dir():
        print(f"simcheck schedule: not a directory: {root}", file=sys.stderr)
        return 2

    analysis = analyze_schedule(root)
    if args.verbose:
        for note in analysis.notes:
            print(note, file=sys.stderr)
    if analysis.report is None:
        print(
            "simcheck schedule: no per-cycle driver loop found; "
            "nothing to analyze",
            file=sys.stderr,
        )
        return 2

    if args.report and not args.no_report:
        report_path = Path(args.report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(render_json(analysis.report))
        print(
            f"simcheck schedule: wrote report to {report_path}",
            file=sys.stderr,
        )

    handled, new, suppressed, stale = _gate_with_baseline(
        "schedule", args, analysis.findings
    )
    if handled is not None:
        return handled
    if args.format == "table":
        print(render_table(analysis.report), end="")
        for finding in new:
            print(finding.render())
    else:
        _emit_findings("schedule", new, args.format)
    _report_baseline_noise("schedule", suppressed, stale)

    status = 0
    unknown = analysis.unknown_types
    if unknown:
        for ft in unknown:
            print(
                f"simcheck schedule: UNKNOWN dtype for field {ft.key} "
                f"({'; '.join(ft.evidence) or 'no evidence'}) — extend the "
                "dtype inference",
                file=sys.stderr,
            )
        print(
            f"simcheck schedule: {len(unknown)} field(s) have no inferred "
            "dtype; the kernel contract is incomplete",
            file=sys.stderr,
        )
        status = 1
    if new:
        print(
            f"simcheck schedule: {len(new)} new SCHED finding(s) — fix them "
            "or baseline with a justification",
            file=sys.stderr,
        )
        status = 1
    if args.validate:
        violations = _validate_schedule(analysis.report, args)
        if violations is None:
            status = max(status, 2)
        elif violations:
            for msg in violations:
                print(f"simcheck schedule: VALIDATE {msg}", file=sys.stderr)
            print(
                f"simcheck schedule: reference run violated the static "
                f"schedule ({len(violations)} violation(s))",
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                "simcheck schedule: reference run refines the static "
                "schedule (validator clean)",
                file=sys.stderr,
            )
    return status


def _validate_schedule(report, args: argparse.Namespace):
    """Replay a short reference run against the static schedule.

    Returns the violation list, or None when the run itself failed.
    """
    # Imported lazily: static analysis must not drag the simulator in.
    from ..config import CMPConfig
    from ..sim.cmp import CMPSimulator
    from .schedule import ScheduleValidator

    cfg = CMPConfig(num_cores=args.validate_cores)
    program = _make_smoke_program(args.validate_cores, args.validate_work)
    sim = CMPSimulator(cfg, program, technique="ptb", ptb_policy="dynamic")
    validator = ScheduleValidator(report).attach(sim)
    if not validator.wrapped:
        print(
            "simcheck schedule: validator wrapped no stage entries; "
            "the report does not match the simulator",
            file=sys.stderr,
        )
        return None
    try:
        result = sim.run(args.validate_cycles)
    except Exception as exc:  # pragma: no cover - defensive
        print(f"simcheck schedule: reference run failed: {exc}", file=sys.stderr)
        return None
    print(
        f"simcheck schedule: reference run {result.cycles} cycles, "
        f"{validator.wrapped} entries wrapped, "
        f"{len(validator.calls)} calls recorded",
        file=sys.stderr,
    )
    return validator.violations()


#: Pass order and default baseline for ``simcheck all``.
_ALL_BASELINES = (
    ("lint", ".simcheck-lint-baseline.json"),
    ("flow", ".simcheck-baseline.json"),
    ("kernel", ".simcheck-kernel-baseline.json"),
    ("purity", ".simcheck-purity-baseline.json"),
    ("schedule", ".simcheck-schedule-baseline.json"),
)


def _cmd_all(args: argparse.Namespace) -> int:
    """Run every analysis pass once: one gate, one merged SARIF."""
    from .flow import analyze_package, apply_baseline, load_baseline
    from .kernel import analyze_kernel
    from .kernel import render_json as render_kernel_json
    from .purity import analyze_purity
    from .sarif import merge_sarif, sarif_document
    from .schedule import analyze_schedule
    from .schedule import render_json as render_schedule_json

    root = Path(args.path)
    if not root.is_dir():
        print(f"simcheck all: not a directory: {root}", file=sys.stderr)
        return 2
    reports_dir = Path(args.reports_dir)
    reports_dir.mkdir(parents=True, exist_ok=True)

    status = 0
    docs = []
    baseline_of = dict(_ALL_BASELINES)

    def gate(tool: str, findings: Sequence[Finding]) -> None:
        nonlocal status
        baseline = {}
        baseline_path = Path(baseline_of[tool])
        if baseline_path.is_file():
            try:
                baseline = load_baseline(baseline_path)
            except (ValueError, OSError, json.JSONDecodeError) as exc:
                print(f"simcheck {tool}: {exc}", file=sys.stderr)
                status = max(status, 2)
        new, suppressed, stale = apply_baseline(findings, baseline)
        _emit_findings(tool, new, "text")
        _report_baseline_noise(tool, suppressed, stale)
        docs.append(sarif_document(tool, new))
        if new:
            print(
                f"simcheck {tool}: {len(new)} new finding(s)",
                file=sys.stderr,
            )
            status = max(status, 1)

    gate("lint", lint_paths([str(root)]))

    flow_findings, flow_notes = analyze_package(root)
    if args.verbose:
        for note in flow_notes:
            print(note, file=sys.stderr)
    gate("flow", flow_findings)

    kernel_analysis = analyze_kernel(root)
    if kernel_analysis.report is None:
        print("simcheck kernel: no per-cycle driver loop found", file=sys.stderr)
        status = max(status, 2)
    else:
        (reports_dir / "kernel-report.json").write_text(
            render_kernel_json(kernel_analysis.report)
        )
        gate("kernel", kernel_analysis.findings)
        if kernel_analysis.unknown_fields:
            print(
                f"simcheck kernel: {len(kernel_analysis.unknown_fields)} "
                "unclassified field(s)",
                file=sys.stderr,
            )
            status = max(status, 1)

    purity_analysis = analyze_purity(root)
    if purity_analysis.model is None:
        print("simcheck purity: no cache-key builder found", file=sys.stderr)
        status = max(status, 2)
    else:
        (reports_dir / "purity-report.json").write_text(
            json.dumps(purity_analysis.report, indent=2) + "\n"
        )
        gate("purity", purity_analysis.findings)

    schedule_analysis = analyze_schedule(root)
    if schedule_analysis.report is None:
        print("simcheck schedule: no per-cycle driver loop found", file=sys.stderr)
        status = max(status, 2)
    else:
        (reports_dir / "schedule-report.json").write_text(
            render_schedule_json(schedule_analysis.report)
        )
        gate("schedule", schedule_analysis.findings)
        if schedule_analysis.unknown_types:
            print(
                f"simcheck schedule: {len(schedule_analysis.unknown_types)} "
                "field(s) with unknown dtype",
                file=sys.stderr,
            )
            status = max(status, 1)

    sarif_path = reports_dir / "simcheck.sarif"
    sarif_path.write_text(
        json.dumps(merge_sarif(docs), indent=2, sort_keys=True) + "\n"
    )
    print(
        f"simcheck all: {len(docs)} passes gated, merged SARIF at "
        f"{sarif_path}, reports in {reports_dir}/ — "
        f"{'CLEAN' if status == 0 else 'FAILED'}",
        file=sys.stderr,
    )
    return status


def _make_smoke_program(num_threads: int, work: int):
    """Tiny lock+barrier reference program shared by smoke and validate."""
    # Imported lazily: lint must not drag the simulator (and numpy) in.
    from ..trace.phases import (
        BarrierPhase,
        ComputePhase,
        LockPhase,
        ParallelProgram,
        ThreadProgram,
    )

    threads = []
    for t in range(num_threads):
        phases = []
        for b in range(2):
            phases.append(
                ComputePhase(instructions=work, footprint_lines=512)
            )
            phases.append(
                LockPhase(
                    lock_id=0,
                    critical_section=ComputePhase(
                        instructions=40, footprint_lines=512
                    ),
                )
            )
            phases.append(BarrierPhase(b))
        threads.append(ThreadProgram(thread_id=t, phases=tuple(phases)))
    return ParallelProgram(name="simcheck-smoke", threads=tuple(threads))


def _cmd_smoke(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from ..config import CMPConfig
    from ..sim.cmp import run_simulation
    from .sanitizers import SanitizerViolation

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    bad = [p for p in policies if p not in ("toall", "toone", "dynamic")]
    if bad or not policies:
        print(
            f"simcheck smoke: unknown policy {', '.join(bad) or '(none)'} — "
            "choose from toall, toone, dynamic",
            file=sys.stderr,
        )
        return 2

    cfg = replace(CMPConfig(num_cores=args.cores), sanitize=True)
    program = _make_smoke_program(args.cores, args.work)
    failures = 0
    for policy in policies:
        try:
            result = run_simulation(
                cfg, program, technique="ptb", ptb_policy=policy,
                max_cycles=args.max_cycles,
            )
        except SanitizerViolation as exc:
            print(f"smoke[{policy}]: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(
            f"smoke[{policy}]: ok — {result.cycles} cycles, "
            f"{result.committed_instructions} instructions, sanitizers clean"
        )
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simcheck",
        description="Simulator-correctness checks: AST lint + sanitized smoke run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the SIM lint rules over paths")
    lint.add_argument("paths", nargs="*", help="files or directories to lint")
    lint.add_argument("--enable", help="comma-separated rule ids to run exclusively")
    lint.add_argument("--disable", help="comma-separated rule ids to skip")
    lint.add_argument(
        "--config", help="path to config.py for SIM006 (default: autodetect)"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    _add_baseline_args(lint, ".simcheck-lint-baseline.json")
    lint.set_defaults(func=_cmd_lint)

    flow = sub.add_parser(
        "flow",
        help="whole-program tick-order hazard + unit/dimension analysis",
    )
    flow.add_argument("path", help="package root to analyze (e.g. src/repro)")
    _add_baseline_args(flow, ".simcheck-baseline.json")
    flow.add_argument(
        "--no-hazards", action="store_true", help="skip the FLOW pass"
    )
    flow.add_argument(
        "--no-units", action="store_true", help="skip the UNIT pass"
    )
    flow.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    flow.add_argument(
        "--verbose", action="store_true",
        help="print analysis notes (module count, driver, parse errors)",
    )
    flow.set_defaults(func=_cmd_flow)

    kernel = sub.add_parser(
        "kernel",
        help="hot-loop PERF lint + per-core/cross-core coupling report",
    )
    kernel.add_argument(
        "path", help="package root to analyze (e.g. src/repro)"
    )
    _add_baseline_args(kernel, ".simcheck-kernel-baseline.json")
    kernel.add_argument(
        "--report", metavar="FILE",
        help="write the machine-readable kernel report (kernel-report.json)",
    )
    kernel.add_argument(
        "--format", choices=("text", "json", "sarif", "table"),
        default="text",
        help="finding output format; 'table' renders the coupling report",
    )
    kernel.add_argument(
        "--verbose", action="store_true",
        help="print analysis notes (driver, hot-function count)",
    )
    kernel.set_defaults(func=_cmd_kernel)

    purity = sub.add_parser(
        "purity",
        help="cache-key soundness (KEY rules) + worker purity (PURE rules)",
    )
    purity.add_argument(
        "path", help="package root to analyze (e.g. src/repro)"
    )
    _add_baseline_args(purity, ".simcheck-purity-baseline.json")
    purity.add_argument(
        "--report", metavar="FILE",
        help="write the machine-readable purity report (purity-report.json)",
    )
    purity.add_argument(
        "--format", choices=("text", "json", "sarif", "table"),
        default="text",
        help="finding output format; 'table' renders the coverage report",
    )
    purity.add_argument(
        "--verbose", action="store_true",
        help="print analysis notes (cache module, reachable-function count)",
    )
    purity.set_defaults(func=_cmd_purity)

    schedule = sub.add_parser(
        "schedule",
        help="stage-schedule extraction + dtype inference (SoA kernel contract)",
    )
    schedule.add_argument(
        "path", help="package root to analyze (e.g. src/repro)"
    )
    _add_baseline_args(schedule, ".simcheck-schedule-baseline.json")
    schedule.add_argument(
        "--report", metavar="FILE", default="reports/schedule-report.json",
        help="write the machine-readable schedule report "
        "(default: reports/schedule-report.json)",
    )
    schedule.add_argument(
        "--no-report", action="store_true",
        help="skip writing the schedule report file",
    )
    schedule.add_argument(
        "--format", choices=("text", "json", "sarif", "table"),
        default="text",
        help="finding output format; 'table' renders the stage schedule",
    )
    schedule.add_argument(
        "--validate", action="store_true",
        help="replay a short reference run against the static schedule",
    )
    schedule.add_argument("--validate-cores", type=int, default=2)
    schedule.add_argument("--validate-work", type=int, default=400)
    schedule.add_argument("--validate-cycles", type=int, default=30_000)
    schedule.add_argument(
        "--verbose", action="store_true",
        help="print analysis notes (driver, phase/edge/stage counts)",
    )
    schedule.set_defaults(func=_cmd_schedule)

    allcmd = sub.add_parser(
        "all",
        help="run lint+flow+kernel+purity+schedule with default baselines",
    )
    allcmd.add_argument(
        "path", help="package root to analyze (e.g. src/repro)"
    )
    allcmd.add_argument(
        "--reports-dir", default="reports",
        help="directory for kernel/schedule reports and merged SARIF "
        "(default: reports)",
    )
    allcmd.add_argument(
        "--verbose", action="store_true",
        help="print per-pass analysis notes",
    )
    allcmd.set_defaults(func=_cmd_all)

    smoke = sub.add_parser(
        "smoke", help="short 2-core sim under every policy with sanitizers on"
    )
    smoke.add_argument("--cores", type=int, default=2)
    smoke.add_argument("--work", type=int, default=800)
    smoke.add_argument("--max-cycles", type=int, default=60_000)
    smoke.add_argument("--policies", default="toall,toone,dynamic")
    smoke.set_defaults(func=_cmd_smoke)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
