"""``python -m repro.simcheck`` — the simcheck command-line front end.

Subcommands:

* ``lint PATH...``  — run the SIM rules; print ``file:line:col: RULE msg``
  per finding and exit non-zero when anything is found (CI gate).
* ``smoke``         — run a short 2-core simulation under every PTB
  policy with all runtime sanitizers enabled; exit non-zero on any
  :class:`SanitizerViolation` (CI gate for hook regressions).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional  # noqa: F401 (List used in signatures)

from .lint import iter_rules, lint_paths


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.rule_id}  {rule.description}")
        return 0
    if not args.paths:
        print("simcheck lint: no paths given", file=sys.stderr)
        return 2
    enable = args.enable.split(",") if args.enable else None
    disable = args.disable.split(",") if args.disable else None
    try:
        findings = lint_paths(
            args.paths, enable=enable, disable=disable,
            config_path=args.config,
        )
    except (OSError, SyntaxError) as exc:
        print(f"simcheck lint: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"simcheck: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    # Imported lazily: lint must not drag the simulator (and numpy) in.
    from dataclasses import replace

    from ..config import CMPConfig
    from ..sim.cmp import run_simulation
    from ..trace.phases import (
        BarrierPhase,
        ComputePhase,
        LockPhase,
        ParallelProgram,
        ThreadProgram,
    )
    from .sanitizers import SanitizerViolation

    def make_program(num_threads: int, work: int) -> ParallelProgram:
        threads = []
        for t in range(num_threads):
            phases = []
            for b in range(2):
                phases.append(
                    ComputePhase(instructions=work, footprint_lines=512)
                )
                phases.append(
                    LockPhase(
                        lock_id=0,
                        critical_section=ComputePhase(
                            instructions=40, footprint_lines=512
                        ),
                    )
                )
                phases.append(BarrierPhase(b))
            threads.append(ThreadProgram(thread_id=t, phases=tuple(phases)))
        return ParallelProgram(name="simcheck-smoke", threads=tuple(threads))

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    bad = [p for p in policies if p not in ("toall", "toone", "dynamic")]
    if bad or not policies:
        print(
            f"simcheck smoke: unknown policy {', '.join(bad) or '(none)'} — "
            "choose from toall, toone, dynamic",
            file=sys.stderr,
        )
        return 2

    cfg = replace(CMPConfig(num_cores=args.cores), sanitize=True)
    program = make_program(args.cores, args.work)
    failures = 0
    for policy in policies:
        try:
            result = run_simulation(
                cfg, program, technique="ptb", ptb_policy=policy,
                max_cycles=args.max_cycles,
            )
        except SanitizerViolation as exc:
            print(f"smoke[{policy}]: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(
            f"smoke[{policy}]: ok — {result.cycles} cycles, "
            f"{result.committed_instructions} instructions, sanitizers clean"
        )
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simcheck",
        description="Simulator-correctness checks: AST lint + sanitized smoke run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the SIM lint rules over paths")
    lint.add_argument("paths", nargs="*", help="files or directories to lint")
    lint.add_argument("--enable", help="comma-separated rule ids to run exclusively")
    lint.add_argument("--disable", help="comma-separated rule ids to skip")
    lint.add_argument(
        "--config", help="path to config.py for SIM006 (default: autodetect)"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    lint.set_defaults(func=_cmd_lint)

    smoke = sub.add_parser(
        "smoke", help="short 2-core sim under every policy with sanitizers on"
    )
    smoke.add_argument("--cores", type=int, default=2)
    smoke.add_argument("--work", type=int, default=800)
    smoke.add_argument("--max-cycles", type=int, default=60_000)
    smoke.add_argument("--policies", default="toall,toone,dynamic")
    smoke.set_defaults(func=_cmd_smoke)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
