"""Whole-program flow analyses for the cycle-stepped simulator.

Two passes over one :class:`~repro.simcheck.flow.model.PackageIndex`:

* :mod:`~repro.simcheck.flow.hazards` — same-cycle tick-ordering
  hazards (FLOW001/FLOW002) from interprocedural may-read/may-write
  effect summaries rooted at the driver's cycle loop.
* :mod:`~repro.simcheck.flow.unitcheck` — unit/dimension propagation
  over the :mod:`repro.units` vocabulary (UNIT001-UNIT005).

Entry point: :func:`analyze_package`; CLI: ``python -m repro.simcheck
flow``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple

from ..lint import Finding
from .baseline import apply_baseline, load_baseline, write_baseline
from .hazards import check_hazards
from .model import PackageIndex
from .unitcheck import check_units

__all__ = [
    "analyze_package",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "PackageIndex",
    "Finding",
]


def analyze_package(
    root: Path, *, hazards: bool = True, units: bool = True
) -> Tuple[List[Finding], List[str]]:
    """Run the flow passes on one package root: (findings, notes)."""
    index = PackageIndex.build(root)
    findings: List[Finding] = []
    notes: List[str] = [
        f"flow: indexed {len(index.modules)} modules under {root}"
    ]
    for rel, err in index.parse_errors:
        notes.append(f"flow: parse error in {rel}: {err}")
    if hazards:
        hazard_findings, hazard_notes = check_hazards(index)
        findings.extend(hazard_findings)
        notes.extend(hazard_notes)
    if units:
        findings.extend(check_units(index))
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return findings, notes
