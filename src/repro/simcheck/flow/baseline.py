"""Baseline file support: CI fails only on *regressions*.

``.simcheck-baseline.json`` records accepted findings by fingerprint —
a line-number-independent identity (rule + state location + component
labels for hazards; rule + file + function + message for unit
findings) — together with a human justification for why each one is
acceptable.  The flow gate then:

* suppresses findings whose fingerprint is baselined,
* fails on any finding that is not,
* warns (but passes) on stale entries that no longer fire, so the
  baseline shrinks as hazards are fixed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from ..lint import Finding

BASELINE_VERSION = 1
DEFAULT_JUSTIFICATION = "TODO: justify or fix"


def load_baseline(path: Path) -> Dict[str, str]:
    """fingerprint -> justification.  Missing file = empty baseline."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline format "
            f"(expected version {BASELINE_VERSION})"
        )
    out: Dict[str, str] = {}
    for entry in data.get("findings", []):
        out[entry["fingerprint"]] = entry.get(
            "justification", DEFAULT_JUSTIFICATION
        )
    return out


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, str]
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split into (new, suppressed) and list stale baseline entries."""
    new: List[Finding] = []
    suppressed: List[Finding] = []
    fired = set()
    for finding in findings:
        fp = finding.identity()
        fired.add(fp)
        (suppressed if fp in baseline else new).append(finding)
    stale = sorted(fp for fp in baseline if fp not in fired)
    return new, suppressed, stale


def write_baseline(
    path: Path, findings: Sequence[Finding], old: Dict[str, str]
) -> int:
    """Write all current findings, keeping existing justifications."""
    entries = []
    seen = set()
    for finding in sorted(
        findings, key=lambda f: (f.rule_id, f.identity())
    ):
        fp = finding.identity()
        if fp in seen:
            continue
        seen.add(fp)
        entries.append(
            {
                "fingerprint": fp,
                "rule": finding.rule_id,
                "example": f"{finding.path}:{finding.line}",
                "justification": old.get(fp, DEFAULT_JUSTIFICATION),
            }
        )
    path.write_text(
        json.dumps(
            {"version": BASELINE_VERSION, "findings": entries}, indent=2
        )
        + "\n"
    )
    return len(entries)
