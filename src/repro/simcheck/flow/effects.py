"""Instance graph + may-read/may-write effect summaries.

The hazard analysis needs to know, for every component method invoked
from the per-cycle loop, which pieces of *shared simulator state* it
may read and may write.  Two layers provide that:

* :func:`build_instance_graph` abstractly interprets the constructor
  chain rooted at the simulator class: every ``self.x = ClassName(...)``
  creates an instance node, every ``self.x = param`` aliases the node
  the caller passed in — so the graph knows that ``Core.hierarchy`` *is*
  the simulator's shared ``MemoryHierarchy`` while ``Core.events`` is
  per-core.  Per-core containers (``self.cores = [Core(...) ...]``)
  become a single *replicated* node (``sim.cores[*]``).

* :class:`EffectAnalyzer` walks method bodies interprocedurally
  (bounded depth, memoized) and records accesses as
  :class:`EffectAccess` locations — ``(instance node, attribute)``
  pairs like ``sim.controller.execute``.  Local variables are tracked
  as aliases of instances/locations; calls on component instances
  recurse into the callee with arguments bound, so a list the driver
  hands to ``end_cycle`` keeps its identity.

Everything is a *may* analysis: unresolvable receivers and deeper
attribute paths degrade to "unknown" (dropped) or collapse onto the
first attribute, never crash.  Soundness limits are documented in
DESIGN.md §7.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .model import ClassInfo, ModuleInfo, PackageIndex, annotation_heads, has_decorator

#: Container-method names treated as mutations of the receiver location.
MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "popitem", "remove", "discard", "clear", "sort", "reverse",
    "update", "add", "setdefault", "fill", "rotate",
})

#: Interprocedural recursion bound (call-chain depth).
MAX_CALL_DEPTH = 14


# --------------------------------------------------------------------------- #
# Abstract values                                                             #
# --------------------------------------------------------------------------- #


class Instance:
    """One abstract component instance (node in the instance graph)."""

    __slots__ = ("key", "classes", "attrs", "replicated")

    def __init__(
        self, key: str, classes: List[ClassInfo], replicated: bool = False
    ) -> None:
        self.key = key
        self.classes = classes
        self.attrs: Dict[str, "Instance"] = {}
        self.replicated = replicated

    @property
    def display_class(self) -> str:
        """Most-base class name (stable label for factory-built unions)."""
        if len(self.classes) == 1:
            return self.classes[0].name
        # The common ancestor has the shortest base chain.
        return min(self.classes, key=lambda c: len(c.bases)).name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instance {self.key} [{', '.join(c.name for c in self.classes)}]>"


@dataclass(frozen=True)
class Loc:
    """A data attribute on an instance (shared-state location)."""

    instance: Instance
    attr: str

    @property
    def key(self) -> str:
        return f"{self.instance.key}.{self.attr}"


@dataclass(frozen=True)
class BoundMethod:
    instance: Instance
    name: str


@dataclass(frozen=True)
class SuperRef:
    instance: Instance
    concrete: ClassInfo
    defclass: ClassInfo


AbstractVal = Union[Instance, Loc, BoundMethod, SuperRef, None]


@dataclass(frozen=True)
class EffectAccess:
    """One recorded access: where in the state, where in the source."""

    loc_key: str
    instance: Instance = field(compare=False, hash=False)
    attr: str = field(compare=False, hash=False)
    file: str = field(compare=False, hash=False)
    line: int = field(compare=False, hash=False)
    col: int = field(compare=False, hash=False)


class EffectSet:
    """May-read / may-write summary (first access site kept per loc)."""

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: Dict[str, EffectAccess] = {}
        self.writes: Dict[str, EffectAccess] = {}

    def update(self, other: "EffectSet") -> None:
        for k, v in other.reads.items():
            self.reads.setdefault(k, v)
        for k, v in other.writes.items():
            self.writes.setdefault(k, v)


# --------------------------------------------------------------------------- #
# Instance graph construction                                                 #
# --------------------------------------------------------------------------- #


class _GraphBuilder:
    def __init__(self, index: PackageIndex) -> None:
        self.index = index

    def build(self, root_class: ClassInfo, root_key: str = "sim") -> Instance:
        root = Instance(root_key, [root_class])
        self._populate(root, [(root_class, {})], depth=0)
        return root

    def _populate(
        self,
        instance: Instance,
        specs: Sequence[Tuple[ClassInfo, Dict[str, Instance]]],
        depth: int,
    ) -> None:
        if depth > 8:
            return
        for concrete, bindings in specs:
            resolved = self.index.resolve_method(concrete, "__init__")
            if resolved is None:
                continue
            defclass, init = resolved
            env = self._bind_params(init, bindings)
            self._exec_init(instance, concrete, defclass, init, env, depth)

    def _bind_params(
        self, fn: ast.FunctionDef, bindings: Dict[str, Instance]
    ) -> Dict[str, Instance]:
        env: Dict[str, Instance] = {}
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            if arg.arg in bindings:
                env[arg.arg] = bindings[arg.arg]
        return env

    def _exec_init(
        self,
        instance: Instance,
        concrete: ClassInfo,
        defclass: ClassInfo,
        init: ast.FunctionDef,
        env: Dict[str, Instance],
        depth: int,
    ) -> None:
        for stmt in init.body:
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "__init__"
                    and isinstance(call.func.value, ast.Call)
                    and isinstance(call.func.value.func, ast.Name)
                    and call.func.value.func.id == "super"
                ):
                    self._exec_super_init(
                        instance, concrete, defclass, call, env, depth
                    )
                continue
            if isinstance(stmt, ast.Assign):
                targets, value, annotation = stmt.targets, stmt.value, None
            elif isinstance(stmt, ast.AnnAssign):
                targets, value, annotation = [stmt.target], stmt.value, stmt.annotation
            elif isinstance(stmt, ast.If):
                # Conditional construction: take both branches (may-graph).
                for body in (stmt.body, stmt.orelse):
                    sub = ast.FunctionDef(
                        name=init.name, args=init.args, body=body,
                        decorator_list=[], returns=None,
                    )
                    self._exec_init(instance, concrete, defclass, sub, env, depth)
                continue
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                self._assign_attr(
                    instance, target.attr, value, annotation, env, depth
                )

    def _exec_super_init(
        self,
        instance: Instance,
        concrete: ClassInfo,
        defclass: ClassInfo,
        call: ast.Call,
        env: Dict[str, Instance],
        depth: int,
    ) -> None:
        mro = self.index.mro(concrete)
        try:
            start = mro.index(defclass) + 1
        except ValueError:
            start = 1
        for cls in mro[start:]:
            init = cls.methods.get("__init__")
            if init is None:
                continue
            bindings = self._map_call_args(init, call, instance, env)
            self._exec_init(
                instance, concrete, cls, init,
                self._bind_params(init, bindings), depth,
            )
            return

    def _assign_attr(
        self,
        instance: Instance,
        attr: str,
        value: Optional[ast.expr],
        annotation: Optional[ast.expr],
        env: Dict[str, Instance],
        depth: int,
    ) -> None:
        child_key = f"{instance.key}.{attr}"
        if value is not None:
            resolved = self._eval(value, instance, env, child_key, depth)
            if isinstance(resolved, Instance):
                instance.attrs[attr] = resolved
                return
            if resolved is not None:  # (specs, replicated)
                specs, replicated = resolved
                key = child_key + ("[*]" if replicated else "")
                child = Instance(
                    key, [s[0] for s in specs], replicated=replicated
                )
                instance.attrs[attr] = child
                self._populate(child, specs, depth + 1)
                return
        if annotation is not None and attr not in instance.attrs:
            heads = [
                h for h in annotation_heads(annotation) if h in self.index.classes
            ]
            if heads:
                from .model import is_annotated_replicated

                replicated = is_annotated_replicated(annotation)
                key = child_key + ("[*]" if replicated else "")
                child = Instance(
                    key, [self.index.classes[heads[0]]], replicated=replicated
                )
                instance.attrs[attr] = child
                self._populate(child, [(self.index.classes[heads[0]], {})],
                               depth + 1)

    def _eval(
        self,
        value: ast.expr,
        instance: Instance,
        env: Dict[str, Instance],
        child_key: str,
        depth: int,
    ):
        """Abstract constructor-expression evaluation.

        Returns an :class:`Instance` (alias), a ``(specs, replicated)``
        pair describing a new child, or None.
        """
        if isinstance(value, ast.Name):
            return env.get(value.id)
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            return instance.attrs.get(value.attr)
        if isinstance(value, ast.IfExp):
            for branch in (value.body, value.orelse):
                out = self._eval(branch, instance, env, child_key, depth)
                if out is not None:
                    return out
            return None
        if isinstance(value, ast.ListComp) and isinstance(value.elt, ast.Call):
            # Nested constructor args must key under the replicated node
            # ("sim.cores[*].~generator"), not the bare container name.
            specs = self._call_specs(
                value.elt, instance, env, child_key + "[*]", depth
            )
            if specs:
                return specs, True
            return None
        if isinstance(value, ast.Call):
            specs = self._call_specs(value, instance, env, child_key, depth)
            if specs:
                return specs, False
        return None

    def _call_specs(
        self,
        call: ast.Call,
        instance: Instance,
        env: Dict[str, Instance],
        child_key: str,
        depth: int,
    ) -> List[Tuple[ClassInfo, Dict[str, Instance]]]:
        """Concrete (class, bindings) specs a constructor/factory yields."""
        if not isinstance(call.func, ast.Name):
            return []
        name = call.func.id
        cls = self.index.resolve_class(name)
        if cls is not None:
            init = self.index.resolve_method(cls, "__init__")
            bindings = (
                self._map_call_args(init[1], call, instance, env, child_key, depth)
                if init is not None
                else {}
            )
            return [(cls, bindings)]
        resolved = self.index.resolve_function(name)
        if resolved is None or depth > 6:
            return []
        mod, fn = resolved
        # Factory: follow each ``return ClassName(...)`` with the
        # factory's own parameters bound from this call site.
        outer = self._map_call_args(fn, call, instance, env, child_key, depth)
        specs: List[Tuple[ClassInfo, Dict[str, Instance]]] = []
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Return) and isinstance(node.value, ast.Call)):
                continue
            inner = node.value
            if not isinstance(inner.func, ast.Name):
                continue
            inner_cls = self.index.resolve_class(inner.func.id)
            if inner_cls is None:
                continue
            init = self.index.resolve_method(inner_cls, "__init__")
            bindings = (
                self._map_call_args(init[1], inner, None, outer, child_key, depth)
                if init is not None
                else {}
            )
            specs.append((inner_cls, bindings))
        return specs

    def _map_call_args(
        self,
        callee: ast.FunctionDef,
        call: ast.Call,
        instance: Optional[Instance],
        env: Dict[str, Instance],
        child_key: str = "",
        depth: int = 0,
    ) -> Dict[str, Instance]:
        params = [a.arg for a in callee.args.args]
        if params and params[0] == "self":
            params = params[1:]
        bindings: Dict[str, Instance] = {}

        def resolve(expr: ast.expr, slot: str) -> Optional[Instance]:
            if instance is not None or env:
                out = self._eval(
                    expr, instance or Instance("?", []), env,
                    f"{child_key}.{slot}" if child_key else slot, depth + 1,
                )
                if isinstance(out, Instance):
                    return out
                if out is not None:
                    specs, replicated = out
                    key = f"{child_key}.~{slot}" if child_key else f"~{slot}"
                    child = Instance(
                        key + ("[*]" if replicated else ""),
                        [s[0] for s in specs], replicated=replicated,
                    )
                    self._populate(child, specs, depth + 1)
                    return child
            return None

        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or i >= len(params):
                break
            bound = resolve(arg, params[i])
            if bound is not None:
                bindings[params[i]] = bound
        for kw in call.keywords:
            if kw.arg is None:
                continue
            bound = resolve(kw.value, kw.arg)
            if bound is not None:
                bindings[kw.arg] = bound
        return bindings


def build_instance_graph(
    index: PackageIndex, root_class: ClassInfo, root_key: str = "sim"
) -> Instance:
    return _GraphBuilder(index).build(root_class, root_key)


# --------------------------------------------------------------------------- #
# Effect sinks                                                                #
# --------------------------------------------------------------------------- #


class EffectSink:
    """Receives accesses; ``call`` may intercept component calls.

    The default implementation merges callee summaries (computed by the
    analyzer) into an :class:`EffectSet`.  The tick extractor supplies
    its own sink that turns everything into an ordered event stream.
    """

    def __init__(self, analyzer: "EffectAnalyzer", effects: EffectSet) -> None:
        self.analyzer = analyzer
        self.effects = effects
        self.muted = 0

    def read(self, access: EffectAccess) -> None:
        if not self.muted:
            self.effects.reads.setdefault(access.loc_key, access)

    def write(self, access: EffectAccess) -> None:
        if not self.muted:
            self.effects.writes.setdefault(access.loc_key, access)

    def call(
        self,
        instance: Instance,
        method: str,
        bindings: Dict[str, AbstractVal],
        node: ast.AST,
        concrete: Optional[ClassInfo] = None,
    ) -> None:
        summary = self.analyzer.call_effects(instance, method, bindings, concrete)
        if not self.muted:
            self.effects.update(summary)

    def function(
        self,
        summary: EffectSet,
        node: ast.AST,
        module: Optional[ModuleInfo] = None,
        fn: Optional[ast.FunctionDef] = None,
        bindings: Optional[Dict[str, AbstractVal]] = None,
    ) -> None:
        """Module-function effects merge like method effects.

        ``module``/``fn``/``bindings`` identify the callee so sinks that
        track *reachability* (the kernel pass) can follow the call; the
        default effect-merging sink ignores them.
        """
        if not self.muted:
            self.effects.update(summary)


# --------------------------------------------------------------------------- #
# The method-body walker                                                      #
# --------------------------------------------------------------------------- #


class BodyWalker:
    """Abstractly executes one function body, reporting to a sink."""

    def __init__(
        self,
        analyzer: "EffectAnalyzer",
        module: ModuleInfo,
        instance: Optional[Instance],
        concrete: Optional[ClassInfo],
        defclass: Optional[ClassInfo],
        env: Dict[str, AbstractVal],
        sink: EffectSink,
    ) -> None:
        self.analyzer = analyzer
        self.index = analyzer.index
        self.module = module
        self.instance = instance
        self.concrete = concrete
        self.defclass = defclass
        self.env = env
        self.sink = sink

    # -- recording ----------------------------------------------------------

    def _access(self, loc: Loc, node: ast.AST) -> EffectAccess:
        return EffectAccess(
            loc_key=loc.key,
            instance=loc.instance,
            attr=loc.attr,
            file=self.module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )

    def _read(self, loc: Loc, node: ast.AST) -> None:
        self.sink.read(self._access(loc, node))

    def _write(self, loc: Loc, node: ast.AST) -> None:
        self.sink.write(self._access(loc, node))

    # -- statements ---------------------------------------------------------

    def exec_body(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_loop_body(self, stmts: List[ast.stmt]) -> None:
        """Loop bodies run twice: a muted env-priming pass, then live."""
        self.sink.muted += 1
        for stmt in stmts:
            self.exec_stmt(stmt)
        self.sink.muted -= 1
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            val = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign_target(target, val)
        elif isinstance(stmt, ast.AnnAssign):
            val = self.eval(stmt.value) if stmt.value is not None else None
            self.assign_target(stmt.target, val)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
            self.augmented_target(stmt.target)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.eval(stmt.iter)
            self.bind_loop_target(stmt.target, stmt.iter)
            self.exec_loop_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_loop_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.augmented_target(target)
        # pass/break/continue/import/def: no effects tracked

    def bind_loop_target(self, target: ast.expr, iter_expr: ast.expr) -> None:
        val = self._peek(iter_expr)
        if isinstance(val, Instance):
            self.on_replicated_element(val)
            if isinstance(target, ast.Name):
                self.env[target.id] = val
            return
        # enumerate(xs) / zip(...) over an instance container.
        if isinstance(iter_expr, ast.Call) and isinstance(iter_expr.func, ast.Name):
            if iter_expr.func.id == "enumerate" and iter_expr.args:
                inner = self._peek(iter_expr.args[0])
                if isinstance(inner, Instance) and isinstance(target, ast.Tuple):
                    self.on_replicated_element(inner)
                    elts = target.elts
                    if len(elts) == 2 and isinstance(elts[1], ast.Name):
                        self.env[elts[1].id] = inner
                        return
        self._clear_target(target)

    def _clear_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._clear_target(elt)

    def _peek(self, expr: ast.expr) -> AbstractVal:
        """Like eval but without recording (used to re-inspect targets)."""
        self.sink.muted += 1
        try:
            return self.eval(expr)
        finally:
            self.sink.muted -= 1

    def assign_target(self, target: ast.expr, val: AbstractVal) -> None:
        if isinstance(target, ast.Name):
            if val is None:
                self.env.pop(target.id, None)
            else:
                self.env[target.id] = val
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value)
            if isinstance(base, Instance):
                self._write(Loc(base, target.attr), target)
            elif isinstance(base, Loc):
                self._write(base, target)
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            self.eval(target.slice)
            if isinstance(base, Loc):
                self._write(base, target)
            elif isinstance(base, Instance):
                # Writing an element of a component container: treat the
                # container attribute itself as mutated state.
                pass
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign_target(elt, None)
        elif isinstance(target, ast.Starred):
            self.assign_target(target.value, None)

    def augmented_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute):
            base = self.eval(target.value)
            if isinstance(base, Instance):
                loc = Loc(base, target.attr)
                self._read(loc, target)
                self._write(loc, target)
            elif isinstance(base, Loc):
                self._read(base, target)
                self._write(base, target)
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            self.eval(target.slice)
            if isinstance(base, Loc):
                self._read(base, target)
                self._write(base, target)

    # -- expressions --------------------------------------------------------

    def eval(self, expr: Optional[ast.expr]) -> AbstractVal:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.instance is not None:
                return self.instance
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._attr_load(expr)
        if isinstance(expr, ast.Subscript):
            base = self.eval(expr.value)
            self.eval(expr.slice)
            if isinstance(base, Instance):
                self.on_replicated_element(base)
                return base
            if isinstance(base, Loc):
                self._read(base, expr)
                return base
            return None
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test)
            a = self.eval(expr.body)
            b = self.eval(expr.orelse)
            if isinstance(a, Instance) and a is b:
                return a
            return a if isinstance(a, (Instance, Loc)) else b
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for gen in expr.generators:
                self.eval(gen.iter)
                self.bind_loop_target(gen.target, gen.iter)
                for cond in gen.ifs:
                    self.eval(cond)
            if isinstance(expr, ast.DictComp):
                self.eval(expr.key)
                self.eval(expr.value)
            else:
                self.eval(expr.elt)
            return None
        if isinstance(expr, ast.NamedExpr):
            val = self.eval(expr.value)
            self.assign_target(expr.target, val)
            return val
        if isinstance(expr, ast.Lambda):
            return None
        # Generic: evaluate children for their reads.
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.eval(child)
        return None

    def _attr_load(self, expr: ast.Attribute) -> AbstractVal:
        base = self.eval(expr.value)
        attr = expr.attr
        if isinstance(base, Instance):
            sub = base.attrs.get(attr)
            if sub is not None:
                return sub
            resolved = self._resolve_any_method(base, attr)
            if resolved is not None:
                defclass, fn = resolved
                if has_decorator(fn, "property", "cached_property"):
                    self.sink.call(base, attr, {}, expr)
                    return self._return_value(base, attr)
                return BoundMethod(base, attr)
            member = self._typed_member(base, attr)
            if member is not None:
                return member
            loc = Loc(base, attr)
            self._read(loc, expr)
            return loc
        if isinstance(base, Loc):
            # Deeper paths collapse onto the top attribute (depth cap).
            self._read(base, expr)
            return base
        return None

    def _resolve_any_method(
        self, instance: Instance, name: str
    ) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        for cls in instance.classes:
            resolved = self.index.resolve_method(cls, name)
            if resolved is not None:
                return resolved
        return None

    def _typed_member(self, base: Instance, attr: str) -> Optional[Instance]:
        """Component attr known only by annotation (graph gap fallback)."""
        for cls in base.classes:
            target = self.index.attr_class(cls, attr)
            if target is not None:
                return self.analyzer.member_instance(base, target, attr)
        return None

    def _return_value(self, instance: Instance, method: str) -> AbstractVal:
        resolved = self._resolve_any_method(instance, method)
        if resolved is None:
            return None
        heads = [
            h for h in annotation_heads(resolved[1].returns)
            if h in self.index.classes
        ]
        if not heads:
            return None
        return self.analyzer.member_instance(
            instance, self.index.classes[heads[0]], f"<{heads[0]}>"
        )

    def on_replicated_element(self, instance: Instance) -> None:
        """Hook for the tick extractor (group-iteration tracking)."""

    # -- calls --------------------------------------------------------------

    def _call(self, call: ast.Call) -> AbstractVal:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "super":
                if self.instance is not None and self.concrete is not None:
                    return SuperRef(
                        self.instance, self.concrete,
                        self.defclass or self.concrete,
                    )
                return None
            bound = self.env.get(func.id)
            if isinstance(bound, BoundMethod):
                return self._dispatch(bound.instance, bound.name, call)
            resolved = self.index.resolve_function(func.id, self.module)
            if resolved is not None and func.id not in self.index.classes:
                mod, fn = resolved
                bindings = self._bind_call_args(fn, call, skip_self=False)
                summary = self.analyzer.function_effects(mod, fn, bindings)
                self.sink.function(summary, call, module=mod, fn=fn,
                                   bindings=bindings)
            else:
                self._eval_args(call)
            return None
        if isinstance(func, ast.Attribute):
            recv = self.eval(func.value)
            name = func.attr
            if isinstance(recv, Instance):
                return self._dispatch(recv, name, call)
            if isinstance(recv, SuperRef):
                return self._dispatch_super(recv, name, call)
            if isinstance(recv, BoundMethod):
                self._eval_args(call)
                return None
            if isinstance(recv, Loc):
                self._eval_args(call)
                self._read(recv, call)
                if name in MUTATORS:
                    self._write(recv, call)
                return None
            self._eval_args(call)
            return None
        self.eval(func)
        self._eval_args(call)
        return None

    def _eval_args(self, call: ast.Call) -> List[AbstractVal]:
        vals = []
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                self.eval(arg.value)
                vals.append(None)
            else:
                vals.append(self.eval(arg))
        for kw in call.keywords:
            self.eval(kw.value)
        return vals

    def _bind_call_args(
        self, fn: ast.FunctionDef, call: ast.Call, skip_self: bool = True
    ) -> Dict[str, AbstractVal]:
        params = [a.arg for a in fn.args.args]
        if skip_self and params and params[0] == "self":
            params = params[1:]
        bindings: Dict[str, AbstractVal] = {}
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                self.eval(arg.value)
                continue
            val = self.eval(arg)
            if i < len(params) and val is not None:
                bindings[params[i]] = val
        for kw in call.keywords:
            val = self.eval(kw.value)
            if kw.arg is not None and val is not None:
                bindings[kw.arg] = val
        return bindings

    def _dispatch(
        self, instance: Instance, method: str, call: ast.Call
    ) -> AbstractVal:
        resolved = self._resolve_any_method(instance, method)
        if resolved is None:
            self._eval_args(call)
            return None
        bindings = self._bind_call_args(resolved[1], call)
        self.sink.call(instance, method, bindings, call)
        return self._return_value(instance, method)

    def _dispatch_super(
        self, sref: SuperRef, method: str, call: ast.Call
    ) -> AbstractVal:
        mro = self.index.mro(sref.concrete)
        try:
            start = mro.index(sref.defclass) + 1
        except ValueError:
            start = 1
        for cls in mro[start:]:
            fn = cls.methods.get(method)
            if fn is None:
                continue
            bindings = self._bind_call_args(fn, call)
            self.sink.call(
                sref.instance, method, bindings, call, concrete=cls
            )
            return self._return_value(sref.instance, method)
        self._eval_args(call)
        return None


# --------------------------------------------------------------------------- #
# The analyzer (memoized interprocedural summaries)                           #
# --------------------------------------------------------------------------- #


def _sig(bindings: Dict[str, AbstractVal]) -> Tuple:
    out = []
    for name in sorted(bindings):
        val = bindings[name]
        if isinstance(val, Instance):
            out.append((name, "i", val.key))
        elif isinstance(val, Loc):
            out.append((name, "l", val.key))
        elif isinstance(val, BoundMethod):
            out.append((name, "m", val.instance.key, val.name))
    return tuple(out)


class EffectAnalyzer:
    """Computes memoized may-read/may-write summaries per method call."""

    def __init__(self, index: PackageIndex) -> None:
        self.index = index
        self._memo: Dict[Tuple, EffectSet] = {}
        self._in_progress: set = set()
        self._members: Dict[Tuple[str, str], Instance] = {}
        self._depth = 0

    def member_instance(
        self, owner: Instance, cls: ClassInfo, label: str
    ) -> Instance:
        """Abstract member object (e.g. a lock returned by a lookup).

        All members of one class under one owner collapse to a single
        shared node — their state is owner state for hazard purposes.
        """
        key = (owner.key, cls.name)
        member = self._members.get(key)
        if member is None:
            member = Instance(f"{owner.key}.{label}", [cls], replicated=False)
            self._members[key] = member
            _GraphBuilder(self.index)._populate(member, [(cls, {})], depth=6)
        return member

    def call_effects(
        self,
        instance: Instance,
        method: str,
        bindings: Dict[str, AbstractVal],
        concrete: Optional[ClassInfo] = None,
    ) -> EffectSet:
        """Union summary over the instance's concrete class candidates."""
        total = EffectSet()
        candidates = [concrete] if concrete is not None else instance.classes
        for cls in candidates:
            total.update(self._method_effects(instance, cls, method, bindings))
        return total

    def _method_effects(
        self,
        instance: Instance,
        concrete: ClassInfo,
        method: str,
        bindings: Dict[str, AbstractVal],
    ) -> EffectSet:
        key = (instance.key, concrete.name, method, _sig(bindings))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress or self._depth >= MAX_CALL_DEPTH:
            return EffectSet()
        resolved = self.index.resolve_method(concrete, method)
        if resolved is None:
            return EffectSet()
        defclass, fn = resolved
        self._in_progress.add(key)
        self._depth += 1
        try:
            effects = EffectSet()
            env = self._param_env(fn, bindings)
            walker = BodyWalker(
                self, defclass.module, instance, concrete, defclass, env,
                EffectSink(self, effects),
            )
            walker.exec_body(fn.body)
            self._memo[key] = effects
            return effects
        finally:
            self._depth -= 1
            self._in_progress.discard(key)

    def function_effects(
        self,
        module: ModuleInfo,
        fn: ast.FunctionDef,
        bindings: Dict[str, AbstractVal],
    ) -> EffectSet:
        key = ("", module.name, fn.name, _sig(bindings))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress or self._depth >= MAX_CALL_DEPTH:
            return EffectSet()
        self._in_progress.add(key)
        self._depth += 1
        try:
            effects = EffectSet()
            env = self._param_env(fn, bindings)
            walker = BodyWalker(
                self, module, None, None, None, env, EffectSink(self, effects)
            )
            walker.exec_body(fn.body)
            self._memo[key] = effects
            return effects
        finally:
            self._depth -= 1
            self._in_progress.discard(key)

    @staticmethod
    def _param_env(
        fn: ast.FunctionDef, bindings: Dict[str, AbstractVal]
    ) -> Dict[str, AbstractVal]:
        return {k: v for k, v in bindings.items() if v is not None}
