"""Same-cycle tick-ordering hazard detection (FLOW001/FLOW002).

The simulator advances every component once per global cycle, in the
hard-coded order of the driver's ``run()`` loop.  That order is an
implementation detail — the modelled hardware is concurrent — so any
place where component A *reads* shared state that a later-ticked
component B *writes* in the same cycle makes results depend on the
loop's statement order: reordering a refactor silently changes AoPB.

Two rules over the per-cycle event stream:

* **FLOW001** — a read of a shared location at tick position *a* and a
  write of the same location at position *b > a* by a different
  component entry.  (Write-then-read is the intended producer/consumer
  dataflow and is not reported.)
* **FLOW002** — within one replicated sweep (``for i in range(n):
  core.step(...)``), a shared location is both read and written: the
  interaction between iteration *i* and iteration *j* depends on core
  index order.  Per-core state (locations rooted under the replicated
  instance the sweep iterates) is exempt — iteration *i* touching its
  own core is sequential code, not an ordering hazard.

The event stream comes from abstract execution of the driver loop: the
prologue (alias bindings like ``execute = controller.execute``) runs
muted, then the cycle-loop body runs live, expanding every component
method call into its interprocedural effect summary at the call's tick
position.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..lint import Finding
from .effects import (
    AbstractVal,
    BodyWalker,
    EffectAccess,
    EffectAnalyzer,
    EffectSet,
    EffectSink,
    Instance,
    build_instance_graph,
)
from .model import ClassInfo, ModuleInfo, PackageIndex

ROOT_KEY = "sim"

#: Loop-method names recognized as the per-cycle driver.
DRIVER_METHODS = ("run", "tick", "advance", "step")


@dataclass(frozen=True)
class TickEvent:
    """One shared-state access at a position in the cycle loop."""

    kind: str               # "r" | "w"
    access: EffectAccess
    pos: int                # statement position within the cycle body
    label: str              # "Core.step", "CMPSimulator.run", ...
    group: Optional[int]    # innermost for-loop id, None at top level
    receiver_key: Optional[str]  # callee instance key, None for driver


def find_driver(
    index: PackageIndex,
) -> Optional[Tuple[ClassInfo, ast.FunctionDef, ast.stmt]]:
    """Locate (simulator class, driver method, cycle loop statement)."""
    best: Optional[Tuple[int, ClassInfo, ast.FunctionDef, ast.stmt]] = None
    for mod in index.modules.values():
        for cls in mod.classes.values():
            for mname in DRIVER_METHODS:
                fn = cls.methods.get(mname)
                if fn is None:
                    continue
                loop = _top_level_loop(fn)
                if loop is None:
                    continue
                score = 1
                if mod.relpath.endswith("sim/cmp.py") or mod.name == "sim.cmp":
                    score += 10
                if "Simulator" in cls.name or cls.name.endswith("Sim"):
                    score += 5
                if mname == "run":
                    score += 1
                if best is None or score > best[0]:
                    best = (score, cls, fn, loop)
    if best is None:
        return None
    return best[1], best[2], best[3]


def _top_level_loop(fn: ast.FunctionDef) -> Optional[ast.stmt]:
    for stmt in fn.body:
        if isinstance(stmt, (ast.While, ast.For)):
            return stmt
    return None


# --------------------------------------------------------------------------- #
# Tick event extraction                                                       #
# --------------------------------------------------------------------------- #


class _TickState:
    def __init__(self) -> None:
        self.events: List[TickEvent] = []
        self.pos = 0
        self.group_stack: List[int] = []
        self.next_group = 0
        #: group id -> replicated instance keys iterated by that loop.
        self.group_iterates: Dict[int, Set[str]] = {}

    @property
    def group(self) -> Optional[int]:
        return self.group_stack[-1] if self.group_stack else None


class _TickSink(EffectSink):
    def __init__(
        self, analyzer: EffectAnalyzer, state: _TickState, driver_label: str
    ) -> None:
        super().__init__(analyzer, EffectSet())
        self.state = state
        self.driver_label = driver_label

    def _emit(
        self,
        kind: str,
        access: EffectAccess,
        label: str,
        receiver_key: Optional[str],
    ) -> None:
        self.state.events.append(
            TickEvent(
                kind=kind,
                access=access,
                pos=self.state.pos,
                label=label,
                group=self.state.group,
                receiver_key=receiver_key,
            )
        )

    def read(self, access: EffectAccess) -> None:
        if not self.muted:
            self._emit("r", access, self.driver_label, None)

    def write(self, access: EffectAccess) -> None:
        if not self.muted:
            self._emit("w", access, self.driver_label, None)

    def call(
        self,
        instance: Instance,
        method: str,
        bindings: Dict[str, AbstractVal],
        node: ast.AST,
        concrete: Optional[ClassInfo] = None,
    ) -> None:
        summary = self.analyzer.call_effects(instance, method, bindings, concrete)
        if self.muted:
            return
        cls_name = concrete.name if concrete is not None else instance.display_class
        label = f"{cls_name}.{method}"
        for access in summary.reads.values():
            self._emit("r", access, label, instance.key)
        for access in summary.writes.values():
            self._emit("w", access, label, instance.key)

    def function(self, summary: EffectSet, node: ast.AST, **kwargs) -> None:
        if self.muted:
            return
        for access in summary.reads.values():
            self._emit("r", access, self.driver_label, None)
        for access in summary.writes.values():
            self._emit("w", access, self.driver_label, None)


class _TickWalker(BodyWalker):
    """BodyWalker that numbers statements and tracks replicated sweeps."""

    def __init__(self, *args, state: _TickState) -> None:
        super().__init__(*args)
        self.state = state

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if not self.sink.muted:
            self.state.pos += 1
        if isinstance(stmt, ast.For):
            self.eval(stmt.iter)
            self.bind_loop_target(stmt.target, stmt.iter)
            gid = self.state.next_group
            self.state.next_group += 1
            self.state.group_iterates.setdefault(gid, set())
            self.state.group_stack.append(gid)
            try:
                self.exec_loop_body(stmt.body)
            finally:
                self.state.group_stack.pop()
            self.exec_body(stmt.orelse)
            return
        super().exec_stmt(stmt)

    def on_replicated_element(self, instance: Instance) -> None:
        if instance.replicated and self.state.group_stack:
            self.state.group_iterates[self.state.group_stack[-1]].add(
                instance.key
            )


def extract_tick_events(
    index: PackageIndex,
    root_cls: ClassInfo,
    driver_fn: ast.FunctionDef,
    loop: ast.stmt,
) -> Tuple[_TickState, Instance]:
    """Run the driver abstractly; return the ordered event stream."""
    root = build_instance_graph(index, root_cls, ROOT_KEY)
    analyzer = EffectAnalyzer(index)
    state = _TickState()
    sink = _TickSink(analyzer, state, f"{root_cls.name}.{driver_fn.name}")
    walker = _TickWalker(
        analyzer, root_cls.module, root, root_cls, root_cls, {}, sink,
        state=state,
    )
    # Prologue: alias bindings only, no events.
    sink.muted += 1
    for stmt in driver_fn.body:
        if stmt is loop:
            break
        walker.exec_stmt(stmt)
    # Prime the loop body once muted (bindings made late in the body),
    # then walk it live to produce the tick-ordered stream.
    for stmt in loop.body:
        walker.exec_stmt(stmt)
    sink.muted -= 1
    if isinstance(loop, ast.For):
        walker.bind_loop_target(loop.target, loop.iter)
    for stmt in loop.body:
        walker.exec_stmt(stmt)
    return state, root


# --------------------------------------------------------------------------- #
# Hazard detection                                                            #
# --------------------------------------------------------------------------- #


def _replicated_root(key: str) -> Optional[str]:
    idx = key.find("[*]")
    return key[: idx + 3] if idx != -1 else None


def _display(loc_key: str) -> str:
    prefix = ROOT_KEY + "."
    return loc_key[len(prefix):] if loc_key.startswith(prefix) else loc_key


def _per_instance(event: TickEvent, state: _TickState) -> bool:
    """True when the access touches the sweep's *own* element state."""
    root = _replicated_root(event.access.loc_key)
    if root is None:
        return False
    if event.receiver_key is not None and (
        event.receiver_key == root or event.receiver_key.startswith(root + ".")
    ):
        return True
    if event.group is not None and root in state.group_iterates.get(
        event.group, ()
    ):
        return True
    return False


def detect_hazards(state: _TickState) -> List[Finding]:
    by_loc: Dict[str, List[TickEvent]] = {}
    for event in state.events:
        by_loc.setdefault(event.access.loc_key, []).append(event)

    findings: List[Finding] = []
    seen: Set[str] = set()
    for loc_key, events in sorted(by_loc.items()):
        shared = [e for e in events if not _per_instance(e, state)]
        reads = [e for e in shared if e.kind == "r"]
        writes = [e for e in shared if e.kind == "w"]
        if not reads or not writes:
            continue
        display = _display(loc_key)

        # FLOW002: read + write inside the same replicated sweep.
        flow2_groups: Set[int] = set()
        for r in reads:
            if r.group is None:
                continue
            for w in writes:
                if w.group != r.group:
                    continue
                flow2_groups.add(r.group)
                fp = f"FLOW002|{display}|{r.label}|{w.label}"
                if fp in seen:
                    continue
                seen.add(fp)
                findings.append(
                    Finding(
                        path=r.access.file,
                        line=r.access.line,
                        col=r.access.col,
                        rule_id="FLOW002",
                        message=(
                            f"'{display}' is read by {r.label} and written "
                            f"by {w.label} (at {w.access.file}:{w.access.line}) "
                            "within the same per-component sweep; the "
                            "interaction between iterations depends on "
                            "component index order"
                        ),
                        fingerprint=fp,
                    )
                )
                break  # one finding per (loc, reader) is enough

        # FLOW001: read strictly before a later write by another entry.
        for r in reads:
            for w in writes:
                if w.pos <= r.pos:
                    continue
                if (
                    r.group is not None
                    and r.group == w.group
                    and r.group in flow2_groups
                ):
                    continue  # already covered by FLOW002
                if r.label == w.label and r.receiver_key == w.receiver_key:
                    continue  # same component entry: internal sequencing
                fp = f"FLOW001|{display}|{r.label}|{w.label}"
                if fp in seen:
                    continue
                seen.add(fp)
                findings.append(
                    Finding(
                        path=r.access.file,
                        line=r.access.line,
                        col=r.access.col,
                        rule_id="FLOW001",
                        message=(
                            f"'{display}' is read by {r.label} and then "
                            f"written by {w.label} later in the same cycle "
                            f"(write at {w.access.file}:{w.access.line}); "
                            "the result depends on the hard-coded tick order"
                        ),
                        fingerprint=fp,
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return findings


def check_hazards(index: PackageIndex) -> Tuple[List[Finding], List[str]]:
    """Full hazard pass: (findings, notes)."""
    notes: List[str] = []
    driver = find_driver(index)
    if driver is None:
        notes.append(
            "hazards: no per-cycle driver loop found "
            "(looked for run/tick/advance with a top-level loop); "
            "tick-order analysis skipped"
        )
        return [], notes
    root_cls, fn, loop = driver
    notes.append(
        f"hazards: driver {root_cls.name}.{fn.name} "
        f"({root_cls.module.relpath}:{fn.lineno})"
    )
    state, _root = extract_tick_events(index, root_cls, fn, loop)
    return detect_hazards(state), notes
