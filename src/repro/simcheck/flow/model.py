"""Package model shared by the flow analyses (stdlib ``ast`` only).

Parses every ``*.py`` file under one package root once and exposes the
facts both passes need:

* classes, their methods and base classes (for method resolution),
* per-class attribute *types* — which component class ``self.x`` holds,
  resolved from constructor calls, annotations, factory return
  annotations and annotated ``__init__`` parameters,
* per-class and module-level *unit* annotations (the
  :mod:`repro.units` vocabulary) for the dimension checker.

Class names are assumed unique across the package (true for this repo);
on a collision the first definition wins and the module records the
ambiguity so findings can say so.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Annotation names recognized as units (mirrors ``repro.units``).
UNIT_NAMES = ("Tokens", "Joules", "Watts", "Cycles", "Hertz")

#: Typing containers whose subscript argument carries the element type.
_CONTAINER_HEADS = {
    "List", "list", "Sequence", "Tuple", "tuple", "Deque", "deque",
    "Optional", "Iterable", "Set", "set", "FrozenSet", "frozenset",
}


def annotation_heads(node: Optional[ast.expr]) -> List[str]:
    """Candidate class/unit names named by an annotation expression.

    ``Core`` -> [Core]; ``List[Core]`` -> [Core]; ``Optional[X]`` ->
    [X]; ``"List[Core]"`` (string annotation) -> [Core].  Unknown
    shapes yield [].
    """
    if node is None:
        return []
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
        return annotation_heads(parsed)
    if isinstance(node, ast.Subscript):
        heads = annotation_heads(node.value)
        if heads and heads[0] in _CONTAINER_HEADS:
            inner = node.slice
            if isinstance(inner, ast.Tuple):
                out: List[str] = []
                for elt in inner.elts:
                    out.extend(annotation_heads(elt))
                return out
            return annotation_heads(inner)
        return heads
    return []


def annotation_unit(node: Optional[ast.expr]) -> Optional[str]:
    """The unit named by an annotation (sees through containers)."""
    for head in annotation_heads(node):
        if head in UNIT_NAMES:
            return head
    return None


def is_annotated_replicated(node: Optional[ast.expr]) -> bool:
    """True when the annotation is a homogeneous container (List[...])."""
    if isinstance(node, ast.Subscript):
        heads = annotation_heads(node.value)
        return bool(heads) and heads[0] in (
            "List", "list", "Sequence", "Deque", "deque", "Tuple", "tuple"
        )
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return False
        return is_annotated_replicated(parsed)
    return False


def has_decorator(node: ast.FunctionDef, *names: str) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id in names:
            return True
        if isinstance(target, ast.Attribute) and target.attr in names:
            return True
    return False


@dataclass
class ClassInfo:
    """One class definition and what the analyses know about it."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: ``self.x`` -> class name it holds (components / typed refs).
    attr_classes: Dict[str, str] = field(default_factory=dict)
    #: ``self.x`` -> unit name (repro.units vocabulary).
    attr_units: Dict[str, str] = field(default_factory=dict)
    #: direct subclass names, filled by the index after all parsing.
    subclass_names: List[str] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        return f"{self.module.name}.{self.name}"


@dataclass
class ModuleInfo:
    """One parsed module under the package root."""

    path: Path
    relpath: str          # package-root-relative, forward slashes
    name: str             # dotted, relative to the package root
    tree: ast.Module
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: module-level ``NAME: Unit = ...`` constants.
    constant_units: Dict[str, str] = field(default_factory=dict)


class PackageIndex:
    """Whole-package symbol index for the flow analyses."""

    def __init__(self) -> None:
        self.root: Optional[Path] = None
        self.modules: Dict[str, ModuleInfo] = {}
        #: bare class name -> ClassInfo (first definition wins).
        self.classes: Dict[str, ClassInfo] = {}
        #: bare function name -> (module, FunctionDef); first wins.
        self.functions: Dict[str, Tuple[ModuleInfo, ast.FunctionDef]] = {}
        self.ambiguous_classes: List[str] = []
        self.parse_errors: List[Tuple[str, str]] = []

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, root: Path) -> "PackageIndex":
        index = cls()
        index.root = root
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            name = rel[:-3].replace("/", ".")
            if name.endswith(".__init__"):
                name = name[: -len(".__init__")]
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except SyntaxError as exc:
                index.parse_errors.append((rel, str(exc)))
                continue
            mod = ModuleInfo(path=path, relpath=rel, name=name or rel, tree=tree)
            index.modules[mod.name] = mod
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    info = _build_class(mod, node)
                    mod.classes[info.name] = info
                    if info.name in index.classes:
                        index.ambiguous_classes.append(info.name)
                    else:
                        index.classes[info.name] = info
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    mod.functions[node.name] = node
                    index.functions.setdefault(node.name, (mod, node))
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    unit = annotation_unit(node.annotation)
                    if unit:
                        mod.constant_units[node.target.id] = unit
        index._resolve_attr_types()
        index._link_subclasses()
        return index

    # -- queries ------------------------------------------------------------

    def resolve_class(self, name: str) -> Optional[ClassInfo]:
        return self.classes.get(name)

    def resolve_function(
        self, name: str, module: Optional[ModuleInfo] = None
    ) -> Optional[Tuple[ModuleInfo, ast.FunctionDef]]:
        if module is not None and name in module.functions:
            return module, module.functions[name]
        return self.functions.get(name)

    def mro(self, info: ClassInfo) -> List[ClassInfo]:
        """The class plus its in-package base chain, nearest first."""
        seen = {info.name}
        order = [info]
        queue = list(info.bases)
        while queue:
            base = self.resolve_class(queue.pop(0))
            if base is None or base.name in seen:
                continue
            seen.add(base.name)
            order.append(base)
            queue.extend(base.bases)
        return order

    def concrete_subclasses(self, info: ClassInfo) -> List[ClassInfo]:
        """The class and every transitive in-package subclass."""
        out = [info]
        seen = {info.name}
        queue = list(info.subclass_names)
        while queue:
            sub = self.resolve_class(queue.pop(0))
            if sub is None or sub.name in seen:
                continue
            seen.add(sub.name)
            out.append(sub)
            queue.extend(sub.subclass_names)
        return out

    def resolve_method(
        self, info: ClassInfo, name: str
    ) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        """MRO lookup of ``name`` starting at ``info``."""
        for cls in self.mro(info):
            fn = cls.methods.get(name)
            if fn is not None:
                return cls, fn
        return None

    def attr_class(self, info: ClassInfo, attr: str) -> Optional[ClassInfo]:
        """Class held by ``self.attr`` on ``info`` (searches the MRO)."""
        for cls in self.mro(info):
            name = cls.attr_classes.get(attr)
            if name is not None:
                return self.resolve_class(name)
        return None

    def attr_unit(self, info: ClassInfo, attr: str) -> Optional[str]:
        for cls in self.mro(info):
            unit = cls.attr_units.get(attr)
            if unit is not None:
                return unit
        return None

    def factory_returns(self, fn: ast.FunctionDef) -> List[str]:
        """Classes a function may return, per its return annotation."""
        return [
            h for h in annotation_heads(fn.returns) if h in self.classes
        ]

    # -- internal -----------------------------------------------------------

    def _link_subclasses(self) -> None:
        for info in self.classes.values():
            for base in info.bases:
                parent = self.classes.get(base)
                if parent is not None:
                    parent.subclass_names.append(info.name)

    def _resolve_attr_types(self) -> None:
        """Second pass: resolve self-attribute classes and units.

        Needs the full class/function tables, hence after parsing.
        """
        for info in self.classes.values():
            param_units, param_classes = {}, {}
            init = info.methods.get("__init__")
            if init is not None:
                for arg in list(init.args.args) + list(init.args.kwonlyargs):
                    unit = annotation_unit(arg.annotation)
                    if unit:
                        param_units[arg.arg] = unit
                    for head in annotation_heads(arg.annotation):
                        if head in self.classes:
                            param_classes[arg.arg] = head
                            break
            for fn in info.methods.values():
                for stmt in ast.walk(fn):
                    self._record_self_assign(
                        info, stmt, param_units, param_classes
                    )
            for stmt in info.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    unit = annotation_unit(stmt.annotation)
                    if unit:
                        info.attr_units.setdefault(stmt.target.id, unit)
                    for head in annotation_heads(stmt.annotation):
                        if head in self.classes:
                            info.attr_classes.setdefault(stmt.target.id, head)
                            break

    def _record_self_assign(
        self,
        info: ClassInfo,
        stmt: ast.AST,
        param_units: Dict[str, str],
        param_classes: Dict[str, str],
    ) -> None:
        targets: Sequence[ast.expr]
        value: Optional[ast.expr]
        annotation: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value, annotation = [stmt.target], stmt.value, stmt.annotation
        else:
            return
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if annotation is not None:
                unit = annotation_unit(annotation)
                if unit:
                    info.attr_units.setdefault(attr, unit)
                for head in annotation_heads(annotation):
                    if head in self.classes:
                        info.attr_classes.setdefault(attr, head)
                        break
            if value is None:
                continue
            cls_name = self._value_class(info, value, param_classes)
            if cls_name is not None:
                info.attr_classes.setdefault(attr, cls_name)
            unit = self._value_unit(info, value, param_units)
            if unit is not None:
                info.attr_units.setdefault(attr, unit)

    def _value_class(
        self, info: ClassInfo, value: ast.expr, param_classes: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            name = value.func.id
            if name in self.classes:
                return name
            resolved = self.resolve_function(name, info.module)
            if resolved is not None:
                returns = self.factory_returns(resolved[1])
                if returns:
                    return returns[0]
        if isinstance(value, ast.Name) and value.id in param_classes:
            return param_classes[value.id]
        if isinstance(value, ast.ListComp) and isinstance(
            value.elt, ast.Call
        ) and isinstance(value.elt.func, ast.Name):
            if value.elt.func.id in self.classes:
                return value.elt.func.id
        return None

    def _value_unit(
        self, info: ClassInfo, value: ast.expr, param_units: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(value, ast.Name):
            if value.id in param_units:
                return param_units[value.id]
            return info.module.constant_units.get(value.id)
        return None


def _build_class(mod: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
    bases: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            bases.append(base.attr)
    info = ClassInfo(name=node.name, module=mod, node=node, bases=bases)
    for child in node.body:
        if isinstance(child, ast.FunctionDef):
            info.methods[child.name] = child
    return info
