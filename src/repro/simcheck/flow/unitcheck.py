"""Unit/dimension propagation (UNIT001-UNIT005).

Propagates the :mod:`repro.units` vocabulary (``Tokens``, ``Joules``,
``Watts``, ``Cycles``, ``Hertz``) through every function in the package
and flags mixed-unit expressions:

* **UNIT001** — ``+``/``-``/``+=``/``-=`` between two *different* known
  units (adding a token count to an energy).
* **UNIT002** — ordering/equality comparison, or ``min``/``max``,
  between two different known units (comparing watts to a token
  budget).
* **UNIT003** — argument with a known unit passed to a parameter
  annotated with a different unit.
* **UNIT004** — return value with a known unit from a function whose
  return annotation names a different unit.
* **UNIT005** — storing a known unit into an attribute/constant
  declared with a different unit.

The lattice is deliberately shallow: a value is one of the five units
or *unknown*, and multiplication/division launder to unknown (that is
how currencies are exchanged — ``tokens * token_unit``).  Deliberate
conversions therefore go through an annotated function, or carry an
inline ``# simcheck: disable=UNIT00x`` marker at the crossing point
(same suppression syntax as the lint rules).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..lint import Finding, _parse_disables
from .model import (
    ClassInfo,
    ModuleInfo,
    PackageIndex,
    annotation_unit,
    has_decorator,
)


@dataclass(frozen=True)
class TypedRef:
    """A reference whose class (not unit) is known."""

    cls: ClassInfo


@dataclass(frozen=True)
class BoundFn:
    """A resolvable callee: method or module function."""

    fn: ast.FunctionDef
    skip_first: bool  # True for bound instance methods (drop ``self``)


UnitVal = Union[str, TypedRef, BoundFn, None]

#: Builtins that preserve the unit of their (first) argument.
_PASSTHROUGH = frozenset({"int", "float", "abs", "round", "sorted", "list",
                          "tuple", "sum"})


def _unit(val: UnitVal) -> Optional[str]:
    return val if isinstance(val, str) else None


class _FunctionChecker:
    def __init__(
        self,
        index: PackageIndex,
        mod: ModuleInfo,
        imports: Dict[str, Tuple[str, str]],
        cls: Optional[ClassInfo],
        fn: ast.FunctionDef,
        findings: List[Finding],
    ) -> None:
        self.index = index
        self.mod = mod
        self.imports = imports
        self.cls = cls
        self.fn = fn
        self.findings = findings
        self.qualname = f"{cls.name}.{fn.name}" if cls is not None else fn.name
        self.env: Dict[str, UnitVal] = {}
        if cls is not None and not has_decorator(fn, "staticmethod"):
            args = fn.args.args
            if args and args[0].arg in ("self", "cls"):
                self.env[args[0].arg] = TypedRef(cls)
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            unit = annotation_unit(arg.annotation)
            if unit is not None:
                self.env[arg.arg] = unit
                continue
            ref = self._class_of_annotation(arg.annotation)
            if ref is not None:
                self.env[arg.arg] = TypedRef(ref)

    # -- reporting ----------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.mod.relpath,
                line=getattr(node, "lineno", self.fn.lineno),
                col=getattr(node, "col_offset", 0),
                rule_id=rule,
                message=f"{message} (in {self.qualname})",
                fingerprint=f"{rule}|{self.mod.relpath}|{self.qualname}|{message}",
            )
        )

    # -- resolution helpers -------------------------------------------------

    def _class_of_annotation(self, node: Optional[ast.expr]) -> Optional[ClassInfo]:
        from .model import annotation_heads

        for head in annotation_heads(node):
            cls = self.index.resolve_class(head)
            if cls is not None:
                return cls
        return None

    def _name_value(self, name: str) -> UnitVal:
        if name in self.env:
            return self.env[name]
        unit = self.mod.constant_units.get(name)
        if unit is not None:
            return unit
        imported = self.imports.get(name)
        if imported is not None:
            target_mod = self.index.modules.get(imported[0])
            if target_mod is not None:
                unit = target_mod.constant_units.get(imported[1])
                if unit is not None:
                    return unit
                fn = target_mod.functions.get(imported[1])
                if fn is not None:
                    return BoundFn(fn, skip_first=False)
                cls = target_mod.classes.get(imported[1])
                if cls is not None:
                    return TypedRef(cls)
        cls = self.mod.classes.get(name) or self.index.resolve_class(name)
        if cls is not None:
            return TypedRef(cls)
        fn = self.mod.functions.get(name)
        if fn is not None:
            return BoundFn(fn, skip_first=False)
        return None

    # -- inference ----------------------------------------------------------

    def infer(self, expr: Optional[ast.expr]) -> UnitVal:
        if expr is None:
            return None
        method = getattr(self, f"_infer_{type(expr).__name__}", None)
        if method is not None:
            return method(expr)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.infer(child)
        return None

    def _infer_Name(self, expr: ast.Name) -> UnitVal:
        return self._name_value(expr.id)

    def _infer_Constant(self, expr: ast.Constant) -> UnitVal:
        return None

    def _infer_Attribute(self, expr: ast.Attribute) -> UnitVal:
        base = self.infer(expr.value)
        if isinstance(base, TypedRef):
            unit = self.index.attr_unit(base.cls, expr.attr)
            if unit is not None:
                return unit
            target = self.index.attr_class(base.cls, expr.attr)
            if target is not None:
                return TypedRef(target)
            resolved = self.index.resolve_method(base.cls, expr.attr)
            if resolved is not None:
                fn = resolved[1]
                if has_decorator(fn, "property", "cached_property"):
                    unit = annotation_unit(fn.returns)
                    if unit is not None:
                        return unit
                    ref = self._class_of_annotation(fn.returns)
                    return TypedRef(ref) if ref is not None else None
                skip = not has_decorator(fn, "staticmethod")
                return BoundFn(fn, skip_first=skip)
        return None

    def _infer_Subscript(self, expr: ast.Subscript) -> UnitVal:
        base = self.infer(expr.value)
        self.infer(expr.slice)
        # Containers are unit-homogeneous: element keeps the unit/class.
        if isinstance(base, (str, TypedRef)):
            return base
        return None

    def _infer_BinOp(self, expr: ast.BinOp) -> UnitVal:
        left = _unit(self.infer(expr.left))
        right = _unit(self.infer(expr.right))
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None and left != right:
                verb = "adds" if isinstance(expr.op, ast.Add) else "subtracts"
                self._report(
                    expr, "UNIT001", f"{verb} {right} to {left}"
                )
            return left or right
        # Mult/Div/... launder units (currency exchange).
        return None

    def _infer_UnaryOp(self, expr: ast.UnaryOp) -> UnitVal:
        return self.infer(expr.operand)

    def _infer_BoolOp(self, expr: ast.BoolOp) -> UnitVal:
        vals = [self.infer(v) for v in expr.values]
        units = {_unit(v) for v in vals}
        units.discard(None)
        return units.pop() if len(units) == 1 else None

    def _infer_IfExp(self, expr: ast.IfExp) -> UnitVal:
        self.infer(expr.test)
        a = self.infer(expr.body)
        b = self.infer(expr.orelse)
        return a if a is not None else b

    def _infer_Compare(self, expr: ast.Compare) -> UnitVal:
        vals = [self.infer(expr.left)]
        vals.extend(self.infer(c) for c in expr.comparators)
        for i, op in enumerate(expr.ops):
            if isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot)):
                continue
            a, b = _unit(vals[i]), _unit(vals[i + 1])
            if a is not None and b is not None and a != b:
                self._report(expr, "UNIT002", f"compares {a} with {b}")
        return None

    def _infer_NamedExpr(self, expr: ast.NamedExpr) -> UnitVal:
        val = self.infer(expr.value)
        if isinstance(expr.target, ast.Name):
            self._bind(expr.target.id, val)
        return val

    def _infer_Lambda(self, expr: ast.Lambda) -> UnitVal:
        return None

    def _infer_ListComp(self, expr: ast.ListComp) -> UnitVal:
        return self._comprehension(expr.generators, expr.elt)

    def _infer_SetComp(self, expr: ast.SetComp) -> UnitVal:
        return self._comprehension(expr.generators, expr.elt)

    def _infer_GeneratorExp(self, expr: ast.GeneratorExp) -> UnitVal:
        return self._comprehension(expr.generators, expr.elt)

    def _infer_DictComp(self, expr: ast.DictComp) -> UnitVal:
        self._comprehension(expr.generators, expr.value)
        self.infer(expr.key)
        return None

    def _comprehension(
        self, generators: List[ast.comprehension], elt: ast.expr
    ) -> UnitVal:
        for gen in generators:
            src = self.infer(gen.iter)
            if isinstance(gen.target, ast.Name):
                self._bind(gen.target.id, src)
            for cond in gen.ifs:
                self.infer(cond)
        return self.infer(elt)

    def _infer_Call(self, expr: ast.Call) -> UnitVal:
        func = expr.func
        callee: UnitVal = None
        if isinstance(func, ast.Name):
            name = func.id
            if name in ("min", "max"):
                units = []
                for arg in expr.args:
                    u = _unit(self.infer(arg))
                    if u is not None:
                        units.append(u)
                for kw in expr.keywords:
                    self.infer(kw.value)
                distinct = sorted(set(units))
                if len(distinct) > 1:
                    self._report(
                        expr, "UNIT002",
                        f"mixes {' and '.join(distinct)} in {name}()",
                    )
                return units[0] if units else None
            if name in _PASSTHROUGH:
                first = None
                for i, arg in enumerate(expr.args):
                    val = self.infer(arg)
                    if i == 0:
                        first = val
                for kw in expr.keywords:
                    self.infer(kw.value)
                return _unit(first)
            callee = self._name_value(name)
        elif isinstance(func, ast.Attribute):
            callee = self._infer_Attribute(func)
        else:
            self.infer(func)

        if not isinstance(callee, BoundFn):
            for arg in expr.args:
                self.infer(arg.value if isinstance(arg, ast.Starred) else arg)
            for kw in expr.keywords:
                self.infer(kw.value)
            if isinstance(callee, TypedRef):
                return callee  # constructor call
            return None

        fn = callee.fn
        params = list(fn.args.args)
        if callee.skip_first and params and params[0].arg in ("self", "cls"):
            params = params[1:]
        for i, arg in enumerate(expr.args):
            if isinstance(arg, ast.Starred):
                self.infer(arg.value)
                continue
            got = _unit(self.infer(arg))
            if i < len(params):
                want = annotation_unit(params[i].annotation)
                if got is not None and want is not None and got != want:
                    self._report(
                        arg, "UNIT003",
                        f"passes {got} where parameter "
                        f"'{params[i].arg}' of {fn.name}() expects {want}",
                    )
        by_name = {p.arg: p for p in params + list(fn.args.kwonlyargs)}
        for kw in expr.keywords:
            got = _unit(self.infer(kw.value))
            param = by_name.get(kw.arg) if kw.arg else None
            if param is not None and got is not None:
                want = annotation_unit(param.annotation)
                if want is not None and got != want:
                    self._report(
                        kw.value, "UNIT003",
                        f"passes {got} where parameter "
                        f"'{param.arg}' of {fn.name}() expects {want}",
                    )
        unit = annotation_unit(fn.returns)
        if unit is not None:
            return unit
        ref = self._class_of_annotation(fn.returns)
        return TypedRef(ref) if ref is not None else None

    # -- statements ---------------------------------------------------------

    def _bind(self, name: str, val: UnitVal) -> None:
        if val is None:
            self.env.pop(name, None)
        else:
            self.env[name] = val

    def run(self) -> None:
        self.exec_body(self.fn.body)

    def exec_body(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            val = self.infer(stmt.value)
            for target in stmt.targets:
                self._store(target, val, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            declared = annotation_unit(stmt.annotation)
            val = self.infer(stmt.value) if stmt.value is not None else None
            got = _unit(val)
            if declared is not None and got is not None and got != declared:
                self._report(
                    stmt, "UNIT005",
                    f"assigns {got} to a target declared {declared}",
                )
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target.id, declared or val)
        elif isinstance(stmt, ast.AugAssign):
            val = _unit(self.infer(stmt.value))
            target = _unit(self._target_unit(stmt.target))
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                if val is not None and target is not None and val != target:
                    verb = "adds" if isinstance(stmt.op, ast.Add) else "subtracts"
                    self._report(
                        stmt, "UNIT001", f"{verb} {val} to {target}"
                    )
        elif isinstance(stmt, ast.Return):
            val = _unit(self.infer(stmt.value)) if stmt.value is not None else None
            declared = annotation_unit(self.fn.returns)
            if val is not None and declared is not None and val != declared:
                self._report(
                    stmt, "UNIT004",
                    f"returns {val} from a function annotated {declared}",
                )
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, ast.If):
            self.infer(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            src = self.infer(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target.id, src)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.infer(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.infer(item.context_expr)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.infer(child)

    def _target_unit(self, target: ast.expr) -> UnitVal:
        if isinstance(target, ast.Name):
            return self.env.get(target.id)
        if isinstance(target, ast.Attribute):
            base = self.infer(target.value)
            if isinstance(base, TypedRef):
                return self.index.attr_unit(base.cls, target.attr)
            return None
        if isinstance(target, ast.Subscript):
            base = self._target_unit(target.value)
            self.infer(target.slice)
            return base if isinstance(base, str) else (
                _unit(self.infer(target.value))
            )
        return None

    def _store(self, target: ast.expr, val: UnitVal, stmt: ast.stmt) -> None:
        got = _unit(val)
        if isinstance(target, ast.Name):
            self._bind(target.id, val)
            return
        if isinstance(target, ast.Attribute):
            base = self.infer(target.value)
            if isinstance(base, TypedRef):
                declared = self.index.attr_unit(base.cls, target.attr)
                if declared is not None and got is not None and got != declared:
                    self._report(
                        stmt, "UNIT005",
                        f"assigns {got} to attribute "
                        f"'{target.attr}' declared {declared}",
                    )
            return
        if isinstance(target, ast.Subscript):
            declared = _unit(self._target_unit(target))
            if declared is not None and got is not None and got != declared:
                self._report(
                    stmt, "UNIT005",
                    f"assigns {got} into a container declared {declared}",
                )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt, None, stmt)


# --------------------------------------------------------------------------- #
# Module / package driver                                                     #
# --------------------------------------------------------------------------- #


def _import_map(mod: ModuleInfo) -> Dict[str, Tuple[str, str]]:
    """Local name -> (package-relative module name, original name)."""
    out: Dict[str, Tuple[str, str]] = {}
    parts = mod.name.split(".") if mod.name else []
    is_pkg = mod.relpath.endswith("__init__.py")
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        if node.level == 0:
            target = node.module or ""
            # Absolute imports of the package itself: strip the package
            # prefix so "repro.units" matches the index's "units".
            for prefix in ("repro.",):
                if target.startswith(prefix):
                    target = target[len(prefix):]
        else:
            up = node.level if not is_pkg else node.level - 1
            base = parts[: len(parts) - up] if up else parts
            if up > len(parts):
                continue
            target = ".".join(base + (node.module.split(".") if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            out[alias.asname or alias.name] = (target, alias.name)
    return out


def check_units(
    index: PackageIndex, mods: Optional[List[ModuleInfo]] = None
) -> List[Finding]:
    findings: List[Finding] = []
    for mod in mods if mods is not None else index.modules.values():
        mod_findings: List[Finding] = []
        imports = _import_map(mod)
        for fn in mod.functions.values():
            if isinstance(fn, ast.FunctionDef):
                _FunctionChecker(
                    index, mod, imports, None, fn, mod_findings
                ).run()
        for cls in mod.classes.values():
            for fn in cls.methods.values():
                _FunctionChecker(
                    index, mod, imports, cls, fn, mod_findings
                ).run()
        if mod_findings:
            try:
                disables = _parse_disables(mod.path.read_text())
            except OSError:
                disables = {}
            for finding in mod_findings:
                rules = disables.get(finding.line, set())
                if finding.rule_id in rules or "all" in rules:
                    continue
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return findings
