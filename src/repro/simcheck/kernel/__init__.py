"""``repro.simcheck.kernel`` — hot-loop perf lint + coupling report.

The third simcheck pass.  Where ``lint`` checks local idioms and
``flow`` checks tick-order soundness, ``kernel`` answers the two
questions ROADMAP item 1's 10–100× rewrite depends on:

1. *Where does the interpreter burn cycles today?*  PERF001–PERF006
   over every function reachable from the driver's per-cycle sweep
   (:mod:`.perf`).
2. *Which state can be batched across cores?*  The per-core /
   cross-core / global field taxonomy and coupling edges
   (:mod:`.coupling`), serialized as ``kernel-report.json``
   (:mod:`.report`).

Both halves share one driver discovery, one instance graph and one
memoized effect analyzer (:mod:`.hotpath`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..flow.effects import EffectAnalyzer
from ..flow.hazards import find_driver
from ..flow.model import PackageIndex
from ..lint import Finding
from .coupling import (
    CROSS_CORE,
    GLOBAL,
    PER_CORE,
    UNKNOWN,
    FieldClass,
    classify_fields,
    extract_sweep_events,
)
from .hotpath import HotGraph, build_hot_graph
from .perf import check_perf
from .report import build_report, render_json, render_table

__all__ = [
    "KernelAnalysis",
    "analyze_kernel",
    "build_hot_graph",
    "check_perf",
    "classify_fields",
    "build_report",
    "render_json",
    "render_table",
    "PER_CORE",
    "CROSS_CORE",
    "GLOBAL",
    "UNKNOWN",
]


@dataclass
class KernelAnalysis:
    """Everything one kernel run produces."""

    findings: List[Finding] = field(default_factory=list)
    fields: List[FieldClass] = field(default_factory=list)
    report: Optional[Dict[str, object]] = None
    graph: Optional[HotGraph] = None
    notes: List[str] = field(default_factory=list)

    @property
    def unknown_fields(self) -> List[FieldClass]:
        return [f for f in self.fields if f.classification == UNKNOWN]


def analyze_kernel(root: Path) -> KernelAnalysis:
    """Run both kernel halves over the package rooted at ``root``."""
    out = KernelAnalysis()
    index = PackageIndex.build(root)
    for relpath, error in index.parse_errors:
        out.notes.append(f"kernel: parse error in {relpath}: {error}")

    driver = find_driver(index)
    if driver is None:
        out.notes.append(
            "kernel: no per-cycle driver loop found "
            "(looked for run/tick/advance with a top-level loop); "
            "kernel analysis skipped"
        )
        return out
    root_cls, fn, loop = driver

    analyzer = EffectAnalyzer(index)
    graph, notes = build_hot_graph(index, analyzer)
    out.notes.extend(notes)
    out.graph = graph
    if graph is None:  # pragma: no cover - find_driver already succeeded
        return out
    out.findings = check_perf(graph)

    state, _root = extract_sweep_events(index, root_cls, fn, loop, analyzer)
    out.fields, edges = classify_fields(index, state)
    out.report = build_report(graph, out.fields, edges, out.findings)
    return out
