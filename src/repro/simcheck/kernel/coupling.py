"""Field classification: per-core / cross-core / global.

ROADMAP item 1 replaces the per-cycle interpreter loop with a batched
(struct-of-arrays) kernel.  What decides whether a field can move into
that kernel is *coupling*:

* **per_core** — every access during the sweep stays inside the owning
  replicated instance (``sim.cores[*].rob_occupancy``): iteration *i*
  touches only core *i*'s copy.  Safe to batch into one array op across
  cores.
* **cross_core** — the field carries information *between* core
  indices within a cycle: state on a replicated node accessed from
  outside its own sweep iteration, shared state read or written inside
  the per-core sweep, or a per-core-indexed container on a shared
  component (the PTB pledge/grant vectors, coherence directories, NoC
  credits).  These are the serialization points the rewrite must model
  explicitly.
* **global** — shared scalars touched only at the driver's top level
  (cycle counters, balancer epoch state).  Cheap either way.

The evidence is the same tick-ordered event stream the FLOW hazard pass
walks (:mod:`repro.simcheck.flow.hazards`), reusing its replicated
``[*]`` instance nodes and sweep-group tracking; classification is of
fields *written* during the sweep (read-only config is not state).
Anything owned by the observation plane (``telemetry/``, ``simcheck/``)
is excluded — the zero-cost guard contract makes it removable.

A field whose owning instance cannot be resolved to any class is
``unknown``; the CLI treats that as an analysis failure, keeping the
"every field classified" guarantee honest as the tree grows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..flow.effects import (
    EffectAnalyzer,
    Instance,
    MUTATORS,
    build_instance_graph,
)
from ..flow.hazards import (
    ROOT_KEY,
    TickEvent,
    _display,
    _per_instance,
    _replicated_root,
    _TickSink,
    _TickState,
    _TickWalker,
)
from ..flow.model import ClassInfo, PackageIndex
from .hotpath import is_observer_module

PER_CORE = "per_core"
CROSS_CORE = "cross_core"
GLOBAL = "global"
UNKNOWN = "unknown"


@dataclass
class FieldClass:
    """Classification of one state field written during the sweep."""

    key: str                   # display loc key ("controller._grants")
    owner: str                 # owning class name
    attr: str
    classification: str
    reason: str
    writers: List[str] = field(default_factory=list)
    readers: List[str] = field(default_factory=list)
    where: str = ""            # file:line of the first write


def extract_sweep_events(
    index: PackageIndex,
    root_cls: ClassInfo,
    driver_fn: ast.FunctionDef,
    loop: ast.stmt,
    analyzer: EffectAnalyzer,
) -> Tuple[_TickState, Instance]:
    """The flow pass's tick extraction, sharing the kernel's analyzer."""
    root = build_instance_graph(index, root_cls, ROOT_KEY)
    state = _TickState()
    sink = _TickSink(analyzer, state, f"{root_cls.name}.{driver_fn.name}")
    walker = _TickWalker(
        analyzer, root_cls.module, root, root_cls, root_cls, {}, sink,
        state=state,
    )
    sink.muted += 1
    for stmt in driver_fn.body:
        if stmt is loop:
            break
        walker.exec_stmt(stmt)
    for stmt in loop.body:
        walker.exec_stmt(stmt)
    sink.muted -= 1
    if isinstance(loop, ast.For):
        walker.bind_loop_target(loop.target, loop.iter)
    for stmt in loop.body:
        walker.exec_stmt(stmt)
    return state, root


def _is_observer_event(event: TickEvent) -> bool:
    instance = event.access.instance
    if instance.classes and all(
        is_observer_module(c.module) for c in instance.classes
    ):
        return True
    return event.access.file.startswith(("simcheck/", "telemetry/"))


def _self_attr(node: ast.expr, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _percore_container(
    index: PackageIndex, instance: Instance, attr: str
) -> Optional[str]:
    """Reason string when ``self.attr`` is structurally a per-core or
    mutated container on the owning class, else None.

    Signals, checked over the owning class's MRO:

    * ``self.attr[i]`` with a non-constant index — per-core-indexed;
    * ``self.attr = [x] * n`` / ``[... for _ in ...]`` — vector sized
      at construction (one slot per core);
    * a container-mutator call (``self.attr.append(...)``) — a queue or
      pipe carrying values between sweep positions.

    Subscripts and mutator calls are also recognised through simple
    local aliases (``grants = self._grants`` then ``grants[i] = ...``)
    — the exact idiom the PERF002 hoisting advice produces, which must
    not make a per-core vector look like a global scalar.
    """
    for cls in instance.classes:
        for owner in index.mro(cls):
            for fn in owner.methods.values():
                aliases: Set[str] = set()
                for node in ast.walk(fn):
                    if isinstance(node, ast.Assign) and (
                        _self_attr(node.value, attr)
                        or any(_self_attr(t, attr) for t in node.targets)
                    ):
                        aliases.update(
                            t.id for t in node.targets
                            if isinstance(t, ast.Name)
                        )

                def hits(value: ast.expr) -> bool:
                    return _self_attr(value, attr) or (
                        isinstance(value, ast.Name) and value.id in aliases
                    )

                for node in ast.walk(fn):
                    if isinstance(node, ast.Subscript) and hits(node.value):
                        if not isinstance(node.slice, ast.Constant):
                            return "indexed by a non-constant (core) index"
                    elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        if any(_self_attr(t, attr) for t in targets):
                            value = node.value
                            if isinstance(value, ast.BinOp) and isinstance(
                                value.op, ast.Mult
                            ) and (
                                isinstance(value.left, ast.List)
                                or isinstance(value.right, ast.List)
                            ):
                                return "vector sized at construction ([x] * n)"
                            if isinstance(value, ast.ListComp):
                                return "vector built per element at construction"
                    elif isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute
                    ):
                        if node.func.attr in MUTATORS and hits(
                            node.func.value
                        ):
                            return f"container mutated ({node.func.attr})"
    return None


def classify_fields(
    index: PackageIndex, state: _TickState
) -> Tuple[List[FieldClass], List[Dict[str, object]]]:
    """Classify every written field; return (fields, coupling edges)."""
    by_loc: Dict[str, List[TickEvent]] = {}
    for event in state.events:
        if _is_observer_event(event):
            continue
        by_loc.setdefault(event.access.loc_key, []).append(event)

    sweep_groups: Set[int] = {
        g for g, keys in state.group_iterates.items() if keys
    }

    fields: List[FieldClass] = []
    edges: List[Dict[str, object]] = []
    for loc_key in sorted(by_loc):
        events = by_loc[loc_key]
        writes = [e for e in events if e.kind == "w"]
        if not writes:
            continue
        reads = [e for e in events if e.kind == "r"]
        access = writes[0].access
        instance = access.instance
        owner = instance.display_class if instance.classes else "?"

        if not instance.classes:
            cls_kind, reason = UNKNOWN, "owning instance has no resolved class"
        elif _replicated_root(loc_key) is not None:
            if all(_per_instance(e, state) for e in events):
                cls_kind = PER_CORE
                reason = (
                    "replicated state; every sweep access stays on the "
                    "owning element"
                )
            else:
                cls_kind = CROSS_CORE
                reason = "replicated state accessed across element indices"
        elif any(e.group in sweep_groups for e in writes):
            cls_kind = CROSS_CORE
            reason = "shared state written inside the per-core sweep"
        else:
            container = _percore_container(index, instance, access.attr)
            if container is not None:
                cls_kind = CROSS_CORE
                reason = f"per-core container on shared {owner}: {container}"
            else:
                cls_kind = GLOBAL
                reason = f"scalar on shared {owner}, driver-level access only"

        record = FieldClass(
            key=_display(loc_key),
            owner=owner,
            attr=access.attr,
            classification=cls_kind,
            reason=reason,
            writers=sorted({e.label for e in writes}),
            readers=sorted({e.label for e in reads}),
            where=f"{access.file}:{access.line}",
        )
        fields.append(record)
        if cls_kind == CROSS_CORE:
            edges.append({
                "field": record.key,
                "writers": record.writers,
                "readers": record.readers,
            })
    return fields, edges
