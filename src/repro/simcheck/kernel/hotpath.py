"""Hot call-graph discovery rooted at the driver's per-cycle loop.

The PERF rules and the coupling report both need the same ground truth:
*which functions execute once (or more) per simulated cycle*.  The flow
pass already knows how to find the driver (:func:`~repro.simcheck.flow.
hazards.find_driver`) and how to resolve component method calls through
the aliasing instance graph; this module re-drives that machinery with a
sink that records **reachability** instead of effects.

The hot set starts at the driver's cycle-loop body (the prologue binds
aliases but is executed once per run, not per cycle) and follows every
resolvable component-method, property and module-function call
transitively.  The observation plane — anything defined under
``simcheck/`` or ``telemetry/`` — is excluded: the zero-cost guard
contract (PERF006) makes it removable, so it is not part of the cycle
kernel being rewritten.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..flow.effects import (
    AbstractVal,
    BodyWalker,
    EffectAnalyzer,
    EffectSet,
    EffectSink,
    Instance,
    _sig,
    build_instance_graph,
)
from ..flow.hazards import find_driver
from ..flow.model import ClassInfo, ModuleInfo, PackageIndex

#: Package-relative directory prefixes excluded from the hot set (the
#: observation plane: removable by the PERF006 zero-cost guard contract).
OBSERVER_PREFIXES = ("simcheck/", "telemetry/")


def is_observer_module(module: ModuleInfo) -> bool:
    return module.relpath.startswith(OBSERVER_PREFIXES)


@dataclass
class HotFunction:
    """One function reachable from the per-cycle sweep."""

    qualname: str                 # "Core.step" / "power.microarch.select_technique"
    module: ModuleInfo
    fn: ast.FunctionDef
    cls: Optional[ClassInfo]      # defining class; None for module functions
    is_driver: bool = False       # restrict rules to the cycle-loop body
    loop: Optional[ast.stmt] = None
    callees: Set[str] = field(default_factory=set)

    @property
    def relpath(self) -> str:
        return self.module.relpath


@dataclass
class HotGraph:
    """The hot call graph: driver + everything per-cycle-reachable."""

    driver: str
    root: Instance
    functions: Dict[str, HotFunction] = field(default_factory=dict)

    def sorted_functions(self) -> List[HotFunction]:
        return [self.functions[k] for k in sorted(self.functions)]


class _ReachSink(EffectSink):
    """Effect sink that records call edges into the graph builder.

    Effects themselves are discarded — the builder only wants to know
    *that* the call happens on the hot path, and through which classes
    it resolves.
    """

    def __init__(
        self, analyzer: EffectAnalyzer, builder: "_HotGraphBuilder",
        caller: str,
    ) -> None:
        super().__init__(analyzer, EffectSet())
        self.builder = builder
        self.caller = caller

    def call(
        self,
        instance: Instance,
        method: str,
        bindings: Dict[str, AbstractVal],
        node: ast.AST,
        concrete: Optional[ClassInfo] = None,
    ) -> None:
        if not self.muted:
            self.builder.on_call(self.caller, instance, method, bindings, concrete)

    def function(
        self,
        summary: EffectSet,
        node: ast.AST,
        module: Optional[ModuleInfo] = None,
        fn: Optional[ast.FunctionDef] = None,
        bindings: Optional[Dict[str, AbstractVal]] = None,
    ) -> None:
        if not self.muted and module is not None and fn is not None:
            self.builder.on_function(self.caller, module, fn, bindings or {})


class _HotGraphBuilder:
    def __init__(self, index: PackageIndex, analyzer: EffectAnalyzer) -> None:
        self.index = index
        self.analyzer = analyzer
        self.graph: Optional[HotGraph] = None
        self._seen: Set[Tuple] = set()
        self._queue: List[Tuple] = []

    # -- recording ----------------------------------------------------------

    def _edge(self, caller: str, callee: str) -> None:
        hot = self.graph.functions.get(caller)
        if hot is not None and callee != caller:
            hot.callees.add(callee)

    def on_call(
        self,
        caller: str,
        instance: Instance,
        method: str,
        bindings: Dict[str, AbstractVal],
        concrete: Optional[ClassInfo],
    ) -> None:
        candidates = [concrete] if concrete is not None else instance.classes
        for cls in candidates:
            resolved = self.index.resolve_method(cls, method)
            if resolved is None:
                continue
            defclass, fn = resolved
            if is_observer_module(defclass.module):
                continue
            qual = f"{defclass.name}.{method}"
            self._edge(caller, qual)
            self.graph.functions.setdefault(
                qual,
                HotFunction(qual, defclass.module, fn, defclass),
            )
            key = ("m", instance.key, cls.name, method, _sig(bindings))
            if key in self._seen:
                continue
            self._seen.add(key)
            self._queue.append(("m", qual, instance, cls, defclass, fn, bindings))

    def on_function(
        self,
        caller: str,
        module: ModuleInfo,
        fn: ast.FunctionDef,
        bindings: Dict[str, AbstractVal],
    ) -> None:
        if is_observer_module(module):
            return
        qual = f"{module.name}.{fn.name}"
        self._edge(caller, qual)
        self.graph.functions.setdefault(
            qual, HotFunction(qual, module, fn, None)
        )
        key = ("f", module.name, fn.name, _sig(bindings))
        if key in self._seen:
            return
        self._seen.add(key)
        self._queue.append(("f", qual, module, fn, bindings))

    # -- construction -------------------------------------------------------

    def build(
        self,
        root_cls: ClassInfo,
        driver_fn: ast.FunctionDef,
        loop: ast.stmt,
        root: Instance,
    ) -> HotGraph:
        driver_qual = f"{root_cls.name}.{driver_fn.name}"
        self.graph = HotGraph(driver=driver_qual, root=root)
        self.graph.functions[driver_qual] = HotFunction(
            driver_qual, root_cls.module, driver_fn, root_cls,
            is_driver=True, loop=loop,
        )
        sink = _ReachSink(self.analyzer, self, driver_qual)
        walker = BodyWalker(
            self.analyzer, root_cls.module, root, root_cls, root_cls, {}, sink
        )
        # Prologue (alias bindings) runs muted: once per run, not hot.
        sink.muted += 1
        for stmt in driver_fn.body:
            if stmt is loop:
                break
            walker.exec_stmt(stmt)
        # Prime loop-body bindings muted, then record the live pass.
        for stmt in loop.body:
            walker.exec_stmt(stmt)
        sink.muted -= 1
        if isinstance(loop, ast.For):
            walker.bind_loop_target(loop.target, loop.iter)
        for stmt in loop.body:
            walker.exec_stmt(stmt)
        self._drain()
        return self.graph

    def _drain(self) -> None:
        while self._queue:
            item = self._queue.pop(0)
            if item[0] == "m":
                _, qual, instance, cls, defclass, fn, bindings = item
                env = {k: v for k, v in bindings.items() if v is not None}
                walker = BodyWalker(
                    self.analyzer, defclass.module, instance, cls, defclass,
                    env, _ReachSink(self.analyzer, self, qual),
                )
            else:
                _, qual, module, fn, bindings = item
                env = {k: v for k, v in bindings.items() if v is not None}
                walker = BodyWalker(
                    self.analyzer, module, None, None, None, env,
                    _ReachSink(self.analyzer, self, qual),
                )
            walker.exec_body(fn.body)


def build_hot_graph(
    index: PackageIndex, analyzer: Optional[EffectAnalyzer] = None
) -> Tuple[Optional[HotGraph], List[str]]:
    """Discover the hot call graph: (graph or None, notes)."""
    notes: List[str] = []
    driver = find_driver(index)
    if driver is None:
        notes.append(
            "kernel: no per-cycle driver loop found "
            "(looked for run/tick/advance with a top-level loop)"
        )
        return None, notes
    root_cls, fn, loop = driver
    notes.append(
        f"kernel: driver {root_cls.name}.{fn.name} "
        f"({root_cls.module.relpath}:{fn.lineno})"
    )
    if analyzer is None:
        analyzer = EffectAnalyzer(index)
    root = build_instance_graph(index, root_cls)
    graph = _HotGraphBuilder(index, analyzer).build(root_cls, fn, loop, root)
    notes.append(f"kernel: {len(graph.functions)} hot function(s)")
    return graph, notes
