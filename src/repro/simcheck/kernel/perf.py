"""Hot-loop performance rules PERF001–PERF006.

Every rule runs over the functions the hot-graph builder proved
reachable from the driver's per-cycle sweep — code that executes once
(or once per core) per simulated cycle, millions of times per run.  At
that multiplier, interpreter-level waste the profiler attributes to "a
little bit of everything" adds up to the wall ROADMAP item 1 describes,
so the rules flag the classic CPython per-iteration costs:

* **PERF001** — container allocation per cycle: list/dict/set displays,
  comprehensions, and ``list()``/``dict()``-style constructor calls
  (tuples only when built per iteration of an inner loop from
  non-constant elements — constant tuples are folded by the compiler).
* **PERF002** — repeated attribute-chain loads (``self.cfg.dvfs.f_max``)
  that LOAD_ATTR once per use; hoist to a local before the loop.
* **PERF003** — per-cycle ``lambda``/closure creation (one fresh
  function object per cycle, usually a sort key).
* **PERF004** — string formatting on the hot path (f-strings, ``%``,
  ``.format``); error-path formatting inside ``raise``/``assert`` is
  exempt.
* **PERF005** — ``isinstance``/``getattr``/``hasattr``/``setattr``
  dispatch inside the sweep; resolve the polymorphism once at build
  time instead.
* **PERF006** — telemetry/sanitizer access not behind the established
  ``_telemetry = None`` / ``_sanitizer = None`` zero-cost guard
  contract (``if x is not None: x.emit(...)``) — unguarded observation
  taxes every cycle even with observation off.

Findings carry line-independent fingerprints
(``RULE|file|qualname|detail``) so ``--baseline`` survives unrelated
edits, and honour inline ``# simcheck: disable=PERF00x`` comments on
the flagged line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..lint import Finding, _parse_disables
from .hotpath import HotFunction, HotGraph

#: Constructor names whose call allocates a fresh container.
_ALLOC_CALLS = frozenset({
    "list", "dict", "set", "tuple", "frozenset", "deque", "bytearray",
    "defaultdict", "Counter", "OrderedDict",
})

#: Builtins whose call is dynamic dispatch / reflection.
_DISPATCH_CALLS = frozenset({"isinstance", "getattr", "hasattr", "setattr"})

#: Name fragments identifying the observation plane (PERF006).
_OBSERVER_FRAGMENTS = ("telemetry", "sanitiz", "tracer")


def _chain_text(expr: ast.expr) -> Optional[str]:
    """``self.cfg.dvfs`` -> "self.cfg.dvfs"; None for non-pure chains."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_observer_name(text: str) -> bool:
    lowered = text.lower()
    return any(frag in lowered for frag in _OBSERVER_FRAGMENTS)


def _snippet(node: ast.AST, limit: int = 48) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on real ASTs
        text = type(node).__name__
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 1] + "…"


class _Occurrence:
    __slots__ = ("node", "loop_id", "error_path", "guards")

    def __init__(
        self,
        node: ast.AST,
        loop_id: Optional[int],
        error_path: bool,
        guards: Tuple[str, ...],
    ) -> None:
        self.node = node
        self.loop_id = loop_id            # innermost enclosing loop, or None
        self.error_path = error_path      # inside raise/assert
        self.guards = guards              # chains proven non-None here


class _HotScan(ast.NodeVisitor):
    """One pass over a hot function collecting rule-relevant occurrences.

    Tracks the innermost enclosing loop (container allocations and
    1-segment chains only matter *per iteration*), whether we are on an
    error path, and which attribute chains the enclosing ``if`` tests
    proved non-None (the PERF006 guard contract).
    """

    def __init__(self, scan_stmts: List[ast.stmt]) -> None:
        self.allocs: List[_Occurrence] = []
        self.chains: List[Tuple[str, _Occurrence]] = []
        self.closures: List[_Occurrence] = []
        self.formats: List[_Occurrence] = []
        self.dispatch: List[Tuple[str, _Occurrence]] = []
        self.observers: List[Tuple[str, _Occurrence]] = []
        self._loops: List[int] = []
        self._next_loop = 0
        self._error_depth = 0
        self._guards: List[str] = []
        for stmt in scan_stmts:
            self.visit(stmt)

    # -- context helpers ----------------------------------------------------

    def _occ(self, node: ast.AST) -> _Occurrence:
        return _Occurrence(
            node,
            self._loops[-1] if self._loops else None,
            self._error_depth > 0,
            tuple(self._guards),
        )

    def _enter_loop(self) -> int:
        gid = self._next_loop
        self._next_loop += 1
        self._loops.append(gid)
        return gid

    # -- statements ---------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        # The iterable is evaluated once per loop, not per iteration.
        self.visit(node.iter)
        self._enter_loop()
        self.visit(node.target)
        for stmt in node.body:
            self.visit(stmt)
        self._loops.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:
        self._enter_loop()
        self.visit(node.test)
        for stmt in node.body:
            self.visit(stmt)
        self._loops.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Raise(self, node: ast.Raise) -> None:
        self._error_depth += 1
        self.generic_visit(node)
        self._error_depth -= 1

    def visit_Assert(self, node: ast.Assert) -> None:
        self._error_depth += 1
        self.generic_visit(node)
        self._error_depth -= 1

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        guards = self._guard_chains(node.test)
        self._guards.extend(guards)
        for stmt in node.body:
            self.visit(stmt)
        del self._guards[len(self._guards) - len(guards):]
        for stmt in node.orelse:
            self.visit(stmt)

    @staticmethod
    def _guard_chains(test: ast.expr) -> List[str]:
        """Chains proven non-None when ``test`` is true."""
        out: List[str] = []

        def collect(expr: ast.expr) -> None:
            if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
                for value in expr.values:
                    collect(value)
                return
            if (
                isinstance(expr, ast.Compare)
                and len(expr.ops) == 1
                and isinstance(expr.ops[0], ast.IsNot)
                and isinstance(expr.comparators[0], ast.Constant)
                and expr.comparators[0].value is None
            ):
                expr = expr.left
            chain = _chain_text(expr)
            if chain is not None:
                out.append(chain)

        collect(test)
        return out

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.closures.append(self._occ(node))
        # Nested-def bodies run when *called*; scanning them here would
        # double-count against the enclosing hot function.

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.closures.append(self._occ(node))

    # -- expressions --------------------------------------------------------

    def visit_List(self, node: ast.List) -> None:
        if isinstance(node.ctx, ast.Load):
            self.allocs.append(self._occ(node))
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self.allocs.append(self._occ(node))
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self.allocs.append(self._occ(node))
        self.generic_visit(node)

    def visit_Tuple(self, node: ast.Tuple) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and self._loops
            and node.elts
            and not all(isinstance(e, ast.Constant) for e in node.elts)
        ):
            self.allocs.append(self._occ(node))
        self.generic_visit(node)

    def _comp(self, node: ast.expr) -> None:
        self._enter_loop()
        self.allocs.append(self._occ(node))
        self.generic_visit(node)
        self._loops.pop()

    visit_ListComp = _comp
    visit_SetComp = _comp
    visit_DictComp = _comp
    visit_GeneratorExp = _comp

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        if any(isinstance(v, ast.FormattedValue) for v in node.values):
            self.formats.append(self._occ(node))
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Mod) and isinstance(node.left, ast.Constant) \
                and isinstance(node.left.value, str):
            self.formats.append(self._occ(node))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _ALLOC_CALLS:
                self.allocs.append(self._occ(node))
            elif func.id in _DISPATCH_CALLS:
                self.dispatch.append((func.id, self._occ(node)))
        elif isinstance(func, ast.Attribute):
            if func.attr == "format" and isinstance(func.value, ast.Constant) \
                    and isinstance(func.value.value, str):
                self.formats.append(self._occ(node))
            chain = _chain_text(func.value)
            if chain is not None and _is_observer_name(chain):
                self.observers.append((chain, self._occ(node)))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            chain = _chain_text(node)
            if chain is not None:
                self.chains.append((chain, self._occ(node)))
                # The chain covers its sub-chains; don't re-walk the base.
                for child in ast.walk(node):
                    if isinstance(child, (ast.Lambda, ast.Call)):
                        self.visit(child)
                return
        self.generic_visit(node)


def count_allocations(hot: HotFunction) -> int:
    """Raw PERF001 site count for the report (ignores disables/baseline)."""
    scan = _HotScan(_scan_stmts(hot))
    return len([o for o in scan.allocs if not o.error_path])


def _scan_stmts(hot: HotFunction) -> List[ast.stmt]:
    """The driver is hot only inside its cycle loop; others entirely."""
    if hot.is_driver and hot.loop is not None:
        return list(hot.loop.body)
    return list(hot.fn.body)


def _alloc_kind(node: ast.AST) -> str:
    return {
        ast.List: "list display", ast.Dict: "dict display",
        ast.Set: "set display", ast.Tuple: "tuple display",
        ast.ListComp: "list comprehension", ast.SetComp: "set comprehension",
        ast.DictComp: "dict comprehension",
        ast.GeneratorExp: "generator expression",
        ast.Call: "constructor call",
    }.get(type(node), "allocation")


def _finding(
    hot: HotFunction,
    node: ast.AST,
    rule_id: str,
    message: str,
    detail: str,
) -> Finding:
    return Finding(
        path=hot.relpath,
        line=getattr(node, "lineno", hot.fn.lineno),
        col=getattr(node, "col_offset", 0),
        rule_id=rule_id,
        message=f"[{hot.qualname}] {message}",
        fingerprint=f"{rule_id}|{hot.relpath}|{hot.qualname}|{detail}",
    )


def _check_function(hot: HotFunction) -> Iterator[Finding]:
    scan = _HotScan(_scan_stmts(hot))

    # PERF001 — identical sites merge on fingerprint; first site reported.
    seen_allocs: Dict[str, Tuple[ast.AST, int]] = {}
    for occ in scan.allocs:
        if occ.error_path:
            continue
        detail = f"{_alloc_kind(occ.node)}:{_snippet(occ.node)}"
        node, count = seen_allocs.get(detail, (occ.node, 0))
        seen_allocs[detail] = (node, count + 1)
    for detail, (node, count) in seen_allocs.items():
        times = f" ({count} sites)" if count > 1 else ""
        yield _finding(
            hot, node, "PERF001",
            f"{_alloc_kind(node)} `{_snippet(node)}` allocates every "
            f"cycle{times}; build once outside the sweep and reuse",
            detail,
        )

    # PERF002 — repeated attribute chains.
    by_chain: Dict[str, List[_Occurrence]] = {}
    for chain, occ in scan.chains:
        by_chain.setdefault(chain, []).append(occ)
    for chain, occs in by_chain.items():
        segments = chain.count(".")
        in_loop = [o for o in occs if o.loop_id is not None]
        if segments >= 2:
            hit = bool(in_loop) or len(occs) >= 2
        elif segments == 1:
            per_loop: Dict[int, int] = {}
            for o in in_loop:
                per_loop[o.loop_id] = per_loop.get(o.loop_id, 0) + 1
            hit = any(n >= 2 for n in per_loop.values())
        else:
            hit = False
        if not hit:
            continue
        site = min(occs, key=lambda o: getattr(o.node, "lineno", 0))
        yield _finding(
            hot, site.node, "PERF002",
            f"attribute chain `{chain}` is loaded {len(occs)} time(s) per "
            "cycle; hoist it to a local outside the sweep",
            chain,
        )

    # PERF003 — closures.
    for occ in scan.closures:
        kind = "lambda" if isinstance(occ.node, ast.Lambda) else \
            f"nested function `{occ.node.name}`"
        yield _finding(
            hot, occ.node, "PERF003",
            f"{kind} is created every cycle; define it once at module or "
            "construction scope",
            f"closure:{_snippet(occ.node)}",
        )

    # PERF004 — string formatting off the error path.
    for occ in scan.formats:
        if occ.error_path:
            continue
        yield _finding(
            hot, occ.node, "PERF004",
            f"string formatting `{_snippet(occ.node)}` runs every cycle; "
            "format lazily or off the hot path",
            f"format:{_snippet(occ.node)}",
        )

    # PERF005 — dynamic dispatch.
    for name, occ in scan.dispatch:
        yield _finding(
            hot, occ.node, "PERF005",
            f"`{name}` dispatch `{_snippet(occ.node)}` runs every cycle; "
            "resolve the polymorphism once at construction time",
            f"{name}:{_snippet(occ.node)}",
        )

    # PERF006 — unguarded observer calls.
    for chain, occ in scan.observers:
        if any(chain == g or chain.startswith(g + ".") for g in occ.guards):
            continue
        yield _finding(
            hot, occ.node, "PERF006",
            f"observer call `{_snippet(occ.node)}` is not behind the "
            f"zero-cost guard contract; wrap it in "
            f"`if {chain} is not None:` (see DESIGN §8)",
            f"observer:{chain}.{occ.node.func.attr}",
        )


def check_perf(graph: HotGraph) -> List[Finding]:
    """Run PERF001–PERF006 over every hot function, honouring inline
    ``# simcheck: disable=`` comments."""
    findings: List[Finding] = []
    disables: Dict[str, Dict[int, Set[str]]] = {}
    for hot in graph.sorted_functions():
        if hot.relpath not in disables:
            try:
                source = hot.module.path.read_text()
            except OSError:
                source = ""
            disables[hot.relpath] = _parse_disables(source)
        file_disables = disables[hot.relpath]
        for finding in _check_function(hot):
            rules = file_disables.get(finding.line, set())
            if finding.rule_id in rules or "ALL" in rules:
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return findings
