"""kernel-report.json construction and the human table view.

The report is the gating artifact for the SoA rewrite: a field may move
into the batched kernel only if it is listed here as ``per_core``, and
every ``cross_core`` entry is a serialization point the new kernel must
model explicitly.  Output is deterministic (sorted keys, sorted lists,
no timestamps) so two runs over the same tree produce identical bytes
and the file can live under version control or CI artifact diffing.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..lint import Finding
from .coupling import FieldClass
from .hotpath import HotGraph
from .perf import count_allocations

REPORT_VERSION = 1


def build_report(
    graph: HotGraph,
    fields: List[FieldClass],
    edges: List[Dict[str, object]],
    findings: List[Finding],
) -> Dict[str, object]:
    counts = {"per_core": 0, "cross_core": 0, "global": 0, "unknown": 0}
    for f in fields:
        counts[f.classification] = counts.get(f.classification, 0) + 1
    per_rule: Dict[str, int] = {}
    for finding in findings:
        per_rule[finding.rule_id] = per_rule.get(finding.rule_id, 0) + 1
    return {
        "version": REPORT_VERSION,
        "driver": graph.driver,
        "summary": {
            "hot_functions": len(graph.functions),
            "fields": counts,
            "perf_findings": dict(sorted(per_rule.items())),
        },
        "hot_functions": [
            {
                "qualname": hot.qualname,
                "file": hot.relpath,
                "line": hot.fn.lineno,
                "is_driver": hot.is_driver,
                "allocations": count_allocations(hot),
                "callees": sorted(hot.callees),
            }
            for hot in graph.sorted_functions()
        ],
        "fields": [
            {
                "field": f.key,
                "class": f.owner,
                "attr": f.attr,
                "classification": f.classification,
                "reason": f.reason,
                "writers": f.writers,
                "readers": f.readers,
                "where": f.where,
            }
            for f in fields
        ],
        "coupling_edges": edges,
    }


def render_json(report: Dict[str, object]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_table(report: Dict[str, object]) -> str:
    """Human view: field taxonomy first, then the hot-function ranking."""
    lines: List[str] = []
    summary = report["summary"]
    counts = summary["fields"]
    lines.append(f"driver: {report['driver']}")
    lines.append(
        f"hot functions: {summary['hot_functions']}   "
        f"fields: {counts['per_core']} per-core, "
        f"{counts['cross_core']} cross-core, "
        f"{counts['global']} global, {counts['unknown']} unknown"
    )
    lines.append("")

    rows = [
        (f["classification"], f["field"], f["reason"])
        for f in report["fields"]
    ]
    if rows:
        width_cls = max(len(r[0]) for r in rows)
        width_key = max(len(r[1]) for r in rows)
        header = (
            f"{'CLASS':<{width_cls}}  {'FIELD':<{width_key}}  REASON"
        )
        lines.append(header)
        lines.append("-" * len(header))
        order = {"cross_core": 0, "per_core": 1, "global": 2, "unknown": -1}
        for cls_kind, key, reason in sorted(
            rows, key=lambda r: (order.get(r[0], 3), r[1])
        ):
            lines.append(f"{cls_kind:<{width_cls}}  {key:<{width_key}}  {reason}")
        lines.append("")

    hot = sorted(
        report["hot_functions"],
        key=lambda h: (-h["allocations"], h["qualname"]),
    )
    if hot:
        width = max(len(h["qualname"]) for h in hot)
        lines.append(f"{'HOT FUNCTION':<{width}}  ALLOC/CYCLE  FILE")
        for h in hot:
            marker = " (driver loop)" if h["is_driver"] else ""
            lines.append(
                f"{h['qualname']:<{width}}  {h['allocations']:>11}  "
                f"{h['file']}:{h['line']}{marker}"
            )
    return "\n".join(lines) + "\n"
