"""The simcheck lint engine (stdlib ``ast`` only).

A *rule* is a class with a ``rule_id`` (``SIMxxx``), a one-line
``description`` and a ``check(ctx)`` generator yielding
:class:`Finding` objects.  Rules register themselves in a module-level
registry via :func:`register_rule`, so downstream code (and tests) can
add rules without touching the engine.

Suppression: a finding on line ``L`` is dropped when line ``L`` (or the
line of the enclosing statement) carries an inline marker::

    something_flagged()  # simcheck: disable=SIM002
    other_thing()        # simcheck: disable=SIM001,SIM005
    anything_at_all()    # simcheck: disable=all

The engine knows nothing about the simulator; simulator-specific
knowledge (which directories are cycle-stepped, what the ``Config``
dataclasses look like) lives in :class:`FileContext` /
:class:`ConfigModel` and is consumed by the rules in
:mod:`repro.simcheck.rules`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

#: Directories (relative to the linted package root) whose code runs
#: inside the lock-stepped cycle loop.  SIM001 only applies there.
CYCLE_STEPPED_DIRS = ("core", "sim", "noc", "budget")

_DISABLE_RE = re.compile(r"#\s*simcheck:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One lint finding, renderable as ``path:line:col: RULE message``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: Line-independent identity used by the flow baseline (lint findings
    #: get one derived from rule + path + message when exported as JSON).
    fingerprint: Optional[str] = None

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def identity(self) -> str:
        """Stable fingerprint (explicit, else rule|path|message)."""
        return self.fingerprint or f"{self.rule_id}|{self.path}|{self.message}"


# --------------------------------------------------------------------------- #
# Config model (for SIM006)                                                   #
# --------------------------------------------------------------------------- #


@dataclass
class ConfigModel:
    """What the linter knows about the ``Config`` dataclasses.

    Extracted purely from the AST of ``config.py`` — fields, properties
    and methods per dataclass, plus the annotated type of each field so
    attribute chains like ``cfg.mem.l1d.offset_bits`` can be resolved.
    """

    #: class name -> set of legal attribute names (fields + methods).
    attrs: Dict[str, Set[str]] = field(default_factory=dict)
    #: class name -> {field name -> annotated config-class name or None}.
    field_types: Dict[str, Dict[str, Optional[str]]] = field(default_factory=dict)

    def is_config_class(self, name: str) -> bool:
        return name in self.attrs

    def has_attr(self, cls: str, attr: str) -> bool:
        return attr in self.attrs.get(cls, ())

    def attr_type(self, cls: str, attr: str) -> Optional[str]:
        """The config-class type of ``cls.attr``, or None if not a config."""
        t = self.field_types.get(cls, {}).get(attr)
        return t if t in self.attrs else None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_source(cls, source: str) -> "ConfigModel":
        model = cls()
        tree = ast.parse(source)
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not _has_dataclass_decorator(node):
                continue
            attrs: Set[str] = set()
            ftypes: Dict[str, Optional[str]] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    name = stmt.target.id
                    attrs.add(name)
                    ftypes[name] = _annotation_name(stmt.annotation)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    attrs.add(stmt.name)
            model.attrs[node.name] = attrs
            model.field_types[node.name] = ftypes
        return model

    @classmethod
    def from_path(cls, path: Path) -> "ConfigModel":
        return cls.from_source(path.read_text())


def _has_dataclass_decorator(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _annotation_name(node: ast.expr) -> Optional[str]:
    """Bare class name of an annotation (``CoreConfig``), else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the head identifier.
        head = node.value.split("[", 1)[0].strip()
        return head if head.isidentifier() else None
    return None


# --------------------------------------------------------------------------- #
# File context                                                                #
# --------------------------------------------------------------------------- #


@dataclass
class FileContext:
    """Everything a rule needs to know about one file under lint."""

    path: str
    source: str
    tree: ast.AST
    #: line -> rule ids disabled on that line ("ALL" disables everything).
    disabled: Dict[int, Set[str]]
    #: True when the file lives in a cycle-stepped directory.
    cycle_stepped: bool
    #: Model of the Config dataclasses (None = SIM006 cannot run).
    config_model: Optional[ConfigModel] = None

    def is_disabled(self, line: int, rule_id: str) -> bool:
        rules = self.disabled.get(line)
        if not rules:
            return False
        return "ALL" in rules or rule_id in rules


def _parse_disables(source: str) -> Dict[int, Set[str]]:
    disabled: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _DISABLE_RE.search(text)
        if m is None:
            continue
        ids = {part.strip().upper() for part in m.group(1).split(",") if part.strip()}
        disabled[lineno] = ids
    return disabled


def _is_cycle_stepped(path: Path, package_roots: Sequence[Path]) -> bool:
    resolved = path.resolve()
    for root in package_roots:
        try:
            rel = resolved.relative_to(root.resolve())
        except ValueError:
            continue
        return bool(rel.parts) and rel.parts[0] in CYCLE_STEPPED_DIRS
    # No package root claims the file (standalone snippets, files linted
    # outside a repro checkout): fall back to matching any path component
    # so ``core/foo.py`` still gets the determinism rules.
    return any(part in CYCLE_STEPPED_DIRS for part in resolved.parts[:-1])


# --------------------------------------------------------------------------- #
# Rule registry                                                               #
# --------------------------------------------------------------------------- #


class LintRule:
    """Base class for simcheck lint rules."""

    rule_id: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def iter_rules() -> List[Type[LintRule]]:
    """All registered rules, sorted by rule id."""
    # Import for the side effect of registering the built-in rules.
    from . import rules as _rules  # noqa: F401

    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def _select_rules(
    enable: Optional[Iterable[str]] = None,
    disable: Optional[Iterable[str]] = None,
) -> List[LintRule]:
    enabled = {r.upper() for r in enable} if enable else None
    disabled = {r.upper() for r in disable} if disable else set()
    selected = []
    for cls in iter_rules():
        if enabled is not None and cls.rule_id not in enabled:
            continue
        if cls.rule_id in disabled:
            continue
        selected.append(cls())
    return selected


# --------------------------------------------------------------------------- #
# Entry points                                                                #
# --------------------------------------------------------------------------- #


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    cycle_stepped: bool = True,
    config_model: Optional[ConfigModel] = None,
    enable: Optional[Iterable[str]] = None,
    disable: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string.  The workhorse behind :func:`lint_paths`."""
    tree = ast.parse(source, filename=path)
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        disabled=_parse_disables(source),
        cycle_stepped=cycle_stepped,
        config_model=config_model,
    )
    findings: List[Finding] = []
    for rule in _select_rules(enable, disable):
        for f in rule.check(ctx):
            if not ctx.is_disabled(f.line, f.rule_id):
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def _find_package_roots(paths: Sequence[Path]) -> List[Path]:
    """Directories that look like the ``repro`` package root.

    The root is where ``config.py`` lives; cycle-stepped directories are
    resolved relative to it.
    """
    roots = []
    for p in paths:
        base = p if p.is_dir() else p.parent
        probe = base
        for _ in range(6):
            if (probe / "config.py").is_file():
                roots.append(probe)
                break
            if probe.parent == probe:
                break
            probe = probe.parent
    return roots


def lint_paths(
    paths: Sequence[str],
    *,
    enable: Optional[Iterable[str]] = None,
    disable: Optional[Iterable[str]] = None,
    config_path: Optional[str] = None,
) -> List[Finding]:
    """Lint files and directory trees; returns all findings, sorted."""
    targets: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            targets.extend(sorted(p.rglob("*.py")))
        else:
            targets.append(p)

    roots = _find_package_roots([Path(p) for p in paths])
    model: Optional[ConfigModel] = None
    if config_path is not None:
        model = ConfigModel.from_path(Path(config_path))
    elif roots:
        model = ConfigModel.from_path(roots[0] / "config.py")

    findings: List[Finding] = []
    for target in targets:
        source = target.read_text()
        findings.extend(
            lint_source(
                source,
                path=str(target),
                cycle_stepped=_is_cycle_stepped(target, roots),
                config_model=model,
                enable=enable,
                disable=disable,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
