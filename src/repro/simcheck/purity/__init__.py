"""``repro.simcheck.purity`` — cache-key soundness + worker purity.

The fourth simcheck pass.  ``lint`` checks local idioms, ``flow``
checks tick-order soundness, ``kernel`` maps the per-cycle cost — and
``purity`` proves the result cache can be trusted: ROADMAP item 2's
simulation service coalesces tenants on the disk-cache key and item 4's
perf CI compares cached cells, so a key that silently misses an input
turns into cross-tenant result corruption, not just a stale file.

Five rules over one shared discovery (:mod:`.cachekey` finds the cache
module, recipe/config/result classes and worker entry points):

* **KEY001** — a result-affecting input (recipe field, simulate
  parameter, config field tree, or runtime-mutated module global) that
  never reaches ``_cache_key``.
* **KEY002** — a key component whose ``repr`` is not process-stable
  (sets, ``hash()``, ``id()``, default object reprs).
* **PURE001** — worker-reachable code writes module-global mutable
  state (:mod:`.workers`; process-pool residency hazard).
* **PURE002** — worker-reachable reads of ``os.environ``, the wall
  clock, or unseeded randomness outside the key.
* **PURE003** — set-typed fields in the pickled result payload
  (:mod:`.payload`; byte-identity across workers).

Like the other passes: findings carry line-independent fingerprints,
honour inline ``# simcheck: disable=RULE`` comments, and gate through a
justified baseline (``.simcheck-purity-baseline.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from ..flow.model import PackageIndex
from ..lint import Finding, _parse_disables
from .cachekey import CacheModel, check_cache_key, find_cache_model
from .payload import check_payload
from .report import build_report, render_table
from .workers import check_workers

__all__ = [
    "PurityAnalysis",
    "analyze_purity",
    "build_report",
    "render_table",
    "find_cache_model",
    "check_cache_key",
    "check_workers",
    "check_payload",
]


@dataclass
class PurityAnalysis:
    """Everything one purity run produces."""

    findings: List[Finding] = field(default_factory=list)
    model: Optional[CacheModel] = None
    report: Optional[Dict[str, object]] = None
    notes: List[str] = field(default_factory=list)


def _apply_disables(root: Path, findings: List[Finding]) -> List[Finding]:
    """Honour inline ``# simcheck: disable=RULE`` comments."""
    disables: Dict[str, Dict[int, Set[str]]] = {}
    out: List[Finding] = []
    for finding in findings:
        if finding.path not in disables:
            try:
                source = (root / finding.path).read_text()
            except OSError:
                source = ""
            disables[finding.path] = _parse_disables(source)
        rules = disables[finding.path].get(finding.line, set())
        if finding.rule_id in rules or "ALL" in rules:
            continue
        out.append(finding)
    return out


def analyze_purity(root: Path) -> PurityAnalysis:
    """Run the purity pass over the package rooted at ``root``."""
    out = PurityAnalysis()
    index = PackageIndex.build(root)
    for relpath, error in index.parse_errors:
        out.notes.append(f"purity: parse error in {relpath}: {error}")

    model, notes = find_cache_model(index)
    out.notes.extend(notes)
    out.model = model
    if model is None:
        return out

    key_findings, key_report = check_cache_key(index, model)
    worker_findings, wnotes, worker_report = check_workers(index, model)
    out.notes.extend(wnotes)
    payload_findings = check_payload(index, model.result_cls)

    findings = key_findings + worker_findings + payload_findings
    findings = _apply_disables(root, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    out.findings = findings
    out.report = build_report(model, key_report, worker_report, findings)
    return out
