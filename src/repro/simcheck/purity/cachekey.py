"""Cache-key soundness analysis (KEY001/KEY002).

The experiment runner memoises ``SimResult`` pickles on disk, keyed by
``_cache_key``.  The service layer (ROADMAP item 2) coalesces tenants
on that key and the perf CI (item 4) trusts cached cells, so the key
must be *complete*: every input that can change a cached result must
change the key.  This module proves that statically:

* **Discovery** — find the cache module (the one defining
  ``_cache_key``), the simulate entry (``_simulate``), the ``Recipe``
  class (first-parameter annotation), the configuration dataclass
  constructed on the simulate path, and the result class (return
  annotation).
* **Key coverage** — symbolically evaluate ``_cache_key`` (following
  same-module helper calls) into the set of *input atoms* the key
  depends on: ``recipe:<field>``, ``param:<name>`` and ``config:*``
  (the latter when any key component serialises a whole fully-resolved
  config object via ``repr``/``str``/``astuple``/``asdict``).
* **KEY001** — a result-affecting input (a ``Recipe`` field, a
  simulate parameter, or a config field tree) with no covering atom.
  A config leaf set directly from a covered recipe field in the
  constructor call (``Config(num_cores=recipe.cores)``) counts as
  covered without a digest.
* **KEY002** — a key component whose ``repr`` is not process-stable:
  set displays (hash-iteration order), ``hash()`` (``PYTHONHASHSEED``),
  ``id()`` (addresses), or instances of classes with neither a
  ``__repr__`` nor dataclass/NamedTuple auto-repr.

Everything is a *may* analysis over the flow pass's
:class:`~repro.simcheck.flow.model.PackageIndex`; unresolvable shapes
degrade to "not covered" for KEY001 (fail loud) and "not provably
unstable" for KEY002 (fail quiet).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lint import Finding, _has_dataclass_decorator
from ..flow.model import ClassInfo, ModuleInfo, PackageIndex, annotation_heads

#: Function names recognised as the cache-key builder / simulate entry /
#: process-pool worker, in preference order.
KEY_FN_NAMES = ("_cache_key", "cache_key")
SIMULATE_NAMES = ("_simulate", "simulate")
WORKER_NAMES = ("_worker", "worker", "_simulate", "simulate")

#: Builtins/helpers that serialise an object's full field tree into the
#: key (dataclass ``repr`` is canonical and recursive).
SERIALIZERS = frozenset({"repr", "str", "astuple", "asdict", "format"})

#: Intra-module helper-call recursion bound for the key evaluator.
MAX_KEY_DEPTH = 6


@dataclass
class CacheModel:
    """Everything discovery learned about the cache under analysis."""

    module: ModuleInfo
    key_fn: ast.FunctionDef
    simulate_fn: Optional[ast.FunctionDef] = None
    worker_fns: List[ast.FunctionDef] = field(default_factory=list)
    recipe_cls: Optional[ClassInfo] = None
    config_cls: Optional[ClassInfo] = None
    result_cls: Optional[ClassInfo] = None

    @property
    def relpath(self) -> str:
        return self.module.relpath


def find_cache_model(
    index: PackageIndex,
) -> Tuple[Optional[CacheModel], List[str]]:
    """Locate the cache module and its cast of characters."""
    notes: List[str] = []
    module = key_fn = None
    for name in KEY_FN_NAMES:
        for mod in index.modules.values():
            fn = mod.functions.get(name)
            if fn is not None:
                module, key_fn = mod, fn
                break
        if key_fn is not None:
            break
    if key_fn is None:
        notes.append(
            "purity: no cache-key builder found "
            f"(looked for {'/'.join(KEY_FN_NAMES)}); nothing to analyze"
        )
        return None, notes
    model = CacheModel(module=module, key_fn=key_fn)
    notes.append(
        f"purity: cache key {key_fn.name} ({module.relpath}:{key_fn.lineno})"
    )

    for name in SIMULATE_NAMES:
        fn = module.functions.get(name)
        if fn is not None:
            model.simulate_fn = fn
            break
    seen: Set[str] = set()
    for name in WORKER_NAMES:
        fn = module.functions.get(name)
        if fn is not None and fn.name not in seen:
            seen.add(fn.name)
            model.worker_fns.append(fn)

    model.recipe_cls = _recipe_class(index, model)
    if model.recipe_cls is not None:
        notes.append(
            f"purity: recipe class {model.recipe_cls.name} "
            f"({len(recipe_fields(model.recipe_cls))} fields)"
        )
    model.config_cls = _config_class(index, model)
    if model.config_cls is not None:
        notes.append(
            f"purity: config class {model.config_cls.name} "
            f"({len(config_leaves(index, model.config_cls))} leaves)"
        )
    if model.simulate_fn is not None:
        heads = [
            h for h in annotation_heads(model.simulate_fn.returns)
            if h in index.classes
        ]
        if heads:
            model.result_cls = index.classes[heads[0]]
            notes.append(f"purity: result class {model.result_cls.name}")
    return model, notes


def _recipe_class(
    index: PackageIndex, model: CacheModel
) -> Optional[ClassInfo]:
    for fn in (model.key_fn, model.simulate_fn):
        if fn is None or not fn.args.args:
            continue
        for head in annotation_heads(fn.args.args[0].annotation):
            cls = index.classes.get(head)
            if cls is not None:
                return cls
    return model.module.classes.get("Recipe")


def _config_class(
    index: PackageIndex, model: CacheModel
) -> Optional[ClassInfo]:
    """The config dataclass constructed on the simulate path (if any).

    Searches the intra-module call closure of the simulate entry for a
    constructor call of an index dataclass; with several candidates the
    one with the most leaves wins (the root of the config tree).
    """
    if model.simulate_fn is None:
        return None
    best: Optional[Tuple[int, ClassInfo]] = None
    for fn in _module_closure(model.module, model.simulate_fn):
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
                continue
            cls = index.classes.get(node.func.id)
            if cls is None or not _has_dataclass_decorator(cls.node):
                continue
            n = len(config_leaves(index, cls))
            if best is None or n > best[0]:
                best = (n, cls)
    return best[1] if best else None


def _module_closure(
    module: ModuleInfo, fn: ast.FunctionDef, depth: int = MAX_KEY_DEPTH
) -> List[ast.FunctionDef]:
    """``fn`` plus same-module functions transitively called from it."""
    out: List[ast.FunctionDef] = []
    seen: Set[str] = set()
    queue = [(fn, 0)]
    while queue:
        cur, d = queue.pop(0)
        if cur.name in seen:
            continue
        seen.add(cur.name)
        out.append(cur)
        if d >= depth:
            continue
        for node in ast.walk(cur):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                callee = module.functions.get(node.func.id)
                if callee is not None:
                    queue.append((callee, d + 1))
    return out


def recipe_fields(cls: ClassInfo) -> List[str]:
    """Annotated field names of a Recipe NamedTuple/dataclass, in order."""
    out: List[str] = []
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            out.append(stmt.target.id)
    return out


def config_leaves(
    index: PackageIndex,
    cls: ClassInfo,
    prefix: str = "",
    depth: int = 0,
    seen: Optional[Set[str]] = None,
) -> List[str]:
    """Dotted leaf-field paths of a config dataclass tree."""
    seen = seen or {cls.name}
    leaves: List[str] = []
    for stmt in cls.node.body:
        if not (
            isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
        ):
            continue
        name = stmt.target.id
        sub = None
        for head in annotation_heads(stmt.annotation):
            cand = index.classes.get(head)
            if cand is not None and _has_dataclass_decorator(cand.node):
                sub = cand
                break
        if sub is not None and depth < 4 and sub.name not in seen:
            leaves.extend(
                config_leaves(
                    index, sub, f"{prefix}{name}.", depth + 1, seen | {sub.name}
                )
            )
        else:
            leaves.append(prefix + name)
    return leaves


def config_top_fields(cls: ClassInfo) -> List[str]:
    return recipe_fields(cls)  # same shape: annotated class-body fields


# --------------------------------------------------------------------------- #
# Symbolic key evaluation                                                     #
# --------------------------------------------------------------------------- #


class _RecipeVal:
    """The recipe parameter (or the whole tuple spread into the key)."""


class _ConfigVal:
    def __init__(self, cls: ClassInfo) -> None:
        self.cls = cls


class _ParamVal:
    def __init__(self, name: str) -> None:
        self.name = name


class _KeyEval:
    """Collects the input atoms a key expression depends on.

    Atoms: ``recipe:<field>``, ``recipe:*``, ``param:<name>``,
    ``config:*`` (whole-config serialisation), ``config:<path>``
    (attribute chain into the config) and ``global:<name>`` (module
    constants such as ``CACHE_VERSION`` — informational).
    """

    def __init__(self, index: PackageIndex, module: ModuleInfo) -> None:
        self.index = index
        self.module = module
        self.atoms: Set[str] = set()

    def eval_function(
        self, fn: ast.FunctionDef, env: Dict[str, object], depth: int = 0
    ) -> object:
        """Evaluate a function body; return the symbolic return value."""
        ret: object = None
        for stmt in fn.body:
            ret = self._exec(stmt, env, depth) or ret
        return ret

    def _exec(self, stmt: ast.stmt, env: Dict[str, object], depth: int):
        if isinstance(stmt, ast.Return):
            return self.eval(stmt.value, env, depth)
        if isinstance(stmt, ast.Assign):
            val = self.eval(stmt.value, env, depth)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = val
            return None
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            val = self.eval(stmt.value, env, depth)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = val
            return None
        if isinstance(stmt, ast.If):
            self.eval(stmt.test, env, depth)
            ret = None
            for branch in (stmt.body, stmt.orelse):
                for sub in branch:
                    ret = self._exec(sub, env, depth) or ret
            return ret
        if isinstance(stmt, (ast.Expr,)):
            self.eval(stmt.value, env, depth)
        return None

    def eval(
        self, expr: Optional[ast.expr], env: Dict[str, object], depth: int
    ) -> object:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id in env:
                val = env[expr.id]
                if isinstance(val, _ParamVal):
                    self.atoms.add(f"param:{val.name}")
                elif isinstance(val, _RecipeVal):
                    # Bare recipe in the key: the whole tuple is keyed.
                    self.atoms.add("recipe:*")
                elif isinstance(val, _ConfigVal):
                    # A raw dataclass in the key is repr()'d by the
                    # entry-path hash: full coverage.
                    self.atoms.add("config:*")
                return val
            self.atoms.add(f"global:{expr.id}")
            return None
        if isinstance(expr, ast.Attribute):
            return self._attr(expr, env, depth)
        if isinstance(expr, ast.Call):
            return self._call(expr, env, depth)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env, depth)
        if isinstance(expr, ast.Constant):
            return None
        # Tuples, f-strings, subscripts, binops...: union of children.
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.eval(child, env, depth)
        return None

    def _attr(self, expr: ast.Attribute, env: Dict[str, object], depth: int):
        base = expr.value
        if isinstance(base, ast.Name) and isinstance(env.get(base.id), _RecipeVal):
            self.atoms.add(f"recipe:{expr.attr}")
            return None
        if isinstance(base, ast.Name) and isinstance(env.get(base.id), _ConfigVal):
            self.atoms.add(f"config:{expr.attr}")
            return None
        if isinstance(base, ast.Attribute):
            # cfg.a.b — record the top config path segment.
            inner = base.value
            if isinstance(inner, ast.Name) and isinstance(
                env.get(inner.id), _ConfigVal
            ):
                self.atoms.add(f"config:{base.attr}.{expr.attr}")
                return None
        self.eval(base, env, depth)
        return None

    def _call(self, call: ast.Call, env: Dict[str, object], depth: int):
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            cls = self.index.classes.get(name)
            if cls is not None and _has_dataclass_decorator(cls.node):
                self._eval_args(call, env, depth)
                return _ConfigVal(cls)
            if name in SERIALIZERS:
                return self._serialize_args(call, env, depth)
            callee = self.module.functions.get(name)
            if callee is not None and depth < MAX_KEY_DEPTH:
                sub_env = self._bind(callee, call, env, depth)
                return self.eval_function(callee, sub_env, depth + 1)
            self._eval_args(call, env, depth)
            return None
        if isinstance(func, ast.Attribute):
            recv = self.eval(func.value, env, depth)
            if isinstance(recv, _ConfigVal):
                # Method on a config object (with_ptb, replace-style):
                # treat the result as still being the config, keeping
                # argument atoms (they are folded into the object).
                self._eval_args(call, env, depth)
                return recv
            if func.attr in SERIALIZERS:
                return self._serialize_args(call, env, depth)
            self._eval_args(call, env, depth)
            return None
        self.eval(func, env, depth)
        self._eval_args(call, env, depth)
        return None

    def _serialize_args(self, call: ast.Call, env: Dict[str, object], depth: int):
        """repr()/str()/astuple()-style call: whole-object coverage."""
        for arg in call.args:
            val = self.eval(arg, env, depth)
            if isinstance(val, _ConfigVal):
                self.atoms.add("config:*")
            elif isinstance(val, _RecipeVal):
                self.atoms.add("recipe:*")
        for kw in call.keywords:
            self.eval(kw.value, env, depth)
        return None

    def _eval_args(self, call: ast.Call, env: Dict[str, object], depth: int):
        for arg in call.args:
            self.eval(arg, env, depth)
        for kw in call.keywords:
            self.eval(kw.value, env, depth)

    def _bind(
        self,
        callee: ast.FunctionDef,
        call: ast.Call,
        env: Dict[str, object],
        depth: int,
    ) -> Dict[str, object]:
        params = [a.arg for a in callee.args.args]
        out: Dict[str, object] = {}
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or i >= len(params):
                self.eval(arg, env, depth)
                continue
            val = self.eval(arg, env, depth) if not isinstance(
                arg, (ast.Name, ast.Attribute)
            ) else self._peek(arg, env)
            if val is not None:
                out[params[i]] = val
        for kw in call.keywords:
            val = self._peek(kw.value, env) if isinstance(
                kw.value, (ast.Name, ast.Attribute)
            ) else self.eval(kw.value, env, depth)
            if kw.arg is not None and val is not None:
                out[kw.arg] = val
        return out

    def _peek(self, expr: ast.expr, env: Dict[str, object]) -> object:
        """Resolve an argument to a symbolic value without atom noise.

        Passing ``recipe`` into a helper is not itself coverage — only
        what the helper *does* with it is — so simple name/attr args
        bind silently.
        """
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        return None


# --------------------------------------------------------------------------- #
# KEY001 / KEY002                                                             #
# --------------------------------------------------------------------------- #


def _fn_param_names(fn: Optional[ast.FunctionDef]) -> List[str]:
    if fn is None:
        return []
    return [a.arg for a in list(fn.args.args) + list(fn.args.kwonlyargs)]


def _constructor_kwargs(
    index: PackageIndex, model: CacheModel
) -> Dict[str, str]:
    """config top-level field -> recipe field it is set from directly.

    Recognises ``Config(num_cores=recipe.cores)`` in the simulate
    closure, where ``recipe`` is the enclosing function's first
    parameter.  Anything subtler needs whole-config coverage.
    """
    out: Dict[str, str] = {}
    if model.simulate_fn is None or model.config_cls is None:
        return out
    for fn in _module_closure(model.module, model.simulate_fn):
        params = _fn_param_names(fn)
        recipe_param = params[0] if params else None
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == model.config_cls.name
            ):
                continue
            for kw in node.keywords:
                if (
                    kw.arg is not None
                    and isinstance(kw.value, ast.Attribute)
                    and isinstance(kw.value.value, ast.Name)
                    and kw.value.value.id == recipe_param
                ):
                    out[kw.arg] = kw.value.attr
    return out


def check_cache_key(
    index: PackageIndex, model: CacheModel
) -> Tuple[List[Finding], Dict[str, object]]:
    """Run KEY001/KEY002; return (findings, coverage report fragment)."""
    findings: List[Finding] = []
    key_fn = model.key_fn
    key_params = _fn_param_names(key_fn)

    ev = _KeyEval(index, model.module)
    env: Dict[str, object] = {}
    for i, name in enumerate(key_params):
        env[name] = _RecipeVal() if i == 0 and model.recipe_cls else _ParamVal(name)
    ev.eval_function(key_fn, env)
    atoms = ev.atoms

    def finding(rule: str, message: str, fingerprint: str, line: int) -> None:
        findings.append(
            Finding(
                path=model.relpath, line=line, col=0,
                rule_id=rule, message=message, fingerprint=fingerprint,
            )
        )

    # -- KEY001: recipe fields ------------------------------------------------
    fields = recipe_fields(model.recipe_cls) if model.recipe_cls else []
    missing_recipe = [
        f for f in fields
        if "recipe:*" not in atoms and f"recipe:{f}" not in atoms
    ]
    for f in missing_recipe:
        finding(
            "KEY001",
            f"{model.recipe_cls.name} field '{f}' parameterises the cached "
            f"simulation but never reaches {key_fn.name}; two different "
            "recipes can alias one cache entry",
            f"KEY001|recipe:{f}",
            key_fn.lineno,
        )

    # -- KEY001: simulate parameters -----------------------------------------
    sim_params = _fn_param_names(model.simulate_fn)
    missing_params: List[str] = []
    for p in sim_params[1:]:
        if p not in key_params:
            missing_params.append(p)
            finding(
                "KEY001",
                f"input '{p}' of {model.simulate_fn.name} is not a "
                f"parameter of {key_fn.name}; results depend on it but the "
                "key cannot",
                f"KEY001|param:{p}",
                key_fn.lineno,
            )
        elif f"param:{p}" not in atoms:
            missing_params.append(p)
            finding(
                "KEY001",
                f"'{p}' is accepted by {key_fn.name} but never used in the "
                "key it returns",
                f"KEY001|param:{p}",
                key_fn.lineno,
            )

    # -- KEY001: config field trees ------------------------------------------
    config_covered_by_digest = "config:*" in atoms
    missing_config: List[str] = []
    if model.config_cls is not None:
        ctor = _constructor_kwargs(index, model)
        covered_recipe = {
            f for f in fields
            if "recipe:*" in atoms or f"recipe:{f}" in atoms
        }
        for top in config_top_fields(model.config_cls):
            if config_covered_by_digest or f"config:{top}" in atoms:
                continue
            top_leaves = [
                leaf for leaf in config_leaves(index, model.config_cls)
                if leaf == top or leaf.startswith(top + ".")
            ]
            uncovered = [
                leaf for leaf in top_leaves
                if f"config:{leaf}" not in atoms
                and not (
                    leaf == top
                    and ctor.get(top) in covered_recipe
                )
            ]
            if not uncovered:
                continue
            missing_config.append(top)
            preview = ", ".join(uncovered[:4])
            if len(uncovered) > 4:
                preview += ", ..."
            finding(
                "KEY001",
                f"{model.config_cls.name} field '{top}' "
                f"({len(uncovered)} uncovered leaf/leaves: {preview}) flows "
                f"into cached results but is not captured by {key_fn.name}; "
                "fold a digest of the fully-resolved config into the key",
                f"KEY001|config:{top}",
                key_fn.lineno,
            )

    # -- KEY002: process-stable repr of key components -----------------------
    findings.extend(_check_key_stability(index, model))

    report = {
        "module": model.relpath,
        "key_fn": key_fn.name,
        "recipe": {
            "class": model.recipe_cls.name if model.recipe_cls else None,
            "fields": len(fields),
            "missing": missing_recipe,
        },
        "params": {
            "simulate": sim_params[1:],
            "missing": missing_params,
        },
        "config": {
            "class": model.config_cls.name if model.config_cls else None,
            "leaves": (
                len(config_leaves(index, model.config_cls))
                if model.config_cls else 0
            ),
            "digest": config_covered_by_digest,
            "missing": missing_config,
        },
    }
    return findings, report


#: Bare-name calls whose result repr depends on the process.
_UNSTABLE_CALLS = {
    "hash": "hash() output depends on PYTHONHASHSEED across processes",
    "id": "id() bakes a memory address into the key",
    "set": "set repr depends on hash-iteration order",
    "frozenset": "frozenset repr depends on hash-iteration order",
}


def _check_key_stability(
    index: PackageIndex, model: CacheModel
) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[str] = set()

    def emit(node: ast.AST, fn_name: str, kind: str, message: str) -> None:
        fp = f"KEY002|{fn_name}|{kind}"
        if fp in seen:
            return
        seen.add(fp)
        findings.append(
            Finding(
                path=model.relpath,
                line=getattr(node, "lineno", model.key_fn.lineno),
                col=getattr(node, "col_offset", 0),
                rule_id="KEY002",
                message=message,
                fingerprint=fp,
            )
        )

    for fn in _module_closure(model.module, model.key_fn):
        for node in ast.walk(fn):
            if isinstance(node, (ast.Set, ast.SetComp)):
                emit(
                    node, fn.name, "set-display",
                    "set in the cache-key path: repr order follows "
                    "per-process hash seeds, so identical runs key "
                    "differently",
                )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                name = node.func.id
                if name in _UNSTABLE_CALLS:
                    emit(
                        node, fn.name, name,
                        f"{name}() in the cache-key path: "
                        f"{_UNSTABLE_CALLS[name]}",
                    )
                else:
                    cls = index.classes.get(name)
                    if cls is not None and not _stable_repr_class(index, cls):
                        emit(
                            node, fn.name, f"repr:{cls.name}",
                            f"instance of {cls.name} in the cache-key path "
                            "has no __repr__ (and is not a dataclass/"
                            "NamedTuple): the default repr embeds a memory "
                            "address",
                        )
    return findings


def _stable_repr_class(index: PackageIndex, cls: ClassInfo) -> bool:
    for c in index.mro(cls):
        if _has_dataclass_decorator(c.node):
            return True
        if "__repr__" in c.methods or "__str__" in c.methods:
            return True
        if any(b in ("NamedTuple", "Enum", "IntEnum", "StrEnum", "Path")
               for b in c.bases):
            return True
    # Out-of-package bases (NamedTuple, Enum...) are recorded as bare
    # base names on the ClassInfo itself.
    return any(
        b in ("NamedTuple", "Enum", "IntEnum", "StrEnum", "Path")
        for b in cls.bases
    )
