"""Result-payload stability analysis (PURE003).

Cache entries are pickled result objects compared byte-for-byte by the
determinism CI (jobs=2 vs jobs=1 must produce identical figures) and —
once the service layer lands — shared across tenants.  A ``set`` (or
``frozenset``) field breaks that: its pickle stream follows
hash-iteration order, which varies with ``PYTHONHASHSEED`` across
worker processes, so two equal results serialise to different bytes.

The check walks the result class's annotated fields recursively through
referenced in-package dataclasses and flags any field whose annotation
contains a set head at any nesting level (``Set[str]``,
``Dict[str, FrozenSet[int]]``, ...).  Dicts and lists are fine: dicts
preserve insertion order, and insertion order is the simulation's own
deterministic order.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from ..lint import Finding
from ..flow.model import ClassInfo, PackageIndex, annotation_heads

#: Annotation heads whose values pickle in hash-iteration order.
UNSTABLE_HEADS = frozenset({
    "Set", "set", "FrozenSet", "frozenset", "MutableSet", "AbstractSet",
})

_MAX_DEPTH = 4


def _annotation_set_head(node: Optional[ast.expr]) -> Optional[str]:
    """The first set-like head appearing anywhere in an annotation."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id if node.id in UNSTABLE_HEADS else None
    if isinstance(node, ast.Attribute):
        return node.attr if node.attr in UNSTABLE_HEADS else None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return _annotation_set_head(parsed)
    if isinstance(node, ast.Subscript):
        return _annotation_set_head(node.value) or _annotation_set_head(
            node.slice
        )
    if isinstance(node, (ast.Tuple, ast.BinOp)):
        children = (
            node.elts if isinstance(node, ast.Tuple)
            else [node.left, node.right]
        )
        for child in children:
            head = _annotation_set_head(child)
            if head is not None:
                return head
    return None


def check_payload(
    index: PackageIndex, result_cls: Optional[ClassInfo]
) -> List[Finding]:
    """Flag set-typed fields in the result class's pickled field tree."""
    if result_cls is None:
        return []
    findings: List[Finding] = []

    def visit(cls: ClassInfo, prefix: str, depth: int, seen: Set[str]) -> None:
        for stmt in cls.node.body:
            if not (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ):
                continue
            fname = stmt.target.id
            head = _annotation_set_head(stmt.annotation)
            if head is not None:
                findings.append(
                    Finding(
                        path=cls.module.relpath,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        rule_id="PURE003",
                        message=(
                            f"field '{prefix}{fname}' of {result_cls.name} "
                            f"is annotated with '{head}': its pickle byte "
                            "layout follows hash-iteration order, so equal "
                            "results serialise differently across worker "
                            "processes; use a sorted tuple or list"
                        ),
                        fingerprint=f"PURE003|{cls.name}.{fname}",
                    )
                )
                continue
            if depth >= _MAX_DEPTH:
                continue
            for h in annotation_heads(stmt.annotation):
                sub = index.classes.get(h)
                if sub is not None and sub.name not in seen:
                    visit(sub, f"{prefix}{fname}.", depth + 1,
                          seen | {sub.name})
                    break

    visit(result_cls, "", 0, {result_cls.name})
    return findings
