"""Purity report assembly + table rendering.

The JSON report mirrors the kernel pass's ``kernel-report.json`` role:
a machine-readable summary the service layer can consume (which inputs
the key covers, which ambient reads exist and are justified), plus a
human table for ``--format table``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..lint import Finding
from .cachekey import CacheModel
from .workers import WorkerReport


def build_report(
    model: Optional[CacheModel],
    key_report: Optional[Dict[str, object]],
    worker_report: Optional[WorkerReport],
    findings: List[Finding],
) -> Dict[str, object]:
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
    out: Dict[str, object] = {
        "version": 1,
        "findings_by_rule": dict(sorted(by_rule.items())),
    }
    if model is not None:
        out["cache"] = {
            "module": model.relpath,
            "key_fn": model.key_fn.name,
            "simulate": model.simulate_fn.name if model.simulate_fn else None,
            "workers": [fn.name for fn in model.worker_fns],
            "recipe_class": model.recipe_cls.name if model.recipe_cls else None,
            "config_class": model.config_cls.name if model.config_cls else None,
            "result_class": model.result_cls.name if model.result_cls else None,
        }
    if key_report is not None:
        out["key_coverage"] = key_report
    if worker_report is not None:
        out["workers"] = {
            "roots": worker_report.roots,
            "reachable_functions": worker_report.reachable,
            "env_reads": sorted(worker_report.env_reads),
            "clock_reads": sorted(worker_report.clock_reads),
            "random_reads": sorted(worker_report.random_reads),
            "global_writes": worker_report.global_writes,
        }
    return out


def render_table(report: Dict[str, object], findings: List[Finding]) -> str:
    lines: List[str] = []
    cache = report.get("cache")
    if cache:
        lines.append("cache under analysis")
        lines.append(
            f"  {cache['module']}: key={cache['key_fn']} "
            f"simulate={cache['simulate']} "
            f"workers={','.join(cache['workers']) or '-'}"
        )
        lines.append(
            f"  recipe={cache['recipe_class']} config={cache['config_class']} "
            f"result={cache['result_class']}"
        )
    cov = report.get("key_coverage")
    if cov:
        recipe, params, config = cov["recipe"], cov["params"], cov["config"]
        lines.append("key coverage")
        lines.append(
            f"  recipe fields   {recipe['fields'] - len(recipe['missing'])}"
            f"/{recipe['fields']} covered"
            + (f"  missing: {', '.join(recipe['missing'])}"
               if recipe["missing"] else "")
        )
        lines.append(
            f"  simulate params {len(params['simulate']) - len(params['missing'])}"
            f"/{len(params['simulate'])} covered"
            + (f"  missing: {', '.join(params['missing'])}"
               if params["missing"] else "")
        )
        digest = "via config digest" if config["digest"] else "field-by-field"
        lines.append(
            f"  config leaves   {config['leaves']} ({digest})"
            + (f"  missing: {', '.join(config['missing'])}"
               if config["missing"] else "")
        )
    workers = report.get("workers")
    if workers:
        lines.append("worker purity")
        lines.append(
            f"  reachable functions: {workers['reachable_functions']} "
            f"from {', '.join(workers['roots']) or '-'}"
        )
        for label, key in (
            ("env reads", "env_reads"),
            ("clock reads", "clock_reads"),
            ("random reads", "random_reads"),
            ("global writes", "global_writes"),
        ):
            vals = workers.get(key) or []
            lines.append(f"  {label}: {', '.join(vals) if vals else 'none'}")
    lines.append("findings")
    by_rule = report.get("findings_by_rule") or {}
    if by_rule:
        for rule, count in by_rule.items():
            lines.append(f"  {rule}: {count}")
        for f in findings:
            lines.append(f"  {f.path}:{f.line}: {f.rule_id} {f.message}")
    else:
        lines.append("  none")
    return "\n".join(lines) + "\n"
