"""Worker-purity analysis (PURE001/PURE002 + mutated-global KEY001).

``run_many`` farms recipes to a process pool, and the planned serve
backends keep workers resident across requests — so any worker-reachable
code that writes module-global state or reads ambient process state
(environment, wall clock, unseeded randomness) makes cached results
depend on *which worker* ran them and *when*, none of which is in the
cache key.

The reachability walk re-drives the flow pass's effect machinery from
the cache module's worker entry points (``_worker``/``_simulate``)
exactly the way the kernel pass drives it from the driver loop, with two
differences:

* **Constructor interception** — the stock
  :class:`~repro.simcheck.flow.effects.BodyWalker` does not follow bare
  ``ClassName(...)`` calls (the flow pass always enters through a
  pre-built instance graph).  Workers, however, *start* by constructing
  the simulator, so :class:`_PurityWalker` resolves index-class
  constructors to a populated abstract instance and dispatches
  ``__init__`` through the effect sink, which pulls the whole component
  tree into the reachable set.
* **No observer exclusion** — the kernel pass drops ``simcheck/`` and
  ``telemetry/`` modules (removable by the zero-cost guard contract);
  purity must keep them, because ambient reads on the observation plane
  (``REPRO_SANITIZE``, ``REPRO_TELEMETRY``) are exactly what PURE002
  exists to surface and justify.

Each reachable function is then scanned syntactically:

* **PURE001** — ``global`` rebinds, mutator-method calls / subscript or
  attribute stores on module-level names, and class-attribute writes.
* **PURE002** — ``os.environ`` / ``os.getenv`` reads, wall-clock reads
  (``time.time``-family, ``datetime.now``-family) and unseeded
  randomness (``random.*`` module-level, ``np.random.*`` legacy global,
  zero-argument ``default_rng()``).
* **KEY001 (mutated-global read)** — a read of a module global that
  package code mutates at runtime: the value observed depends on worker
  history, so it is result-affecting state outside the key.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..lint import Finding
from ..flow.effects import (
    AbstractVal,
    BodyWalker,
    EffectAnalyzer,
    EffectSet,
    EffectSink,
    Instance,
    MUTATORS,
    _GraphBuilder,
    _sig,
)
from ..flow.model import ClassInfo, ModuleInfo, PackageIndex
from .cachekey import CacheModel

#: time-module attributes that read the wall clock.
WALL_CLOCK = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock",
})

#: datetime constructors that read the wall clock.
DATETIME_NOW = frozenset({"now", "utcnow", "today"})

#: stdlib ``random`` module-level functions (global, seeded per process).
RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "lognormvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "getrandbits", "randbytes",
})

#: ``np.random`` legacy global-state draws.
NP_RANDOM_FUNCS = frozenset({
    "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "poisson", "binomial", "exponential", "bytes",
})

#: Value shapes that make a module-level binding a mutable container.
_MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "defaultdict", "deque", "Counter",
    "OrderedDict", "bytearray",
})


@dataclass
class ReachedFn:
    """One function reachable from a worker entry point."""

    qualname: str
    module: ModuleInfo
    fn: ast.FunctionDef


@dataclass
class WorkerReport:
    roots: List[str] = field(default_factory=list)
    reachable: int = 0
    env_reads: List[str] = field(default_factory=list)
    clock_reads: List[str] = field(default_factory=list)
    random_reads: List[str] = field(default_factory=list)
    global_writes: List[str] = field(default_factory=list)


class _PuritySink(EffectSink):
    """Records call edges into the reachability builder (effects dropped)."""

    def __init__(
        self, analyzer: EffectAnalyzer, builder: "_WorkerGraphBuilder"
    ) -> None:
        super().__init__(analyzer, EffectSet())
        self.builder = builder

    def call(
        self,
        instance: Instance,
        method: str,
        bindings: Dict[str, AbstractVal],
        node: ast.AST,
        concrete: Optional[ClassInfo] = None,
    ) -> None:
        # Muted passes (loop priming) still traverse real calls; purity
        # cares about reachability, not per-iteration multiplicity, so
        # record regardless of mute depth.
        self.builder.on_call(instance, method, bindings, concrete)

    def function(
        self,
        summary: EffectSet,
        node: ast.AST,
        module: Optional[ModuleInfo] = None,
        fn: Optional[ast.FunctionDef] = None,
        bindings: Optional[Dict[str, AbstractVal]] = None,
    ) -> None:
        if module is not None and fn is not None:
            self.builder.on_function(module, fn, bindings or {})


class _PurityWalker(BodyWalker):
    """BodyWalker that follows bare ``ClassName(...)`` constructor calls."""

    def __init__(self, *args, builder: "_WorkerGraphBuilder") -> None:
        super().__init__(*args)
        self.builder = builder

    def _call(self, call: ast.Call) -> AbstractVal:
        func = call.func
        if isinstance(func, ast.Name) and func.id != "super":
            cls = self.index.resolve_class(func.id)
            if cls is not None:
                inst = self.builder.class_instance(cls)
                resolved = self.index.resolve_method(cls, "__init__")
                if resolved is not None:
                    bindings = self._bind_call_args(resolved[1], call)
                    self.sink.call(inst, "__init__", bindings, call,
                                   concrete=cls)
                else:
                    self._eval_args(call)
                return inst
        return super()._call(call)


class _WorkerGraphBuilder:
    """Transitive closure of worker-reachable functions/methods."""

    def __init__(self, index: PackageIndex, analyzer: EffectAnalyzer) -> None:
        self.index = index
        self.analyzer = analyzer
        self.functions: Dict[str, ReachedFn] = {}
        self._instances: Dict[str, Instance] = {}
        self._seen: Set[Tuple] = set()
        self._queue: List[Tuple] = []

    def class_instance(self, cls: ClassInfo) -> Instance:
        inst = self._instances.get(cls.name)
        if inst is None:
            inst = Instance(f"<{cls.name}>", [cls])
            self._instances[cls.name] = inst
            _GraphBuilder(self.index)._populate(inst, [(cls, {})], depth=0)
        return inst

    def on_call(
        self,
        instance: Instance,
        method: str,
        bindings: Dict[str, AbstractVal],
        concrete: Optional[ClassInfo],
    ) -> None:
        candidates = [concrete] if concrete is not None else instance.classes
        for cls in candidates:
            resolved = self.index.resolve_method(cls, method)
            if resolved is None:
                continue
            defclass, fn = resolved
            qual = f"{defclass.name}.{method}"
            self.functions.setdefault(
                qual, ReachedFn(qual, defclass.module, fn)
            )
            key = ("m", instance.key, cls.name, method, _sig(bindings))
            if key in self._seen:
                continue
            self._seen.add(key)
            self._queue.append(("m", instance, cls, defclass, fn, bindings))

    def on_function(
        self,
        module: ModuleInfo,
        fn: ast.FunctionDef,
        bindings: Dict[str, AbstractVal],
    ) -> None:
        qual = f"{module.name}.{fn.name}"
        self.functions.setdefault(qual, ReachedFn(qual, module, fn))
        key = ("f", module.name, fn.name, _sig(bindings))
        if key in self._seen:
            return
        self._seen.add(key)
        self._queue.append(("f", module, fn, bindings))

    def build(self, roots: List[Tuple[ModuleInfo, ast.FunctionDef]]) -> None:
        for module, fn in roots:
            qual = f"{module.name}.{fn.name}"
            self.functions.setdefault(qual, ReachedFn(qual, module, fn))
            walker = _PurityWalker(
                self.analyzer, module, None, None, None, {},
                _PuritySink(self.analyzer, self), builder=self,
            )
            walker.exec_body(fn.body)
        self._drain()

    def _drain(self) -> None:
        while self._queue:
            item = self._queue.pop(0)
            if item[0] == "m":
                _, instance, cls, defclass, fn, bindings = item
                env = {k: v for k, v in bindings.items() if v is not None}
                walker = _PurityWalker(
                    self.analyzer, defclass.module, instance, cls, defclass,
                    env, _PuritySink(self.analyzer, self), builder=self,
                )
            else:
                _, module, fn, bindings = item
                env = {k: v for k, v in bindings.items() if v is not None}
                walker = _PurityWalker(
                    self.analyzer, module, None, None, None, env,
                    _PuritySink(self.analyzer, self), builder=self,
                )
            walker.exec_body(fn.body)


# --------------------------------------------------------------------------- #
# Syntactic scanners over reachable functions                                 #
# --------------------------------------------------------------------------- #


def _module_top_names(module: ModuleInfo) -> Set[str]:
    """Names bound at module top level (incl. inside top-level If/Try)."""
    tops: Set[str] = set()

    def scan(stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    if isinstance(t, ast.Name):
                        tops.add(t.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    tops.add(stmt.target.id)
            elif isinstance(stmt, ast.If):
                scan(stmt.body)
                scan(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                scan(stmt.body)
                for h in stmt.handlers:
                    scan(h.body)
                scan(stmt.orelse)
                scan(stmt.finalbody)

    scan(module.tree.body)
    return tops


def _local_names(fn: ast.FunctionDef) -> Set[str]:
    """Over-approximate local bindings of ``fn`` (params + stores)."""
    bound: Set[str] = set()
    args = fn.args
    for a in (list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)):
        bound.add(a.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    globals_decl: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            if node is not fn:
                bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            globals_decl.update(node.names)
    return bound - globals_decl


@dataclass
class _Mutation:
    """One module-global mutation site (shared by PURE001 and KEY001)."""

    name: str          # global name (or "Cls.attr" for class-attr writes)
    kind: str          # "rebind" | "mutate" | "classattr"
    node: ast.AST


def _find_mutations(
    index: PackageIndex, module: ModuleInfo, fn: ast.FunctionDef
) -> List[_Mutation]:
    tops = _module_top_names(module)
    locals_ = _local_names(fn)
    globals_decl: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            globals_decl.update(node.names)
    out: List[_Mutation] = []

    def is_global(name: str) -> bool:
        return name in globals_decl or (name in tops and name not in locals_)

    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id in globals_decl:
                out.append(_Mutation(node.id, "rebind", node))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                isinstance(base, ast.Name)
                and node.func.attr in MUTATORS
                and is_global(base.id)
            ):
                out.append(_Mutation(base.id, "mutate", node))
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target] if isinstance(node, ast.AugAssign)
                else node.targets
            )
            for t in targets:
                if isinstance(t, ast.Subscript) and isinstance(
                    t.value, ast.Name
                ) and is_global(t.value.id):
                    out.append(_Mutation(t.value.id, "mutate", t))
                elif isinstance(t, ast.Attribute) and isinstance(
                    t.value, ast.Name
                ):
                    base = t.value.id
                    if base in index.classes and base not in locals_:
                        out.append(
                            _Mutation(f"{base}.{t.attr}", "classattr", t)
                        )
                    elif is_global(base):
                        out.append(_Mutation(base, "mutate", t))
    return out


def _env_var_name(node: ast.Call) -> Optional[str]:
    for arg in node.args[:1]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def _is_os_environ(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )


@dataclass
class _AmbientRead:
    kind: str          # "env" | "clock" | "random"
    detail: str        # variable / function name
    node: ast.AST


def _find_ambient_reads(fn: ast.FunctionDef) -> List[_AmbientRead]:
    out: List[_AmbientRead] = []
    consumed: Set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                base = func.value
                # os.getenv("X") / os.environ.get("X")
                if isinstance(base, ast.Name) and base.id == "os" and \
                        func.attr == "getenv":
                    out.append(_AmbientRead(
                        "env", _env_var_name(node) or "<environ>", node))
                elif _is_os_environ(base) and func.attr in ("get", "__getitem__"):
                    consumed.add(id(base))
                    out.append(_AmbientRead(
                        "env", _env_var_name(node) or "<environ>", node))
                # time.time() family
                elif isinstance(base, ast.Name) and base.id == "time" and \
                        func.attr in WALL_CLOCK:
                    out.append(_AmbientRead("clock", f"time.{func.attr}", node))
                # datetime.now() / datetime.datetime.now()
                elif func.attr in DATETIME_NOW and (
                    (isinstance(base, ast.Name)
                     and base.id in ("datetime", "date"))
                    or (isinstance(base, ast.Attribute)
                        and base.attr in ("datetime", "date"))
                ):
                    out.append(_AmbientRead(
                        "clock", f"datetime.{func.attr}", node))
                # random.random() family
                elif isinstance(base, ast.Name) and base.id == "random" and \
                        func.attr in RANDOM_FUNCS:
                    out.append(_AmbientRead(
                        "random", f"random.{func.attr}", node))
                # np.random.<draw>() legacy global
                elif (
                    isinstance(base, ast.Attribute)
                    and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in ("np", "numpy")
                    and func.attr in NP_RANDOM_FUNCS
                ):
                    out.append(_AmbientRead(
                        "random", f"np.random.{func.attr}", node))
                # default_rng() with no seed
                elif func.attr == "default_rng" and not node.args \
                        and not node.keywords:
                    out.append(_AmbientRead("random", "default_rng()", node))
            elif isinstance(func, ast.Name) and func.id == "default_rng" \
                    and not node.args and not node.keywords:
                out.append(_AmbientRead("random", "default_rng()", node))
    # Bare os.environ subscripts (os.environ["X"]) and raw references.
    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript) and _is_os_environ(node.value):
            consumed.add(id(node.value))
            name = None
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, str
            ):
                name = node.slice.value
            out.append(_AmbientRead("env", name or "<environ>", node))
    for node in ast.walk(fn):
        if _is_os_environ(node) and id(node) not in consumed:
            out.append(_AmbientRead("env", "<environ>", node))
    return out


# --------------------------------------------------------------------------- #
# Entry point                                                                 #
# --------------------------------------------------------------------------- #


def check_workers(
    index: PackageIndex, model: CacheModel
) -> Tuple[List[Finding], List[str], WorkerReport]:
    """Run PURE001/PURE002 (+ mutated-global KEY001) from the worker roots."""
    notes: List[str] = []
    report = WorkerReport()
    if not model.worker_fns:
        notes.append("purity: no worker entry points found; skipping PURE rules")
        return [], notes, report

    analyzer = EffectAnalyzer(index)
    builder = _WorkerGraphBuilder(index, analyzer)
    roots = [(model.module, fn) for fn in model.worker_fns]
    report.roots = [f"{model.module.name}.{fn.name}" for fn in model.worker_fns]
    builder.build(roots)
    report.reachable = len(builder.functions)
    notes.append(
        f"purity: {report.reachable} worker-reachable function(s) from "
        + ", ".join(report.roots)
    )

    # Package-wide mutation pre-pass: which globals does *any* package
    # function mutate at runtime?  Reads of those from worker-reachable
    # code are KEY001 (history-dependent values outside the key).
    mutated_globals: Set[Tuple[str, str]] = set()
    for mod in index.modules.values():
        fns = list(mod.functions.values())
        for cls in mod.classes.values():
            fns.extend(cls.methods.values())
        for fn in fns:
            for mut in _find_mutations(index, mod, fn):
                if mut.kind != "classattr":
                    mutated_globals.add((mod.name, mut.name))

    findings: List[Finding] = []
    seen_fp: Set[str] = set()

    def emit(
        rule: str, path: str, node: ast.AST, message: str, fingerprint: str
    ) -> None:
        if fingerprint in seen_fp:
            return
        seen_fp.add(fingerprint)
        findings.append(
            Finding(
                path=path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=rule,
                message=message,
                fingerprint=fingerprint,
            )
        )

    for qual in sorted(builder.functions):
        reached = builder.functions[qual]
        mod, fn = reached.module, reached.fn

        for mut in _find_mutations(index, mod, fn):
            if mut.kind == "rebind":
                msg = (
                    f"worker-reachable {qual} rebinds module global "
                    f"'{mut.name}'; resident pool workers diverge from fresh "
                    "processes"
                )
            elif mut.kind == "classattr":
                msg = (
                    f"worker-reachable {qual} writes class attribute "
                    f"'{mut.name}'; the write outlives the request in a "
                    "resident worker"
                )
            else:
                msg = (
                    f"worker-reachable {qual} mutates module-level container "
                    f"'{mut.name}'; state accumulates across requests in a "
                    "process pool"
                )
            emit(
                "PURE001", mod.relpath, mut.node, msg,
                f"PURE001|{mut.kind}:{mod.name}.{mut.name}|{qual}",
            )

        for read in _find_ambient_reads(fn):
            if read.kind == "env":
                msg = (
                    f"environment variable '{read.detail}' is read in "
                    f"worker-reachable {qual}; cached results can depend on "
                    "process environment that is not part of the cache key"
                )
            elif read.kind == "clock":
                msg = (
                    f"wall-clock read {read.detail}() in worker-reachable "
                    f"{qual}; cached results must not depend on when they "
                    "were computed"
                )
            else:
                msg = (
                    f"unseeded randomness ({read.detail}) in worker-reachable "
                    f"{qual}; use a seeded generator threaded from the recipe"
                )
            emit(
                "PURE002", mod.relpath, read.node, msg,
                f"PURE002|{read.kind}:{read.detail}|{qual}",
            )
            target = {
                "env": report.env_reads,
                "clock": report.clock_reads,
                "random": report.random_reads,
            }[read.kind]
            if read.detail not in target:
                target.append(read.detail)

        # Mutated-global reads: value depends on worker history.
        locals_ = _local_names(fn)
        tops = _module_top_names(mod)
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in tops
                and node.id not in locals_
                and (mod.name, node.id) in mutated_globals
            ):
                continue
            emit(
                "KEY001", mod.relpath, node,
                f"worker-reachable {qual} reads module global '{node.id}', "
                "which package code mutates at runtime; its value is "
                "worker-history state outside the cache key",
                f"KEY001|global:{mod.name}.{node.id}|{qual}",
            )

    report.global_writes = sorted(
        {f.fingerprint.split("|")[1] for f in findings
         if f.rule_id == "PURE001"}
    )
    return findings, notes, report
