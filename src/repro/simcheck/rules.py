"""Built-in simcheck lint rules (SIM001-SIM006).

Each rule targets a failure mode that silently corrupts simulator
output rather than crashing it:

========  ==============================================================
SIM001    wall-clock / unseeded RNG inside cycle-stepped code
SIM002    iteration over a ``set`` where order can leak into sim state
SIM003    mutable default arguments
SIM004    bare ``except:``
SIM005    stat counters accumulated as ``float`` in the per-cycle loop
SIM006    reads of ``Config`` fields that do not exist on the dataclass
========  ==============================================================
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .lint import ConfigModel, FileContext, Finding, LintRule, register_rule

# --------------------------------------------------------------------------- #
# SIM001 — determinism: no wall clock, no unseeded RNG in cycle code          #
# --------------------------------------------------------------------------- #

_WALL_CLOCK_TIME = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}
#: ``random.Random(seed)`` / ``SeedSequence`` build seedable generators
#: and are the sanctioned escape hatch.
_RANDOM_ALLOWED = {"Random", "SystemRandom", "SeedSequence", "getstate", "setstate"}
_NP_RANDOM_GLOBAL = {
    "random", "rand", "randn", "randint", "random_sample", "choice",
    "shuffle", "permutation", "normal", "uniform", "seed", "poisson",
    "exponential", "binomial",
}


@register_rule
class WallClockRule(LintRule):
    rule_id = "SIM001"
    description = (
        "no wall-clock or unseeded RNG calls inside cycle-stepped code "
        "(core/, sim/, noc/, budget/); seed generators through the config"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.cycle_stepped:
            return
        # Names bound by `from <mod> import <name>`: local -> (mod, orig).
        from_imports: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    from_imports[alias.asname or alias.name] = (
                        node.module, alias.name
                    )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            msg = self._classify(node, from_imports)
            if msg:
                yield self.finding(ctx, node, msg)

    def _classify(
        self, node: ast.Call, from_imports: Dict[str, Tuple[str, str]]
    ) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            origin = from_imports.get(func.id)
            if origin is None:
                return None
            mod, orig = origin
            if mod == "time" and orig in _WALL_CLOCK_TIME:
                return f"wall-clock call time.{orig}() in cycle-stepped code"
            if mod == "datetime" and orig == "datetime":
                return None  # class imported; calls caught via attribute
            if mod == "random" and orig not in _RANDOM_ALLOWED:
                return (
                    f"unseeded random.{orig}() in cycle-stepped code; "
                    "use a config-seeded random.Random/np Generator"
                )
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "time" and attr in _WALL_CLOCK_TIME:
                return f"wall-clock call time.{attr}() in cycle-stepped code"
            if base.id == "datetime" and attr in _WALL_CLOCK_DATETIME:
                return f"wall-clock call datetime.{attr}() in cycle-stepped code"
            if base.id == "random" and attr not in _RANDOM_ALLOWED:
                return (
                    f"unseeded random.{attr}() in cycle-stepped code; "
                    "use a config-seeded random.Random/np Generator"
                )
            return None
        # np.random.X / numpy.random.X / datetime.datetime.now
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            head, mid = base.value.id, base.attr
            if head == "datetime" and mid == "datetime" and attr in _WALL_CLOCK_DATETIME:
                return f"wall-clock call datetime.datetime.{attr}()"
            if head in ("np", "numpy") and mid == "random":
                if attr in _NP_RANDOM_GLOBAL:
                    return (
                        f"global numpy RNG {head}.random.{attr}() in "
                        "cycle-stepped code; use a config-seeded Generator"
                    )
                if attr == "default_rng" and not node.args and not node.keywords:
                    return (
                        "np.random.default_rng() without a seed in "
                        "cycle-stepped code; pass a config-derived seed"
                    )
        return None


# --------------------------------------------------------------------------- #
# SIM002 — determinism: iteration over unordered sets                         #
# --------------------------------------------------------------------------- #

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference", "copy"}


def _annotation_is_set(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):  # typing.Set[...]
        return node.attr in ("Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip()
        return head in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    return False


class _SetTyper:
    """Best-effort 'is this expression a set?' within one file."""

    def __init__(self, tree: ast.AST) -> None:
        # Attribute names annotated as sets anywhere in the file
        # (e.g. ``sharers: Set[int]`` on a dataclass).
        self.set_attrs: Set[str] = set()
        # Function names whose return annotation is a set.
        self.set_returning: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and _annotation_is_set(node.annotation):
                target = node.target
                if isinstance(target, ast.Name):
                    self.set_attrs.add(target.id)
                elif isinstance(target, ast.Attribute):
                    self.set_attrs.add(target.attr)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.returns is not None and _annotation_is_set(node.returns):
                    self.set_returning.add(node.name)

    def is_set(self, node: ast.expr, local_sets: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Name) and f.id in ("set", "frozenset"):
                return True
            if isinstance(f, ast.Name) and f.id in self.set_returning:
                return True
            if isinstance(f, ast.Attribute):
                if f.attr in _SET_METHODS and self.is_set(f.value, local_sets):
                    return True
                if f.attr in self.set_returning:
                    return True
            return False
        if isinstance(node, ast.Name):
            return node.id in local_sets
        if isinstance(node, ast.Attribute):
            return node.attr in self.set_attrs
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set(node.left, local_sets) or self.is_set(
                node.right, local_sets
            )
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body, local_sets) or self.is_set(
                node.orelse, local_sets
            )
        return False


@register_rule
class SetIterationRule(LintRule):
    rule_id = "SIM002"
    description = (
        "iteration over a set leaks hash order into simulation state; "
        "iterate sorted(...) instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        typer = _SetTyper(ctx.tree)
        seen: Set[Tuple[int, int]] = set()
        scopes: List[ast.AST] = [ctx.tree]
        scopes.extend(
            n for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            for f in self._check_scope(ctx, typer, scope):
                key = (f.line, f.col)
                if key not in seen:
                    seen.add(key)
                    yield f

    def _check_scope(
        self,
        ctx: FileContext,
        typer: _SetTyper,
        scope: ast.AST,
    ) -> Iterator[Finding]:
        local_sets: Set[str] = set()
        body = scope.body if hasattr(scope, "body") else []
        # Forward pass: track names assigned set-valued expressions.
        for stmt in _iter_stmts(body, skip_functions=True):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if typer.is_set(stmt.value, local_sets):
                        local_sets.add(target.id)
                    else:
                        local_sets.discard(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if _annotation_is_set(stmt.annotation):
                    local_sets.add(stmt.target.id)
            elif isinstance(stmt, ast.AugAssign):
                pass
            yield from self._check_stmt(ctx, typer, stmt, local_sets)

    def _check_stmt(
        self,
        ctx: FileContext,
        typer: _SetTyper,
        stmt: ast.stmt,
        local_sets: Set[str],
    ) -> Iterator[Finding]:
        iters: List[ast.expr] = []
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iters.append(stmt.iter)
        for node in ast.walk(stmt):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    iters.append(gen.iter)
        for it in iters:
            if typer.is_set(it, local_sets):
                yield self.finding(
                    ctx,
                    it,
                    "iterating a set: order can leak into simulation "
                    "state; wrap in sorted(...)",
                )


def _iter_stmts(body, skip_functions: bool):
    """Statements in a scope, recursing into compound statements but not
    into nested function/class scopes."""
    for stmt in body:
        if skip_functions and isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield stmt
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner:
                yield from _iter_stmts(inner, skip_functions)
        for handler in getattr(stmt, "handlers", ()):
            yield from _iter_stmts(handler.body, skip_functions)


# --------------------------------------------------------------------------- #
# SIM003 — mutable default arguments                                          #
# --------------------------------------------------------------------------- #

_MUTABLE_CTORS = {"list", "dict", "set", "deque", "defaultdict", "bytearray", "Counter"}


@register_rule
class MutableDefaultRule(LintRule):
    rule_id = "SIM003"
    description = "mutable default argument shared across calls"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}(); "
                        "use None and create inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            f = node.func
            name = f.id if isinstance(f, ast.Name) else (
                f.attr if isinstance(f, ast.Attribute) else None
            )
            return name in _MUTABLE_CTORS
        return False


# --------------------------------------------------------------------------- #
# SIM004 — bare except                                                        #
# --------------------------------------------------------------------------- #


@register_rule
class BareExceptRule(LintRule):
    rule_id = "SIM004"
    description = "bare except swallows every error including SanitizerViolation"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node, "bare except:; catch a specific exception type"
                )


# --------------------------------------------------------------------------- #
# SIM005 — integer stat counters                                              #
# --------------------------------------------------------------------------- #

#: Plural/stat forms only: singular names ("invalidation", "hit") name
#: per-event quantities like energies, which are legitimately float.
_COUNTER_SUFFIX_RE = re.compile(
    r"(^|_)(hits|misses|stalls|tokens|count|counts|commits|committed"
    r"|invalidations|writebacks|transactions|messages|acquires|episodes"
    r"|updates|fetches|iterations|cycles|hops)$"
)
_COUNTER_NAMES = {"granted_total", "total_consumed"}


def _is_counter_name(name: str) -> bool:
    return name in _COUNTER_NAMES or bool(_COUNTER_SUFFIX_RE.search(name))


def _definitely_float(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _definitely_float(node.operand)
    if isinstance(node, ast.Call):
        f = node.func
        return isinstance(f, ast.Name) and f.id == "float"
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _definitely_float(node.left) or _definitely_float(node.right)
    return False


@register_rule
class FloatCounterRule(LintRule):
    rule_id = "SIM005"
    description = (
        "stat counters (hits/misses/stalls/token tallies) must stay int; "
        "float accumulation drifts in the per-cycle loop"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                name = _target_name(node.target)
                if name is None or not _is_counter_name(name):
                    continue
                if isinstance(node.op, ast.Div) or _definitely_float(node.value):
                    yield self.finding(
                        ctx, node,
                        f"counter {name!r} accumulated with a float value",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    name = _target_name(target)
                    if name is None or not _is_counter_name(name):
                        continue
                    if _definitely_float(node.value):
                        yield self.finding(
                            ctx, node,
                            f"counter {name!r} initialised to a float; use int",
                        )
            elif isinstance(node, ast.AnnAssign):
                name = _target_name(node.target)
                if (
                    name is not None
                    and _is_counter_name(name)
                    and isinstance(node.annotation, ast.Name)
                    and node.annotation.id == "float"
                ):
                    yield self.finding(
                        ctx, node,
                        f"counter {name!r} annotated float; use int",
                    )


def _target_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# --------------------------------------------------------------------------- #
# SIM006 — Config field reads must exist                                      #
# --------------------------------------------------------------------------- #


@register_rule
class ConfigFieldRule(LintRule):
    rule_id = "SIM006"
    description = (
        "every Config field read must exist on the dataclass "
        "(catches dead or typo'd knobs)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        model = ctx.config_model
        if model is None:
            return
        # Per-class map: self-attribute -> config class, from __init__
        # assignments of config-annotated parameters.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self_attrs = _self_attr_types(node, model)
                is_config = model.is_config_class(node.name)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from self._check_function(
                            ctx, model, item,
                            self_attrs=self_attrs,
                            self_class=node.name if is_config else None,
                        )
        for node in getattr(ctx.tree, "body", []):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(
                    ctx, model, node, self_attrs={}, self_class=None
                )

    def _check_function(
        self,
        ctx: FileContext,
        model: ConfigModel,
        func: ast.AST,
        self_attrs: Dict[str, str],
        self_class: Optional[str],
    ) -> Iterator[Finding]:
        bindings = _param_bindings(func, model)
        # Local aliases: name = <config-typed chain> (single forward pass).
        for stmt in _iter_stmts(func.body, skip_functions=True):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    t = _resolve_chain_type(
                        stmt.value, model, bindings, self_attrs, self_class
                    )
                    if t is not None:
                        bindings[target.id] = t
                    else:
                        bindings.pop(target.id, None)
        seen: Set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) and id(node) not in seen:
                chain, root = _unroll_chain(node)
                for part in chain:
                    seen.add(id(part))
                if root is None:
                    continue
                yield from self._check_chain(
                    ctx, model, root, chain, bindings, self_attrs, self_class
                )

    def _check_chain(
        self,
        ctx: FileContext,
        model: ConfigModel,
        root: ast.Name,
        chain: List[ast.Attribute],
        bindings: Dict[str, str],
        self_attrs: Dict[str, str],
        self_class: Optional[str],
    ) -> Iterator[Finding]:
        attrs = [c.attr for c in chain]
        idx = 0
        if root.id in bindings:
            cur = bindings[root.id]
        elif root.id == "self" and attrs and attrs[0] in self_attrs:
            cur = self_attrs[attrs[0]]
            idx = 1
        elif root.id == "self" and self_class is not None:
            cur = self_class
        else:
            return
        for i in range(idx, len(attrs)):
            attr = attrs[i]
            if attr.startswith("__"):
                return
            if not model.has_attr(cur, attr):
                yield self.finding(
                    ctx, chain[i],
                    f"config dataclass {cur} has no field {attr!r}",
                )
                return
            nxt = model.attr_type(cur, attr)
            if nxt is None:
                return
            cur = nxt


def _param_bindings(func: ast.AST, model: ConfigModel) -> Dict[str, str]:
    bindings: Dict[str, str] = {}
    args = func.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.annotation is None:
            continue
        ann = arg.annotation
        name = None
        if isinstance(ann, ast.Name):
            name = ann.id
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            name = ann.value.strip()
        if name is not None and model.is_config_class(name):
            bindings[arg.arg] = name
    return bindings


def _self_attr_types(cls: ast.ClassDef, model: ConfigModel) -> Dict[str, str]:
    """``self.X -> config class`` map from ``__init__`` assignments."""
    out: Dict[str, str] = {}
    init = next(
        (
            n for n in cls.body
            if isinstance(n, ast.FunctionDef) and n.name == "__init__"
        ),
        None,
    )
    if init is None:
        return out
    params = _param_bindings(init, model)
    for stmt in ast.walk(init):
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and isinstance(stmt.value, ast.Name)
            and stmt.value.id in params
        ):
            out[target.attr] = params[stmt.value.id]
    return out


def _unroll_chain(node: ast.Attribute) -> Tuple[List[ast.Attribute], Optional[ast.Name]]:
    """``a.b.c`` -> ([b-node, c-node] in source order, Name('a'))."""
    chain: List[ast.Attribute] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        chain.append(cur)
        cur = cur.value
    chain.reverse()
    return chain, cur if isinstance(cur, ast.Name) else None


def _resolve_chain_type(
    node: ast.expr,
    model: ConfigModel,
    bindings: Dict[str, str],
    self_attrs: Dict[str, str],
    self_class: Optional[str],
) -> Optional[str]:
    """Final config-class type of an expression, or None."""
    if isinstance(node, ast.Name):
        return bindings.get(node.id)
    if not isinstance(node, ast.Attribute):
        return None
    chain, root = _unroll_chain(node)
    if root is None:
        return None
    attrs = [c.attr for c in chain]
    idx = 0
    if root.id in bindings:
        cur: Optional[str] = bindings[root.id]
    elif root.id == "self" and attrs and attrs[0] in self_attrs:
        cur = self_attrs[attrs[0]]
        idx = 1
    elif root.id == "self" and self_class is not None:
        cur = self_class
    else:
        return None
    for i in range(idx, len(attrs)):
        if cur is None or not model.has_attr(cur, attrs[i]):
            return None
        cur = model.attr_type(cur, attrs[i])
    return cur
