"""Runtime invariant sanitizers for the CMP simulator.

Opt-in cross-cutting checks that assert, every cycle or every event,
the invariants the paper's results depend on:

* :class:`TokenSanitizer` — PTB token conservation (Section III.B/III.E.2):
  tokens handed to the balancer equal tokens redistributed plus a
  non-negative residual; a donor core's spent+spare never exceeds its
  local allotment; total offered spare never exceeds the global budget.
* :class:`CoherenceSanitizer` — MOESI directory invariants: at most one
  M/O/E owner per line, no M/E coexisting with other copies, the
  directory's owner/sharer bookkeeping matches the per-core cache states.
* :class:`NoCProgressSanitizer` — mesh deadlock/livelock watchdog: no
  message in flight longer than ``watchdog_factor x`` the worst-case
  diameter traversal, and flit credits never go negative.
* :class:`PipelineSanitizer` — ROB commit order is program order
  (dispatch cycles non-decreasing through the window), instructions
  never commit before completing, occupancy never exceeds capacity.

Enabling: ``CMPConfig(sanitize=True)`` or the environment variable
``REPRO_SANITIZE=1``.  When off, the hook sites reduce to one
``is not None`` test on a pre-loaded local — zero allocation, no calls.

Violations raise :class:`SanitizerViolation` (an ``AssertionError``
subclass) carrying the cycle number, core id and a state snapshot.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "SanitizerViolation",
    "TokenSanitizer",
    "CoherenceSanitizer",
    "NoCProgressSanitizer",
    "PipelineSanitizer",
    "SanitizerSuite",
    "sanitize_enabled",
]

#: Slack for float comparisons in token accounting.
_EPS = 1e-6


def sanitize_enabled(cfg=None) -> bool:
    """True when sanitizers should run: config flag or ``REPRO_SANITIZE``."""
    if cfg is not None and getattr(cfg, "sanitize", False):
        return True
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0", "false", "off")


class SanitizerViolation(AssertionError):
    """A simulator invariant was broken.

    Subclasses ``AssertionError`` so existing property tests that assert
    on protocol invariants keep catching it.
    """

    def __init__(
        self,
        sanitizer: str,
        message: str,
        *,
        cycle: Optional[int] = None,
        core: Optional[int] = None,
        snapshot: Optional[Dict] = None,
    ) -> None:
        self.sanitizer = sanitizer
        self.cycle = cycle
        self.core = core
        self.snapshot = dict(snapshot or {})
        where = f"cycle={cycle}" + (f" core={core}" if core is not None else "")
        detail = f" | snapshot: {self.snapshot}" if self.snapshot else ""
        super().__init__(f"[{sanitizer}] {where}: {message}{detail}")


class _Sanitizer:
    """Shared machinery: a name, the current cycle, a check counter."""

    name = "sanitizer"

    def __init__(self) -> None:
        self.now = 0
        self.checks = 0

    def _raise(
        self,
        message: str,
        core: Optional[int] = None,
        snapshot: Optional[Dict] = None,
    ) -> None:
        raise SanitizerViolation(
            self.name, message, cycle=self.now, core=core, snapshot=snapshot
        )


# --------------------------------------------------------------------------- #
# Tokens                                                                      #
# --------------------------------------------------------------------------- #


class TokenSanitizer(_Sanitizer):
    """Conservation of power tokens through the PTB balancer."""

    name = "TokenSanitizer"

    def __init__(self) -> None:
        super().__init__()
        self.total_pool = 0
        self.total_granted = 0

    def check_distribution(self, pool: int, grants: Sequence[int]) -> None:
        """Tokens in == tokens out + residual; nothing minted or negative."""
        self.checks += 1
        granted = 0
        for i, g in enumerate(grants):
            if g < 0:
                self._raise(
                    f"negative grant {g} to core {i}",
                    core=i,
                    snapshot={"pool": pool, "grants": list(grants)},
                )
            granted += g
        if granted > pool:
            self._raise(
                f"balancer minted tokens: granted {granted} from a pool of "
                f"{pool} (residual would be {pool - granted})",
                snapshot={"pool": pool, "grants": list(grants)},
            )
        self.total_pool += pool
        self.total_granted += granted

    def check_reports(
        self,
        tokens: Sequence[int],
        spares: Sequence[int],
        overs: Sequence[int],
        token_budget: float,
        global_token_budget: float,
    ) -> None:
        """Per-core spare/over reports are consistent with consumption."""
        self.checks += 1
        spare_total = 0
        for i, (t, s, o) in enumerate(zip(tokens, spares, overs)):
            if s < 0:
                self._raise(f"negative spare report {s}", core=i)
            if o < 0:
                self._raise(f"negative overshoot report {o}", core=i)
            if s > 0 and o > 0:
                self._raise(
                    f"core is both donor (spare={s}) and requester (over={o})",
                    core=i,
                    snapshot={"tokens": t},
                )
            if s > 0 and t + s > token_budget + _EPS:
                self._raise(
                    f"donor spent+spare {t}+{s} exceeds the local allotment "
                    f"{token_budget:.3f}",
                    core=i,
                    snapshot={"tokens": t, "spare": s},
                )
            spare_total += s
        if spare_total > global_token_budget + _EPS:
            self._raise(
                f"total offered spare {spare_total} exceeds the global token "
                f"budget {global_token_budget:.3f}",
                snapshot={"spares": list(spares)},
            )


# --------------------------------------------------------------------------- #
# Coherence                                                                   #
# --------------------------------------------------------------------------- #


class CoherenceSanitizer(_Sanitizer):
    """MOESI directory invariants, checked per touched line."""

    name = "CoherenceSanitizer"

    def __init__(self, directory=None) -> None:
        super().__init__()
        self._dir = directory

    def attach(self, directory) -> None:
        self._dir = directory

    def check_line(self, core: int, line: int) -> None:
        """Validate one line after a transaction touched it."""
        from ..mem.coherence import State

        d = self._dir
        if d is None:
            return
        self.checks += 1
        holders = [
            (c, view[line])
            for c, view in enumerate(d._core_state)
            if line in view
        ]
        entry = d._entries.get(line)
        snapshot = {
            "line": hex(line),
            "holders": [(c, st.name) for c, st in holders],
            "owner": entry.owner if entry is not None else None,
            "sharers": sorted(entry.sharers) if entry is not None else None,
            "dirty": entry.dirty if entry is not None else None,
        }
        owners = [(c, st) for c, st in holders if st in (State.M, State.O, State.E)]
        if len(owners) > 1:
            self._raise(
                f"line {line:#x} has multiple M/O/E holders", core=core,
                snapshot=snapshot,
            )
        exclusive = [c for c, st in holders if st in (State.M, State.E)]
        if exclusive and len(holders) > 1:
            self._raise(
                f"line {line:#x}: M/E copy coexists with other cached copies",
                core=core, snapshot=snapshot,
            )
        if holders and entry is None:
            self._raise(
                f"line {line:#x} cached but has no directory entry",
                core=core, snapshot=snapshot,
            )
        if entry is None:
            return
        if owners:
            oc = owners[0][0]
            if entry.owner != oc:
                self._raise(
                    f"line {line:#x}: directory owner {entry.owner} does not "
                    f"match M/O/E holder {oc}",
                    core=core, snapshot=snapshot,
                )
        elif entry.owner != -1:
            st = d.state_of(entry.owner, line)
            if st not in (State.M, State.O, State.E):
                self._raise(
                    f"line {line:#x}: directory owner {entry.owner} holds "
                    f"state {st.name}, not M/O/E",
                    core=core, snapshot=snapshot,
                )
        holder_ids = {c for c, _ in holders}
        for c, st in holders:
            if st == State.S and c not in entry.sharers:
                self._raise(
                    f"line {line:#x}: core {c} caches S but is missing from "
                    "the directory sharer set",
                    core=core, snapshot=snapshot,
                )
        for c in entry.sharers:
            if c not in holder_ids:
                self._raise(
                    f"line {line:#x}: directory lists sharer {c} with no "
                    "cached copy",
                    core=core, snapshot=snapshot,
                )
        if entry.dirty:
            if entry.owner == -1 or d.state_of(entry.owner, line) not in (
                State.M, State.O,
            ):
                self._raise(
                    f"line {line:#x}: dirty bit set with no M/O owner",
                    core=core, snapshot=snapshot,
                )

    def check_all(self) -> None:
        """Full-directory sweep (used by tests and end-of-run checks)."""
        d = self._dir
        if d is None:
            return
        lines = set()
        for view in d._core_state:
            lines.update(view.keys())
        lines.update(d._entries.keys())
        for line in sorted(lines):
            self.check_line(-1, line)


# --------------------------------------------------------------------------- #
# NoC progress                                                                #
# --------------------------------------------------------------------------- #


class NoCProgressSanitizer(_Sanitizer):
    """Deadlock/livelock watchdog for the statistical mesh model."""

    name = "NoCProgressSanitizer"

    def __init__(
        self,
        num_nodes: int,
        net_cfg,
        *,
        watchdog_factor: int = 8,
        buffer_flits_per_node: int = 4096,
    ) -> None:
        super().__init__()
        if watchdog_factor < 2:
            raise ValueError("watchdog factor must be >= 2")
        self.num_nodes = num_nodes
        self.link_latency = net_cfg.link_latency
        self.router_latency = net_cfg.router_latency
        self.bandwidth = net_cfg.link_bandwidth_flits
        w, h = self._dims(num_nodes)
        #: Worst-case head latency across the mesh.
        self.diameter_latency = max(1, (w - 1) + (h - 1)) * (
            self.link_latency + self.router_latency
        )
        self.watchdog_factor = watchdog_factor
        self.credit_capacity = num_nodes * buffer_flits_per_node
        self.credits = self.credit_capacity
        #: In-flight (inject_cycle, deliver_cycle, flits), FIFO by inject.
        self._inflight: List[List[int]] = []
        self.delivered = 0

    @staticmethod
    def _dims(n: int) -> tuple:
        import math

        w = int(math.isqrt(n))
        while n % w:
            w -= 1
        return (max(w, n // w), min(w, n // w))

    def expected_latency(self, hops: int, flits: int) -> int:
        head = max(hops, 1) * (self.link_latency + self.router_latency)
        tail = (max(flits, 1) - 1) // self.bandwidth
        return head + tail

    def watchdog_limit(self, flits: int) -> int:
        return self.watchdog_factor * (self.diameter_latency + max(flits, 1))

    def on_inject(
        self, hops: int, flits: int, deliver_override: Optional[int] = None
    ) -> None:
        """A message entered the mesh this cycle."""
        self.checks += 1
        deliver = (
            deliver_override
            if deliver_override is not None
            else self.now + self.expected_latency(hops, flits)
        )
        self.credits -= flits
        if self.credits < 0:
            self._raise(
                f"flit credits went negative ({self.credits}): "
                f"{self.credit_capacity - self.credits} flits in flight "
                f"against a capacity of {self.credit_capacity}",
                snapshot={"inflight_messages": len(self._inflight) + 1},
            )
        self._inflight.append([self.now, deliver, flits])

    def on_cycle(self, now: int) -> None:
        """Advance time: retire delivered messages, bark on stuck ones."""
        self.now = now
        inflight = self._inflight
        if not inflight:
            return
        kept: List[List[int]] = []
        for rec in inflight:
            injected, deliver, flits = rec
            if deliver <= now:
                self.credits += flits
                self.delivered += 1
                continue
            age = now - injected
            if age > self.watchdog_limit(flits):
                self._raise(
                    f"message in flight for {age} cycles (injected at "
                    f"{injected}, due {deliver}) exceeds the watchdog limit "
                    f"{self.watchdog_limit(flits)} — deadlock or livelock",
                    snapshot={
                        "inflight_messages": len(inflight),
                        "flits": flits,
                    },
                )
            kept.append(rec)
        self._inflight = kept


# --------------------------------------------------------------------------- #
# Pipeline                                                                    #
# --------------------------------------------------------------------------- #


class PipelineSanitizer(_Sanitizer):
    """ROB ordering and capacity invariants."""

    name = "PipelineSanitizer"

    def __init__(self) -> None:
        super().__init__()
        self._last_committed_dispatch: Dict[int, int] = {}

    def on_commit(
        self, core_id: int, dispatch_cycle: int, complete_cycle: int, now: int
    ) -> None:
        """One instruction retired: program order, completion before commit."""
        self.checks += 1
        if complete_cycle > now:
            self._raise(
                f"instruction committed at cycle {now} before completing "
                f"(complete={complete_cycle})",
                core=core_id,
                snapshot={"dispatch": dispatch_cycle},
            )
        last = self._last_committed_dispatch.get(core_id)
        if last is not None and dispatch_cycle < last:
            self._raise(
                "commit order violates program order: retiring an "
                f"instruction dispatched at {dispatch_cycle} after one "
                f"dispatched at {last}",
                core=core_id,
            )
        self._last_committed_dispatch[core_id] = dispatch_cycle

    def check_rob(
        self,
        core_id: int,
        now: int,
        occupancy: int,
        capacity: int,
        dispatch_cycles: Iterable[int],
    ) -> None:
        """Whole-window check at the end of a core cycle."""
        self.checks += 1
        if occupancy > capacity:
            self._raise(
                f"ROB occupancy {occupancy} exceeds capacity {capacity}",
                core=core_id,
            )
        prev: Optional[int] = None
        for d in dispatch_cycles:
            if prev is not None and d < prev:
                self._raise(
                    "ROB window out of program order: entry dispatched at "
                    f"{d} sits behind one dispatched at {prev}",
                    core=core_id,
                )
            prev = d


# --------------------------------------------------------------------------- #
# Suite                                                                       #
# --------------------------------------------------------------------------- #


class SanitizerSuite:
    """All four sanitizers, wired into one :class:`CMPSimulator`."""

    def __init__(self, cfg) -> None:
        self.cfg = cfg
        self.tokens = TokenSanitizer()
        self.coherence = CoherenceSanitizer()
        self.noc = NoCProgressSanitizer(cfg.num_cores, cfg.net)
        self.pipeline = PipelineSanitizer()
        self.all = (self.tokens, self.coherence, self.noc, self.pipeline)

    def attach(self, sim) -> None:
        """Install hook references on the simulator's components."""
        sim.mesh._sanitizer = self.noc
        self.coherence.attach(sim.hierarchy.directory)
        sim.hierarchy.directory._sanitizer = self.coherence
        for core in sim.cores:
            core._sanitizer = self.pipeline
        balancer = getattr(sim.controller, "balancer", None)
        if balancer is not None:
            balancer._sanitizer = self.tokens
            sim.controller._sanitizer = self.tokens

    def on_cycle(self, cycle: int) -> None:
        self.tokens.now = cycle
        self.coherence.now = cycle
        self.pipeline.now = cycle
        self.noc.on_cycle(cycle)

    @property
    def total_checks(self) -> int:
        return sum(s.checks for s in self.all)
