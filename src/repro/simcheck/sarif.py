"""Shared SARIF 2.1.0 emitter for all simcheck passes.

One static-analysis interchange document per run, minimal but valid for
GitHub code scanning: a single ``run`` whose driver is the simcheck
subcommand (``simcheck-lint`` / ``simcheck-flow`` / ``simcheck-kernel``),
one ``result`` per finding, and the pass's line-independent fingerprint
carried in ``partialFingerprints`` so annotations track findings across
unrelated edits exactly like the baseline files do.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .lint import Finding

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def sarif_document(tool: str, findings: Sequence[Finding]) -> Dict[str, object]:
    rule_ids = sorted({f.rule_id for f in findings})
    results: List[Dict[str, object]] = []
    for f in findings:
        results.append(
            {
                "ruleId": f.rule_id,
                "level": "warning",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": max(f.line, 1),
                                "startColumn": max(f.col + 1, 1),
                            },
                        }
                    }
                ],
                "partialFingerprints": {"simcheck/v1": f.identity()},
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": f"simcheck-{tool}",
                        "rules": [{"id": rid} for rid in rule_ids],
                    }
                },
                "results": results,
            }
        ],
    }


def merge_sarif(documents: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Merge per-pass documents into one multi-run SARIF document.

    ``simcheck all`` emits a single document whose ``runs`` array holds
    one run per pass, in pass order, so one code-scanning upload covers
    the whole gate.
    """
    runs: List[object] = []
    for doc in documents:
        runs.extend(doc.get("runs", []))  # type: ignore[union-attr]
    return {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION, "runs": runs}


def render_sarif(tool: str, findings: Sequence[Finding]) -> str:
    return json.dumps(sarif_document(tool, findings), indent=2, sort_keys=True)
