"""``repro.simcheck.schedule`` — stage-schedule extraction + dtype inference.

The fifth simcheck pass, and the one that turns ROADMAP item 1 from
"aggressive rewrite, hope the pickles match" into a machine-checked
plan.  ``kernel`` classifies every swept field as per-core, cross-core
or global; ``flow`` computes interprocedural effect summaries; this
pass composes both into the explicit *happens-before stage schedule*
an SoA cycle kernel must implement:

1. Build the per-cycle phase DAG over (phase, instance, field) edges
   from the driver's abstractly-executed event stream (:mod:`.phases`).
2. Condense it into a minimal stage schedule; every stage is proven
   either **per-core-parallel** (one array op across all cores) or
   **serialized** (the PTB grant vectors, the balancer pipe, coherence
   servicing).
3. Infer a concrete numpy dtype and ``(n_cores,)``/scalar shape for
   every swept field (:mod:`.dtypes`).
4. Emit deterministic ``schedule-report.json`` (:mod:`.report`) plus an
   opt-in runtime validator that replays a reference run against the
   static schedule (:mod:`.validator`).

Three rules:

* **SCHED001** — a cycle in the phase DAG (mutually-dependent phases
  fuse into one serialized stage).
* **SCHED002** — a field written in two stages no dependence path
  orders (the schedule cannot sequence the updates).
* **SCHED003** — a per-core-classified field reached through a skewed
  core index, contradicting ``kernel-report.json``.

Like the other passes: findings carry line-independent fingerprints,
honour inline ``# simcheck: disable=RULE`` comments, and gate through a
justified baseline (``.simcheck-schedule-baseline.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..flow.effects import EffectAnalyzer
from ..flow.hazards import find_driver
from ..flow.model import PackageIndex
from ..lint import ConfigModel, Finding
from ..kernel.coupling import classify_fields
from ..purity import _apply_disables
from .dtypes import FieldType, infer_field_types
from .phases import (
    PARALLEL,
    SERIAL,
    Edge,
    Phase,
    Segment,
    Stage,
    build_edges,
    build_phases,
    build_schedule,
    extract_phase_events,
)
from .report import build_report, render_json, render_table
from .validator import ScheduleValidator

__all__ = [
    "ScheduleAnalysis",
    "analyze_schedule",
    "ScheduleValidator",
    "build_report",
    "render_json",
    "render_table",
    "infer_field_types",
    "PARALLEL",
    "SERIAL",
]


@dataclass
class ScheduleAnalysis:
    """Everything one schedule run produces."""

    findings: List[Finding] = field(default_factory=list)
    stages: List[Stage] = field(default_factory=list)
    phases: List[Phase] = field(default_factory=list)
    segments: List[Segment] = field(default_factory=list)
    edges: List[Edge] = field(default_factory=list)
    field_types: List[FieldType] = field(default_factory=list)
    report: Optional[Dict[str, object]] = None
    notes: List[str] = field(default_factory=list)

    @property
    def parallel_stages(self) -> List[Stage]:
        return [s for s in self.stages if s.kind == PARALLEL]

    @property
    def unknown_types(self) -> List[FieldType]:
        return [f for f in self.field_types if f.dtype == "unknown"]


def _load_config_model(root: Path) -> Optional[ConfigModel]:
    for candidate in (root / "config.py", root / "repro" / "config.py"):
        if candidate.is_file():
            try:
                return ConfigModel.from_source(candidate.read_text())
            except (OSError, SyntaxError):  # pragma: no cover - defensive
                return None
    return None


def analyze_schedule(root: Path) -> ScheduleAnalysis:
    """Run the schedule pass over the package rooted at ``root``."""
    out = ScheduleAnalysis()
    index = PackageIndex.build(root)
    for relpath, error in index.parse_errors:
        out.notes.append(f"schedule: parse error in {relpath}: {error}")

    driver = find_driver(index)
    if driver is None:
        out.notes.append(
            "schedule: no per-cycle driver loop found "
            "(looked for run/tick/advance with a top-level loop); "
            "schedule analysis skipped"
        )
        return out
    root_cls, fn, loop = driver
    driver_name = f"{root_cls.name}.{fn.name}"
    out.notes.append(
        f"schedule: driver {driver_name} "
        f"({root_cls.module.relpath}:{fn.lineno})"
    )

    analyzer = EffectAnalyzer(index)
    state, _root, segments = extract_phase_events(
        index, root_cls, fn, loop, analyzer
    )
    out.segments = segments
    fields, _coupling_edges = classify_fields(index, state)

    phases, of_event = build_phases(state)
    out.phases = phases
    out.edges = build_edges(state, of_event)
    stages, findings, _stage_of = build_schedule(
        state, phases, out.edges, fields
    )
    out.stages = stages
    out.notes.append(
        f"schedule: {len(phases)} phases, {len(out.edges)} edges, "
        f"{len(stages)} stages "
        f"({sum(1 for s in stages if s.kind == PARALLEL)} parallel)"
    )

    out.field_types = infer_field_types(
        index, fields, _load_config_model(root)
    )

    findings = _apply_disables(root, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    out.findings = findings
    out.report = build_report(
        driver_name, segments, state, stages, out.field_types,
        out.edges, findings, phases,
    )
    return out
