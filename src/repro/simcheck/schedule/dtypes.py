"""Dtype/shape inference for swept state fields.

The SoA rewrite needs, for every field the cycle sweep writes, a
concrete numpy dtype and a shape — ``(n_cores,)`` for replicated or
per-core-vector state, ``scalar`` for shared singletons, ``ragged`` for
genuinely irregular containers (a deque-shaped ROB cannot be one array
column; the report says so instead of guessing).

Evidence comes from three places, in priority order:

1. **Assignments** over the owning class's MRO: constant kinds
   (``True``/``0``/``0.0``), coercions (``int(...)``, ``float(...)``,
   ``len(...)``, comparisons), container constructions (``[x] * n``,
   list comprehensions, ``deque()``/``dict()``/``set()``), and augmented
   assignments (``+=`` of float evidence marks an *accumulator*, which
   is always float64 — never float32 — because energy accumulators sum
   millions of per-cycle samples and float32 loses the tail).
2. **Units annotations** (:mod:`repro.units`): Watts/Joules/Tokens/
   Hertz are float quantities; Cycles counts whole events.
3. **CMPConfig bounds**: an assignment or comparison that references a
   config field chain (``cfg.core.rob_entries``) records the bound, so
   a bounded int can later become the narrowest array column that fits.

Enum-like fields (assigned only from a small closed set of int
constants, never arithmetic) get the narrowest dtype that holds the
set; plain ints stay int64.  A field with no usable evidence is
``unknown`` — the CLI treats that as an analysis failure, exactly like
an unclassified field in the kernel pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..flow.model import ClassInfo, PackageIndex
from ..kernel.coupling import CROSS_CORE, PER_CORE, FieldClass
from ..lint import ConfigModel

#: Units whose quantities are real-valued vs whole-event counts.
FLOAT_UNITS = {"Watts", "Joules", "Tokens", "Hertz", "Seconds"}
INT_UNITS = {"Cycles"}

#: Calls that coerce their result to a known scalar kind.
INT_CALLS = {"int", "len", "round", "ord", "sum"}
FLOAT_CALLS = {"float"}
BOOL_CALLS = {"bool", "any", "all", "isinstance"}
CONTAINER_CALLS = {
    "deque", "dict", "set", "list", "tuple", "defaultdict", "OrderedDict",
    "Counter", "frozenset",
}


@dataclass
class FieldType:
    """Inferred storage type for one swept field."""

    key: str
    owner: str
    attr: str
    classification: str
    dtype: str            # "float64" | "int64" | "int8" | "bool" | "object" | "unknown"
    shape: str            # "(n_cores,)" | "scalar" | "ragged"
    kind: str             # "float" | "accumulator" | "counter" | "enum" | ...
    evidence: List[str] = field(default_factory=list)
    bound: Optional[str] = None
    enum_values: Optional[List[int]] = None


#: Base-class names that mark an enum definition.
ENUM_BASES = {"Enum", "IntEnum", "IntFlag", "Flag"}

#: class name -> {member name -> int value}; threaded through inference.
EnumTable = Dict[str, Dict[str, int]]


def build_enum_table(index: PackageIndex) -> EnumTable:
    """Int-valued members of every Enum subclass known to the index."""
    enums: EnumTable = {}
    for name, cls in index.classes.items():
        if not any(base in ENUM_BASES for base in cls.bases):
            continue
        members: Dict[str, int] = {}
        for stmt in cls.node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, int)
                and not isinstance(stmt.value.value, bool)
            ):
                members[stmt.targets[0].id] = stmt.value.value
        if members:
            enums[name] = members
    return enums


class _Evidence:
    """Accumulated per-field signals from one class's method bodies."""

    def __init__(self) -> None:
        self.enum_refs = 0
        self.bools = 0
        self.int_values: Set[int] = set()
        self.ints = 0
        self.floats = 0
        self.strs = 0
        self.nones = 0
        self.container: Optional[str] = None
        self.vector = False       # [x] * n / per-element comprehension
        self.element: Optional[str] = None  # scalar kind of vector elements
        self.objects = 0
        self.aug_int = 0
        self.aug_float = 0
        self.aug_unknown = 0
        self.arithmetic = 0       # non-constant arithmetic assignments
        self.bound: Optional[str] = None
        self.notes: List[str] = []


def _self_attr(node: ast.expr, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _attr_chain(node: ast.expr) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _config_bound(node: ast.AST, config_attrs: Set[str]) -> Optional[str]:
    """Dotted config chain referenced anywhere under ``node``, if any."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Attribute):
            continue
        chain = _attr_chain(sub)
        if len(chain) < 2 or sub.attr not in config_attrs:
            continue
        if any(part in ("cfg", "config") for part in chain[:-1]):
            return ".".join(chain)
    return None


def _classify_value(
    value: ast.expr,
    ev: _Evidence,
    config_attrs: Set[str],
    enums: EnumTable,
) -> None:
    """Fold one assigned expression into the evidence."""
    if isinstance(value, ast.Constant):
        v = value.value
        if isinstance(v, bool):
            ev.bools += 1
        elif isinstance(v, int):
            ev.ints += 1
            ev.int_values.add(v)
        elif isinstance(v, float):
            ev.floats += 1
        elif isinstance(v, str):
            ev.strs += 1
        elif v is None:
            ev.nones += 1
        else:
            ev.objects += 1
        return
    if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
        inner = value.operand
        if isinstance(inner, ast.Constant) and isinstance(
            inner.value, (int, float)
        ) and not isinstance(inner.value, bool):
            if isinstance(inner.value, int):
                ev.ints += 1
                ev.int_values.add(-inner.value)
            else:
                ev.floats += 1
            return
    if isinstance(value, (ast.Compare, ast.BoolOp)) or (
        isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.Not)
    ):
        ev.bools += 1
        return
    if isinstance(value, ast.Call):
        fname = value.func.id if isinstance(value.func, ast.Name) else (
            value.func.attr if isinstance(value.func, ast.Attribute) else ""
        )
        if fname in INT_CALLS:
            ev.ints += 1
            ev.arithmetic += 1
            return
        if fname in FLOAT_CALLS:
            ev.floats += 1
            ev.arithmetic += 1
            return
        if fname in BOOL_CALLS:
            ev.bools += 1
            return
        if fname in CONTAINER_CALLS:
            ev.container = fname
            return
        ev.objects += 1
        return
    if isinstance(value, ast.BinOp):
        if isinstance(value.op, ast.Mult) and (
            isinstance(value.left, ast.List) or isinstance(value.right, ast.List)
        ):
            ev.vector = True
            lst = value.left if isinstance(value.left, ast.List) else value.right
            if lst.elts:
                elem = _Evidence()
                _classify_value(lst.elts[0], elem, config_attrs, enums)
                ev.element = _scalar_kind(elem)
            return
        if isinstance(value.op, ast.Div):
            ev.floats += 1
            ev.arithmetic += 1
            return
        ev.arithmetic += 1
        # Arithmetic with a float constant anywhere is float evidence.
        for sub in ast.walk(value):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                ev.floats += 1
                return
        return
    if isinstance(value, ast.ListComp):
        ev.vector = True
        elem = _Evidence()
        _classify_value(value.elt, elem, config_attrs, enums)
        ev.element = _scalar_kind(elem)
        return
    if isinstance(value, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
        ev.container = type(value).__name__.lower()
        return
    if isinstance(value, ast.IfExp):
        _classify_value(value.body, ev, config_attrs, enums)
        _classify_value(value.orelse, ev, config_attrs, enums)
        return
    if isinstance(value, ast.Attribute):
        chain = _attr_chain(value)
        if (
            len(chain) == 2
            and chain[0] in enums
            and chain[1] in enums[chain[0]]
        ):
            ev.ints += 1
            ev.enum_refs += 1
            ev.int_values.add(enums[chain[0]][chain[1]])
            return
        bound = _config_bound(value, config_attrs)
        if bound is not None:
            ev.bound = ev.bound or bound
            ev.ints += 1
            return
        ev.objects += 1
        return
    ev.objects += 1


def _scalar_kind(ev: _Evidence) -> Optional[str]:
    if ev.floats:
        return "float64"
    if ev.bools and not ev.ints:
        return "bool"
    if ev.ints:
        return "int64"
    return None


#: Annotation heads that mark a container-valued field.
CONTAINER_ANNOTATIONS = {
    "Set", "List", "Dict", "Deque", "Tuple", "FrozenSet", "DefaultDict",
    "set", "list", "dict", "deque", "tuple", "frozenset",
}


def _annotation_head(ann: ast.expr) -> Optional[str]:
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Subscript):
        head = _annotation_head(ann.value)
        if head == "Optional":
            return _annotation_head(ann.slice)
        return head
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value
    return None


def _classify_annotation(ann: ast.expr, ev: _Evidence) -> None:
    head = _annotation_head(ann)
    if head is None:
        return
    if head in CONTAINER_ANNOTATIONS:
        ev.container = ev.container or head.lower()
        if isinstance(ann, ast.Subscript) and not isinstance(
            ann.slice, ast.Tuple
        ):
            elem = _Evidence()
            _classify_annotation(ann.slice, elem)
            ev.element = ev.element or _scalar_kind(elem)
    elif head == "bool":
        ev.bools += 1
    elif head == "int":
        ev.ints += 1
        ev.arithmetic += 1  # annotation gives no closed value set
    elif head == "float":
        ev.floats += 1
    elif head == "str":
        ev.strs += 1
    elif head in FLOAT_UNITS:
        ev.floats += 1
    elif head in INT_UNITS:
        ev.ints += 1
        ev.arithmetic += 1


def _subclass_closure(
    index: PackageIndex, cls: ClassInfo
) -> List[ClassInfo]:
    """``cls`` plus every transitive subclass known to the index."""
    out: List[ClassInfo] = []
    seen: Set[str] = set()
    frontier = [cls]
    while frontier:
        cur = frontier.pop()
        if cur.name in seen:
            continue
        seen.add(cur.name)
        out.append(cur)
        for name in cur.subclass_names:
            sub = index.classes.get(name)
            if sub is not None:
                frontier.append(sub)
    return out


def _gather(
    index: PackageIndex,
    cls: ClassInfo,
    attr: str,
    config_attrs: Set[str],
    enums: EnumTable,
) -> _Evidence:
    ev = _Evidence()
    chain: List[ClassInfo] = []
    seen: Set[str] = set()
    for variant in _subclass_closure(index, cls):
        for owner in index.mro(variant):
            if owner.name not in seen:
                seen.add(owner.name)
                chain.append(owner)
    for owner in chain:
        # Dataclass-style class-body annotations (``dirty: bool = False``).
        for stmt in owner.node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == attr
            ):
                _classify_annotation(stmt.annotation, ev)
                if stmt.value is not None and not (
                    isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Name)
                    and stmt.value.func.id == "field"
                ):
                    _classify_value(stmt.value, ev, config_attrs, enums)
    for owner in chain:
        for fn in owner.methods.values():
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign):
                    if any(_self_attr(t, attr) for t in node.targets):
                        _classify_value(node.value, ev, config_attrs, enums)
                        bound = _config_bound(node.value, config_attrs)
                        if bound is not None:
                            ev.bound = ev.bound or bound
                elif isinstance(node, ast.AnnAssign):
                    if _self_attr(node.target, attr):
                        _classify_annotation(node.annotation, ev)
                        if node.value is not None:
                            _classify_value(node.value, ev, config_attrs, enums)
                            bound = _config_bound(node.value, config_attrs)
                            if bound is not None:
                                ev.bound = ev.bound or bound
                elif isinstance(node, ast.AugAssign):
                    if _self_attr(node.target, attr):
                        probe = _Evidence()
                        _classify_value(node.value, probe, config_attrs, enums)
                        if probe.floats or isinstance(node.op, ast.Div):
                            ev.aug_float += 1
                        elif probe.ints or probe.bools:
                            ev.aug_int += 1
                        else:
                            ev.aug_unknown += 1
                elif isinstance(node, ast.Compare):
                    involved = any(
                        _self_attr(side, attr)
                        for side in [node.left, *node.comparators]
                    )
                    if involved:
                        bound = _config_bound(node, config_attrs)
                        if bound is not None:
                            ev.bound = ev.bound or bound
    return ev


def _narrow_int(values: Set[int]) -> str:
    lo, hi = min(values), max(values)
    if -128 <= lo and hi <= 127:
        return "int8"
    if -32768 <= lo and hi <= 32767:
        return "int16"
    return "int64"


def _decide(
    ev: _Evidence, unit: Optional[str], classification: str
) -> FieldType:
    """Turn evidence + unit into a concrete (dtype, shape, kind)."""
    dtype = "unknown"
    kind = "unknown"
    evidence: List[str] = []
    enum_values: Optional[List[int]] = None

    if unit is not None:
        evidence.append(f"units annotation: {unit}")
    if ev.bound is not None:
        evidence.append(f"bounded by {ev.bound}")

    if ev.vector:
        dtype = ev.element or "float64"
        kind = "per_core_vector"
        evidence.append("vector sized at construction")
    elif ev.container is not None:
        dtype, kind = "object", "container"
        evidence.append(f"container annotation/construction ({ev.container})")
    elif ev.aug_float or (
        (ev.aug_int or ev.aug_unknown or ev.arithmetic)
        and (ev.floats or unit in FLOAT_UNITS)
    ):
        dtype, kind = "float64", "accumulator"
        evidence.append("augmented/arithmetic float updates (accumulator)")
    elif unit in FLOAT_UNITS:
        dtype, kind = "float64", "float"
    elif unit in INT_UNITS:
        dtype, kind = "int64", "counter"
    elif ev.floats:
        dtype, kind = "float64", "float"
        evidence.append("float constant/arithmetic assignments")
    elif ev.bools and not ev.ints and not ev.aug_int:
        dtype, kind = "bool", "bool-flag"
        evidence.append("boolean constants/predicates only")
    elif ev.ints or ev.aug_int or (ev.aug_unknown and not ev.objects):
        if (
            len(ev.int_values) >= 2
            and len(ev.int_values) <= 16
            and not ev.aug_int
            and not ev.aug_unknown
            and not ev.arithmetic
            and (ev.enum_refs or ev.ints == len(ev.int_values))
        ):
            dtype = _narrow_int(ev.int_values)
            kind = "enum"
            enum_values = sorted(ev.int_values)
            evidence.append(
                ("enum member assignments, values "
                 if ev.enum_refs else "closed set of int constants ")
                + str(enum_values)
            )
        else:
            dtype = "int64"
            kind = "counter" if ev.aug_int else "bounded-int"
            evidence.append(
                "integer assignments"
                + (" with += updates" if ev.aug_int else "")
            )
    elif ev.strs:
        dtype, kind = "object", "str"
        evidence.append("string constants")
    elif ev.objects or ev.nones:
        dtype, kind = "object", "reference"
        evidence.append("object/None assignments")

    if dtype == "unknown" and unit is not None:
        dtype = "float64" if unit in FLOAT_UNITS else "int64"
        kind = "float" if unit in FLOAT_UNITS else "counter"

    if ev.nones and dtype not in ("object", "unknown"):
        evidence.append("nullable (also assigned None)")

    if kind == "container":
        shape = "ragged"
    elif classification == PER_CORE:
        shape = "(n_cores,)"
    elif kind == "per_core_vector":
        shape = "(n_cores,)"
    else:
        shape = "scalar"

    return FieldType(
        key="", owner="", attr="", classification=classification,
        dtype=dtype, shape=shape, kind=kind, evidence=evidence,
        bound=ev.bound, enum_values=enum_values,
    )


def infer_field_types(
    index: PackageIndex,
    fields: Sequence[FieldClass],
    config_model: Optional[ConfigModel] = None,
) -> List[FieldType]:
    """Infer a concrete dtype/shape for every classified swept field."""
    config_attrs: Set[str] = set()
    if config_model is not None:
        for names in config_model.attrs.values():
            config_attrs.update(names)
    enums = build_enum_table(index)

    out: List[FieldType] = []
    for fc in fields:
        cls = index.classes.get(fc.owner)
        if cls is None:
            out.append(
                FieldType(
                    key=fc.key, owner=fc.owner, attr=fc.attr,
                    classification=fc.classification, dtype="unknown",
                    shape="scalar", kind="unknown",
                    evidence=[f"owning class {fc.owner!r} not in index"],
                )
            )
            continue
        ev = _gather(index, cls, fc.attr, config_attrs, enums)
        unit = index.attr_unit(cls, fc.attr)
        ft = _decide(ev, unit, fc.classification)
        ft.key, ft.owner, ft.attr = fc.key, fc.owner, fc.attr
        out.append(ft)
    out.sort(key=lambda f: f.key)
    return out
