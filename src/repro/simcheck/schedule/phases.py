"""Phase extraction and stage-schedule construction (SCHED rules).

A *phase* is one unit of per-cycle work observed in the driver loop: a
component entry (``Core.step``, ``BudgetController.end_cycle`` — all
call sites with the same label inside one top-level loop statement merge
into one phase) or a single driver-level statement (the glue reads the
SoA kernel must vectorize).  Phases are connected by data dependences
recovered from the same abstractly-executed event stream the flow and
kernel passes walk:

* **flow** edge  — phase A writes a location that phase B reads later in
  the observed cycle order (producer → consumer);
* **anti** edge — phase A reads a location that phase B overwrites later
  (A must observe the pre-update value).

Write/write pairs deliberately create *no* edge: two writers are ordered
only if a dependence chain orders them, and a field written by two
unordered phases is exactly the contract violation SCHED002 reports.
Accesses in mutually-exclusive ``if``/``else`` arms of the driver body
(``core.step(...)`` vs ``core.idle_cycle(...)``) are tracked with branch
contexts and never ordered against each other.

The DAG is condensed (Tarjan SCCs — a non-trivial SCC is SCHED001, the
members fuse into one serialized stage) and levelled into the minimal
stage schedule: each stage is proven either **per-core-parallel** (every
write in it stays on the sweep's own replicated element and is
classified ``per_core`` by the kernel coupling taxonomy) or
**serialized** (it touches cross-core or global state — the PTB grant
vectors, the balancer pipe, coherence servicing).

SCHED003 is the cross-check against ``kernel-report.json``: the kernel
pass treats *any* replicated access inside the sweep as the element's
own (``cores[i]``), so a skewed index (``cores[(i + 1) % n]``) silently
passes as per-core there.  The phase walker inspects subscript indices
and flags per-core-classified fields reached through a non-loop-index
subscript — a cross-core edge contradicting the coupling report.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..flow.effects import EffectAnalyzer, Instance, build_instance_graph
from ..flow.hazards import (
    ROOT_KEY,
    TickEvent,
    _display,
    _per_instance,
    _replicated_root,
    _TickSink,
    _TickState,
    _TickWalker,
)
from ..flow.model import ClassInfo, PackageIndex
from ..kernel.coupling import PER_CORE, FieldClass, _is_observer_event
from ..lint import Finding

#: Stage kinds.
PARALLEL = "per_core_parallel"
SERIAL = "serialized"

BranchCtx = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class EventMeta:
    """Schedule-specific context for one tick event (index-aligned)."""

    segment: int
    branch: BranchCtx
    skewed: bool


@dataclass(frozen=True)
class Segment:
    """One top-level statement of the cycle-loop body."""

    index: int
    line: int
    source: str


class _PhaseState(_TickState):
    def __init__(self) -> None:
        super().__init__()
        self.segment = -1
        self.branch: BranchCtx = ()
        self.next_branch = 0
        #: simple loop-index variable names seen on ``for i in ...``.
        self.index_vars: Set[str] = set()
        #: replicated-container key reached through a skewed subscript in
        #: the current statement, e.g. ``cores[(i + 1) % n]``.
        self.skew_key: Optional[str] = None
        self.meta: List[EventMeta] = []


class _PhaseSink(_TickSink):
    """Tick sink that records segment/branch/skew metadata per event."""

    def _emit(self, kind, access, label, receiver_key) -> None:
        super()._emit(kind, access, label, receiver_key)
        state: _PhaseState = self.state
        root = _replicated_root(access.loc_key)
        skewed = state.skew_key is not None and root == state.skew_key
        state.meta.append(EventMeta(state.segment, state.branch, skewed))


class _PhaseWalker(_TickWalker):
    """Tick walker that tracks branch arms and skewed sweep subscripts."""

    def exec_stmt(self, stmt: ast.stmt) -> None:
        state: _PhaseState = self.state
        state.skew_key = None
        if isinstance(stmt, ast.If):
            if not self.sink.muted:
                state.pos += 1
            self.eval(stmt.test)
            bid = state.next_branch
            state.next_branch += 1
            saved = state.branch
            state.branch = saved + ((bid, 0),)
            try:
                self.exec_body(stmt.body)
            finally:
                state.branch = saved
            if stmt.orelse:
                state.branch = saved + ((bid, 1),)
                try:
                    self.exec_body(stmt.orelse)
                finally:
                    state.branch = saved
            return
        if isinstance(stmt, ast.For):
            self._note_index_vars(stmt.target)
        super().exec_stmt(stmt)

    def _note_index_vars(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.state.index_vars.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._note_index_vars(elt)

    def eval(self, expr: Optional[ast.expr]):
        if isinstance(expr, ast.Subscript) and self.state.group_stack:
            base = self._peek(expr.value)
            if isinstance(base, Instance) and base.replicated:
                sl = expr.slice
                plain = (
                    isinstance(sl, ast.Name)
                    and sl.id in self.state.index_vars
                )
                if not plain:
                    self.state.skew_key = base.key
        return super().eval(expr)


def extract_phase_events(
    index: PackageIndex,
    root_cls: ClassInfo,
    driver_fn: ast.FunctionDef,
    loop: ast.stmt,
    analyzer: EffectAnalyzer,
) -> Tuple[_PhaseState, Instance, List[Segment]]:
    """Tick extraction with segment/branch tracking (same two-pass shape
    as the flow and kernel extractors: muted prologue, muted prime pass,
    then the live walk that produces the event stream)."""
    root = build_instance_graph(index, root_cls, ROOT_KEY)
    state = _PhaseState()
    sink = _PhaseSink(analyzer, state, f"{root_cls.name}.{driver_fn.name}")
    walker = _PhaseWalker(
        analyzer, root_cls.module, root, root_cls, root_cls, {}, sink,
        state=state,
    )
    sink.muted += 1
    for stmt in driver_fn.body:
        if stmt is loop:
            break
        walker.exec_stmt(stmt)
    for stmt in loop.body:
        walker.exec_stmt(stmt)
    sink.muted -= 1
    if isinstance(loop, ast.For):
        walker.bind_loop_target(loop.target, loop.iter)
    segments: List[Segment] = []
    for seg, stmt in enumerate(loop.body):
        state.segment = seg
        source = ast.unparse(stmt).splitlines()[0][:80]
        segments.append(Segment(seg, stmt.lineno, source))
        walker.exec_stmt(stmt)
    return state, root, segments


# --------------------------------------------------------------------------- #
# Phase graph                                                                 #
# --------------------------------------------------------------------------- #


@dataclass
class Phase:
    """A merged unit of per-cycle work (node in the schedule DAG)."""

    pid: int
    name: str
    segment: int
    label: str
    driver: bool
    events: List[int] = field(default_factory=list)  # event indices

    def locs(
        self, state: _PhaseState, kind: str
    ) -> List[str]:
        out = sorted({
            _display(state.events[i].access.loc_key)
            for i in self.events
            if state.events[i].kind == kind
        })
        return out


@dataclass(frozen=True)
class Edge:
    """One data dependence between two phases."""

    src: int
    dst: int
    loc: str   # display loc key
    kind: str  # "flow" | "anti"


def build_phases(state: _PhaseState) -> Tuple[List[Phase], Dict[int, int]]:
    """Group live events into phases; return (phases, event idx -> pid).

    Component entries merge on (segment, label); driver-level glue gets
    one micro-phase per statement position so interleaved glue cannot
    manufacture spurious cycles with the entries it surrounds.
    """
    phases: List[Phase] = []
    by_key: Dict[Tuple, int] = {}
    of_event: Dict[int, int] = {}
    for idx, event in enumerate(state.events):
        if _is_observer_event(event):
            continue
        meta = state.meta[idx]
        if event.receiver_key is not None:
            key = (meta.segment, event.label)
            name = f"s{meta.segment}:{event.label}"
            driver = False
        else:
            key = (meta.segment, event.label, event.pos)
            name = f"s{meta.segment}:{event.label}@{event.pos}"
            driver = True
        pid = by_key.get(key)
        if pid is None:
            pid = len(phases)
            by_key[key] = pid
            phases.append(
                Phase(pid=pid, name=name, segment=meta.segment,
                      label=event.label, driver=driver)
            )
        phases[pid].events.append(idx)
        of_event[idx] = pid
    return phases, of_event


def _exclusive(a: BranchCtx, b: BranchCtx) -> bool:
    """True when two branch contexts sit in different arms of one if."""
    arms = dict(a)
    return any(bid in arms and arms[bid] != arm for bid, arm in b)


def build_edges(
    state: _PhaseState, of_event: Dict[int, int]
) -> List[Edge]:
    """Flow (w→r) and anti (r→w) dependences between distinct phases."""
    by_loc: Dict[str, List[int]] = {}
    for idx in of_event:
        by_loc.setdefault(state.events[idx].access.loc_key, []).append(idx)

    edges: Set[Edge] = set()
    for loc_key in sorted(by_loc):
        indices = by_loc[loc_key]
        writes = [i for i in indices if state.events[i].kind == "w"]
        reads = [i for i in indices if state.events[i].kind == "r"]
        if not writes:
            continue
        display = _display(loc_key)
        for w in writes:
            for r in reads:
                pw, pr = of_event[w], of_event[r]
                if pw == pr:
                    continue
                if _exclusive(state.meta[w].branch, state.meta[r].branch):
                    continue
                if w < r:
                    edges.add(Edge(pw, pr, display, "flow"))
                else:
                    edges.add(Edge(pr, pw, display, "anti"))
    return sorted(edges, key=lambda e: (e.src, e.dst, e.loc, e.kind))


# --------------------------------------------------------------------------- #
# Condensation + stages                                                       #
# --------------------------------------------------------------------------- #


def _tarjan(n: int, adj: Dict[int, Set[int]]) -> List[List[int]]:
    """Iterative Tarjan SCC; components returned in deterministic order."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [0]

    for start in range(n):
        if start in index_of:
            continue
        work: List[Tuple[int, int]] = [(start, 0)]
        call_stack: List[int] = []
        while work:
            node, pi = work.pop()
            if pi == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
                call_stack.append(node)
            succs = sorted(adj.get(node, ()))
            advanced = False
            for j in range(pi, len(succs)):
                nxt = succs[j]
                if nxt not in index_of:
                    work.append((node, j + 1))
                    work.append((nxt, 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index_of[nxt])
            if advanced:
                continue
            call_stack.pop()
            if call_stack:
                parent = call_stack[-1]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                comp: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.append(member)
                    if member == node:
                        break
                sccs.append(sorted(comp))
    return sccs


@dataclass
class Stage:
    """One step of the minimal schedule."""

    index: int
    level: int
    kind: str           # PARALLEL | SERIAL
    reason: str
    phases: List[Phase] = field(default_factory=list)


def _phase_parallel(
    phase: Phase,
    state: _PhaseState,
    classification: Dict[str, str],
) -> Tuple[bool, str]:
    """Prove one phase vectorizable across cores, or say why not."""
    blocking: List[str] = []
    wrote = False
    for idx in phase.events:
        event = state.events[idx]
        if event.kind != "w":
            continue
        wrote = True
        display = _display(event.access.loc_key)
        if state.meta[idx].skewed:
            blocking.append(f"{display} (skewed core index)")
        elif not _per_instance(event, state):
            blocking.append(f"{display} (shared/global write)")
        elif classification.get(display) != PER_CORE:
            blocking.append(
                f"{display} ({classification.get(display, 'unclassified')})"
            )
    if blocking:
        uniq = sorted(set(blocking))
        return False, "writes " + ", ".join(uniq[:4]) + (
            f" (+{len(uniq) - 4} more)" if len(uniq) > 4 else ""
        )
    if wrote:
        return True, "all writes stay on the owning core's element state"
    return True, "read-only (pure compute / broadcast reads)"


def build_schedule(
    state: _PhaseState,
    phases: List[Phase],
    edges: List[Edge],
    fields: List[FieldClass],
) -> Tuple[List[Stage], List[Finding], Dict[int, int]]:
    """Condense the phase DAG into stages; return SCHED001/002/003 too.

    Returns (stages, findings, phase id -> stage index).
    """
    adj: Dict[int, Set[int]] = {}
    for edge in edges:
        adj.setdefault(edge.src, set()).add(edge.dst)

    sccs = _tarjan(len(phases), adj)
    comp_of: Dict[int, int] = {}
    for cid, comp in enumerate(sccs):
        for pid in comp:
            comp_of[pid] = cid

    findings: List[Finding] = []
    for comp in sccs:
        if len(comp) < 2:
            continue
        names = sorted(phases[p].name for p in comp)
        first = phases[comp[0]].events[0]
        access = state.events[first].access
        findings.append(
            Finding(
                path=access.file,
                line=access.line,
                col=access.col,
                rule_id="SCHED001",
                message=(
                    "cycle in the per-cycle phase DAG: "
                    + " <-> ".join(names)
                    + " depend on each other's state within one cycle; "
                    "they fuse into a single serialized stage"
                ),
                fingerprint="SCHED001|" + "|".join(names),
            )
        )

    # Condensed DAG + longest-path levels (deterministic Kahn order).
    n_comp = len(sccs)
    cadj: Dict[int, Set[int]] = {}
    indeg: Dict[int, int] = {c: 0 for c in range(n_comp)}
    for edge in edges:
        a, b = comp_of[edge.src], comp_of[edge.dst]
        if a == b:
            continue
        if b not in cadj.setdefault(a, set()):
            cadj[a].add(b)
            indeg[b] += 1
    level: Dict[int, int] = {}
    ready = sorted(c for c in range(n_comp) if indeg[c] == 0)
    order: List[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        level.setdefault(node, 0)
        added = []
        for nxt in cadj.get(node, ()):
            level[nxt] = max(level.get(nxt, 0), level[node] + 1)
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                added.append(nxt)
        if added:
            ready = sorted(ready + added)

    classification = {f.key: f.classification for f in fields}

    # Group phases into (level, kind) stages.
    buckets: Dict[Tuple[int, int], List[Tuple[Phase, str]]] = {}
    fused_serial: Set[int] = {
        comp_of[p] for comp in sccs if len(comp) > 1 for p in comp
    }
    for phase in phases:
        cid = comp_of[phase.pid]
        lvl = level.get(cid, 0)
        if cid in fused_serial:
            ok, why = False, "fused dependence cycle (SCHED001)"
        else:
            ok, why = _phase_parallel(phase, state, classification)
        key = (lvl, 0 if ok else 1)
        buckets.setdefault(key, []).append((phase, why))

    stages: List[Stage] = []
    stage_of_phase: Dict[int, int] = {}
    for lvl, kind_rank in sorted(buckets):
        members = sorted(buckets[(lvl, kind_rank)], key=lambda p: p[0].name)
        kind = PARALLEL if kind_rank == 0 else SERIAL
        why = sorted({w for _, w in members})
        stage = Stage(
            index=len(stages),
            level=lvl,
            kind=kind,
            reason="; ".join(why[:3]) + (" …" if len(why) > 3 else ""),
            phases=[p for p, _ in members],
        )
        for p, _ in members:
            stage_of_phase[p.pid] = stage.index
        stages.append(stage)

    findings.extend(
        _detect_unordered_writers(state, phases, comp_of, cadj, sccs)
    )
    findings.extend(_detect_contradictions(state, fields))
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return stages, findings, stage_of_phase


def _reachable(cadj: Dict[int, Set[int]], src: int, dst: int) -> bool:
    seen = {src}
    frontier = [src]
    while frontier:
        node = frontier.pop()
        if node == dst:
            return True
        for nxt in cadj.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def _detect_unordered_writers(
    state: _PhaseState,
    phases: List[Phase],
    comp_of: Dict[int, int],
    cadj: Dict[int, Set[int]],
    sccs: List[List[int]],
) -> List[Finding]:
    """SCHED002: one field written by two phases no dependence orders."""
    writers: Dict[str, Dict[int, List[int]]] = {}
    for phase in phases:
        for idx in phase.events:
            event = state.events[idx]
            if event.kind != "w":
                continue
            writers.setdefault(event.access.loc_key, {}).setdefault(
                phase.pid, []
            ).append(idx)

    findings: List[Finding] = []
    for loc_key in sorted(writers):
        by_phase = writers[loc_key]
        pids = sorted(by_phase)
        if len(pids) < 2:
            continue
        display = _display(loc_key)
        for i, pa in enumerate(pids):
            for pb in pids[i + 1:]:
                ca, cb = comp_of[pa], comp_of[pb]
                if ca == cb:
                    continue  # fused cycle: already SCHED001
                if _reachable(cadj, ca, cb) or _reachable(cadj, cb, ca):
                    continue
                if all(
                    _exclusive(state.meta[a].branch, state.meta[b].branch)
                    for a in by_phase[pa]
                    for b in by_phase[pb]
                ):
                    continue  # mutually-exclusive if/else arms
                a_ev = state.events[by_phase[pa][0]].access
                b_ev = state.events[by_phase[pb][0]].access
                name_a, name_b = sorted(
                    (phases[pa].name, phases[pb].name)
                )
                findings.append(
                    Finding(
                        path=a_ev.file,
                        line=a_ev.line,
                        col=a_ev.col,
                        rule_id="SCHED002",
                        message=(
                            f"'{display}' is written by {name_a} and "
                            f"{name_b} with no dependence path ordering "
                            f"them (other write at {b_ev.file}:"
                            f"{b_ev.line}); the stage schedule cannot "
                            "sequence these updates"
                        ),
                        fingerprint=f"SCHED002|{display}|{name_a}|{name_b}",
                    )
                )
    return findings


def _detect_contradictions(
    state: _PhaseState, fields: List[FieldClass]
) -> List[Finding]:
    """SCHED003: per-core-classified field reached via a skewed index."""
    per_core = {f.key for f in fields if f.classification == PER_CORE}
    findings: List[Finding] = []
    seen: Set[str] = set()
    for idx, event in enumerate(state.events):
        if not state.meta[idx].skewed:
            continue
        display = _display(event.access.loc_key)
        if display not in per_core or display in seen:
            continue
        seen.add(display)
        findings.append(
            Finding(
                path=event.access.file,
                line=event.access.line,
                col=event.access.col,
                rule_id="SCHED003",
                message=(
                    f"'{display}' is classified per_core in the kernel "
                    "coupling report but is accessed through a skewed "
                    "core index inside the sweep — a cross-core edge "
                    "the coupling taxonomy cannot see"
                ),
                fingerprint=f"SCHED003|{display}",
            )
        )
    return findings
