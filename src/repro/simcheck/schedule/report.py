"""schedule-report.json construction and the human table view.

The report is the machine-checkable kernel contract: the SoA rewrite
implements exactly these stages in this order, vectorizes the
``per_core_parallel`` ones as array ops over ``(n_cores,)`` columns
using the inferred dtypes, and keeps the ``serialized`` ones as explicit
sequential steps.  Output is deterministic (sorted keys, sorted lists,
no timestamps) so two runs over the same tree produce identical bytes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from ..lint import Finding
from .dtypes import FieldType
from .phases import PARALLEL, Edge, Phase, Segment, Stage, _PhaseState

REPORT_VERSION = 1


def build_report(
    driver: str,
    segments: Sequence[Segment],
    state: _PhaseState,
    stages: Sequence[Stage],
    field_types: Sequence[FieldType],
    edges: Sequence[Edge],
    findings: Sequence[Finding],
    phases: Sequence[Phase],
) -> Dict[str, object]:
    per_rule: Dict[str, int] = {}
    for finding in findings:
        per_rule[finding.rule_id] = per_rule.get(finding.rule_id, 0) + 1
    parallel = sum(1 for s in stages if s.kind == PARALLEL)
    dtype_counts: Dict[str, int] = {}
    for ft in field_types:
        dtype_counts[ft.dtype] = dtype_counts.get(ft.dtype, 0) + 1

    name_of = {p.pid: p.name for p in phases}
    return {
        "version": REPORT_VERSION,
        "driver": driver,
        "summary": {
            "stages": len(stages),
            "parallel_stages": parallel,
            "serialized_stages": len(stages) - parallel,
            "phases": len(phases),
            "fields": len(field_types),
            "dtypes": dict(sorted(dtype_counts.items())),
            "sched_findings": dict(sorted(per_rule.items())),
        },
        "segments": [
            {"index": s.index, "line": s.line, "source": s.source}
            for s in segments
        ],
        "stages": [
            {
                "index": s.index,
                "level": s.level,
                "kind": s.kind,
                "reason": s.reason,
                "phases": [
                    {
                        "name": p.name,
                        "entry": p.label,
                        "segment": p.segment,
                        "reads": p.locs(state, "r"),
                        "writes": p.locs(state, "w"),
                    }
                    for p in s.phases
                ],
            }
            for s in stages
        ],
        "fields": [
            {
                "field": ft.key,
                "class": ft.owner,
                "attr": ft.attr,
                "classification": ft.classification,
                "dtype": ft.dtype,
                "shape": ft.shape,
                "kind": ft.kind,
                "evidence": ft.evidence,
                "bound": ft.bound,
                "enum_values": ft.enum_values,
            }
            for ft in field_types
        ],
        "edges": [
            {
                "src": name_of.get(e.src, str(e.src)),
                "dst": name_of.get(e.dst, str(e.dst)),
                "loc": e.loc,
                "kind": e.kind,
            }
            for e in edges
        ],
    }


def render_json(report: Dict[str, object]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_table(report: Dict[str, object]) -> str:
    """Human view: the stage schedule, then the field type table."""
    lines: List[str] = []
    summary = report["summary"]
    lines.append(f"driver: {report['driver']}")
    lines.append(
        f"stages: {summary['stages']} "
        f"({summary['parallel_stages']} per-core-parallel, "
        f"{summary['serialized_stages']} serialized)   "
        f"phases: {summary['phases']}   fields: {summary['fields']}"
    )
    lines.append("")

    for stage in report["stages"]:
        mark = "||" if stage["kind"] == PARALLEL else "->"
        lines.append(
            f"stage {stage['index']:>2} {mark} {stage['kind']:<17} "
            f"{stage['reason']}"
        )
        entries = sorted({p["entry"] for p in stage["phases"]})
        for entry in entries:
            writes = sorted({
                w for p in stage["phases"] if p["entry"] == entry
                for w in p["writes"]
            })
            suffix = f"  writes: {', '.join(writes[:4])}" if writes else ""
            if len(writes) > 4:
                suffix += f" (+{len(writes) - 4})"
            lines.append(f"          {entry}{suffix}")
    lines.append("")

    rows = [
        (f["field"], f["dtype"], f["shape"], f["kind"])
        for f in report["fields"]
    ]
    if rows:
        width_key = max(len(r[0]) for r in rows)
        width_dt = max(len(r[1]) for r in rows)
        width_sh = max(len(r[2]) for r in rows)
        header = (
            f"{'FIELD':<{width_key}}  {'DTYPE':<{width_dt}}  "
            f"{'SHAPE':<{width_sh}}  KIND"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for key, dtype, shape, kind in rows:
            lines.append(
                f"{key:<{width_key}}  {dtype:<{width_dt}}  "
                f"{shape:<{width_sh}}  {kind}"
            )
    return "\n".join(lines) + "\n"
