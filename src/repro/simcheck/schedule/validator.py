"""Opt-in runtime validation of the static stage schedule.

The static schedule claims: within one cycle, serialized stages execute
in schedule order, and every per-core-parallel stage runs inside the
serialized brackets around it.  :class:`ScheduleValidator` checks that
claim against a *real* run — it walks the simulator's object graph,
wraps every bound method named as a stage entry with a pass-through
recorder (instance-attribute shadowing, so the driver's hoisted
``begin_cycle = controller.begin_cycle`` bindings pick the wrapper up),
and replays the recorded call order against the report.

Per-core-parallel stages commute across cores — the interpreter loop
interleaves ``core0.step, cycle_power, core1.step, ...`` and that is
fine, because the schedule only promises each *core's* chain is
ordered.  So parallel calls are checked against the serialized
watermark but never raise it; a serialized entry running early (or a
parallel entry running after a later serialized stage, e.g. a stray
``core.step`` after ``end_cycle``) is a violation.

Cycle boundaries come from the entries themselves: per-cycle entries
take the cycle number as their first positional argument
(``begin_cycle(cycle)``, ``step(cycle, ...)``); when the number
increases, the watermark resets.

The recorder is observation-only: wrappers forward args and return
values untouched, so a validated run produces the same ``SimResult``
as an unvalidated one.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = ["ScheduleValidator"]

#: Attribute names never traversed while walking the object graph.
_SKIP_ATTRS = {"cfg", "config", "program", "rng"}

#: Object-graph traversal bound (defensive; the sim graph is tiny).
_MAX_OBJECTS = 4096


class ScheduleValidator:
    """Wraps stage-entry methods on a live simulator and checks order."""

    def __init__(self, report: Dict[str, Any]) -> None:
        driver = report.get("driver", "")
        #: entry -> (stage index, is_serialized)
        self.entries: Dict[str, Tuple[int, bool]] = {}
        for stage in report.get("stages", []):
            serial = stage.get("kind") != "per_core_parallel"
            for phase in stage.get("phases", []):
                entry = phase.get("entry", "")
                if "." not in entry or entry == driver:
                    continue
                prev = self.entries.get(entry)
                if prev is None or stage["index"] < prev[0]:
                    self.entries[entry] = (stage["index"], serial)
        serial_stages = [s for s, is_s in self.entries.values() if is_s]
        self.min_serial = min(serial_stages, default=0)
        self.calls: List[Tuple[Optional[int], int, bool, str]] = []
        self.wrapped = 0

    # -- attach ------------------------------------------------------------

    def attach(self, sim: Any) -> "ScheduleValidator":
        """Instrument every reachable object whose class has an entry."""
        by_class: Dict[str, List[str]] = {}
        for entry in self.entries:
            cls, _, meth = entry.partition(".")
            by_class.setdefault(cls, []).append(meth)

        seen: Set[int] = set()
        frontier: List[Any] = [sim]
        while frontier and len(seen) < _MAX_OBJECTS:
            obj = frontier.pop()
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            for name in self._class_chain(obj):
                for meth in by_class.get(name, ()):
                    self._wrap(obj, f"{name}.{meth}", meth)
            d = getattr(obj, "__dict__", None)
            if not isinstance(d, dict):
                continue
            for attr, value in d.items():
                if attr.startswith("__") or attr in _SKIP_ATTRS:
                    continue
                if isinstance(value, (list, tuple)):
                    frontier.extend(
                        v for v in value if hasattr(v, "__dict__")
                    )
                elif isinstance(value, dict):
                    frontier.extend(
                        v for v in value.values() if hasattr(v, "__dict__")
                    )
                elif hasattr(value, "__dict__"):
                    frontier.append(value)
        return self

    @staticmethod
    def _class_chain(obj: Any) -> List[str]:
        try:
            return [c.__name__ for c in type(obj).__mro__[:-1]]
        except AttributeError:  # pragma: no cover - exotic objects
            return [type(obj).__name__]

    def _wrap(self, obj: Any, entry: str, meth: str) -> None:
        fn = getattr(obj, meth, None)
        if fn is None or not callable(fn):
            return
        if getattr(fn, "_schedule_validator_wrapped", False):
            return
        stage, serial = self.entries[entry]
        calls = self.calls

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            cycle = (
                args[0]
                if args and type(args[0]) is int  # bool is not a cycle
                else None
            )
            calls.append((cycle, stage, serial, entry))
            return fn(*args, **kwargs)

        wrapper._schedule_validator_wrapped = True  # type: ignore[attr-defined]
        try:
            setattr(obj, meth, wrapper)
        except AttributeError:  # pragma: no cover - slots/frozen objects
            return
        self.wrapped += 1

    # -- verdict -----------------------------------------------------------

    def violations(self, limit: int = 20) -> List[str]:
        """Replay the recorded calls against the static stage order."""
        out: List[str] = []
        watermark = -1
        watermark_entry = ""
        last_cycle: Optional[int] = None
        for cycle, stage, serial, entry in self.calls:
            if cycle is not None and (
                last_cycle is None or cycle > last_cycle
            ):
                watermark = -1
                watermark_entry = ""
                last_cycle = cycle
            elif (
                serial
                and cycle is None
                and stage == self.min_serial
                and stage < watermark
            ):
                # Cycle-less first serialized entry: rollover fallback.
                watermark = -1
                watermark_entry = ""
            if stage < watermark:
                msg = (
                    f"cycle {last_cycle}: {entry} (stage {stage}) ran "
                    f"after {watermark_entry} (stage {watermark}); "
                    "observed order does not refine the static schedule"
                )
                if msg not in out:
                    out.append(msg)
                    if len(out) >= limit:
                        break
            elif serial and stage > watermark:
                watermark = stage
                watermark_entry = entry
        return out
