"""Synchronization primitives: spinlocks and sense-reversing barriers."""

from .primitives import (
    Barrier,
    SpinLock,
    SyncDomain,
    barrier_count_address,
    barrier_sense_address,
    lock_address,
)

__all__ = [
    "Barrier",
    "SpinLock",
    "SyncDomain",
    "barrier_count_address",
    "barrier_sense_address",
    "lock_address",
]
