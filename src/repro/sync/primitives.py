"""Shared-memory synchronization primitives.

Spinlocks and sense-reversing barriers as the workloads use them.  The
primitives live at addresses in the globally shared region, so every
operation on them flows through the MOESI directory and the mesh: a
release invalidates the spinners' cached copies, the hand-off to the
next owner pays the coherence transfer latency between the two cores,
and barrier arrivals serialise on the count line.

Lock hand-off is FIFO (ticket-lock behaviour): deterministic, fair,
and reproducible — a documented simplification versus the raw
test-and-set race of the originals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from ..noc.mesh import Mesh2D
from ..trace.generator import SHARED_BASE

#: Synchronization variables live above all program data and are padded
#: to distinct cache lines (no false sharing).
SYNC_REGION = SHARED_BASE + (1 << 30)
_LOCK_STRIDE = 256
_BARRIER_STRIDE = 512


def lock_address(lock_id: int) -> int:
    return SYNC_REGION + lock_id * _LOCK_STRIDE


def barrier_count_address(barrier_id: int) -> int:
    return SYNC_REGION + (1 << 28) + barrier_id * _BARRIER_STRIDE


def barrier_sense_address(barrier_id: int) -> int:
    return barrier_count_address(barrier_id) + 64


@dataclass
class SpinLock:
    """One spinlock and its waiting queue."""

    lock_id: int
    owner: Optional[int] = None
    waiters: Deque[int] = field(default_factory=deque)
    #: core -> cycle at which its pending grant lands (hand-off latency).
    grant_at: Dict[int, int] = field(default_factory=dict)
    acquires: int = 0
    contended_acquires: int = 0

    @property
    def addr(self) -> int:
        return lock_address(self.lock_id)


@dataclass
class Barrier:
    """One sense-reversing barrier."""

    barrier_id: int
    num_threads: int
    arrived: int = 0
    generation: int = 0
    #: cores currently waiting on this barrier (cleared on release).
    waiting: set = field(default_factory=set)
    #: generation -> (release cycle, releasing core)
    release: Dict[int, tuple] = field(default_factory=dict)
    episodes: int = 0

    @property
    def count_addr(self) -> int:
        return barrier_count_address(self.barrier_id)

    @property
    def sense_addr(self) -> int:
        return barrier_sense_address(self.barrier_id)


class SyncDomain:
    """All locks and barriers of one running program.

    The per-core sync units call in here when their injected atomic /
    store instructions commit; the domain serialises ownership and
    computes hand-off / wake-up latencies over the mesh.
    """

    def __init__(self, num_threads: int, mesh: Mesh2D) -> None:
        if num_threads <= 0:
            raise ValueError("need at least one thread")
        self.num_threads = num_threads
        self.mesh = mesh
        self.locks: Dict[int, SpinLock] = {}
        self.barriers: Dict[int, Barrier] = {}
        #: Optional :class:`repro.telemetry.TelemetrySession` hook.
        self._telemetry = None

    # -- object lookup -------------------------------------------------------

    def lock(self, lock_id: int) -> SpinLock:
        lk = self.locks.get(lock_id)
        if lk is None:
            lk = SpinLock(lock_id)
            self.locks[lock_id] = lk
        return lk

    def barrier(self, barrier_id: int) -> Barrier:
        b = self.barriers.get(barrier_id)
        if b is None:
            b = Barrier(barrier_id, self.num_threads)
            self.barriers[barrier_id] = b
        return b

    # -- lock protocol ---------------------------------------------------------

    def try_acquire(self, lock_id: int, core: int, now: int) -> bool:
        """Core's test&set committed at ``now``.  True = got the lock."""
        lk = self.lock(lock_id)
        # The lock is free only if nobody holds it, nobody queues for it
        # and no hand-off grant is in flight (a granted waiter owns the
        # next turn even before its grant lands).
        if lk.owner is None and not lk.waiters and not lk.grant_at:
            lk.owner = core
            lk.acquires += 1
            if self._telemetry is not None:
                self._telemetry.on_lock("acquire", lock_id, core)
            return True
        if core not in lk.waiters and lk.owner != core:
            lk.waiters.append(core)
            lk.contended_acquires += 1
            if self._telemetry is not None:
                self._telemetry.on_lock("contend", lock_id, core)
        return False

    def lock_granted(self, lock_id: int, core: int, now: int) -> bool:
        """Poll whether a queued core's pending grant has landed."""
        lk = self.lock(lock_id)
        at = lk.grant_at.get(core)
        if at is not None and now >= at:
            del lk.grant_at[core]
            lk.owner = core
            lk.acquires += 1
            if self._telemetry is not None:
                self._telemetry.on_lock("handoff", lock_id, core)
            return True
        return False

    def release(self, lock_id: int, core: int, now: int) -> None:
        """Core's releasing store committed at ``now``."""
        lk = self.lock(lock_id)
        if lk.owner != core:
            raise RuntimeError(
                f"core {core} releasing lock {lock_id} owned by {lk.owner}"
            )
        lk.owner = None
        if self._telemetry is not None:
            self._telemetry.on_lock("release", lock_id, core)
        if lk.waiters:
            winner = lk.waiters.popleft()
            # Hand-off: the spinner's re-read misses, the directory
            # forwards the line from the releaser, then the winner's
            # test&set upgrades it.  Two transactions' worth of latency.
            hops = self.mesh.hop_count(core, winner)
            handoff = 2 * self.mesh.traversal_latency(max(1, hops))
            lk.grant_at[winner] = now + handoff

    # -- barrier protocol ----------------------------------------------------------

    def barrier_arrive(self, barrier_id: int, core: int, now: int) -> bool:
        """Core's arrival (atomic inc) committed.  True = last arrival."""
        b = self.barrier(barrier_id)
        b.arrived += 1
        b.waiting.add(core)
        if self._telemetry is not None:
            self._telemetry.on_barrier("arrive", barrier_id, core)
        if b.arrived >= b.num_threads:
            # Last thread flips the sense; everyone else wakes after the
            # invalidation + refetch reaches them.
            b.release[b.generation] = (now, core)
            b.arrived = 0
            b.waiting.clear()
            b.generation += 1
            b.episodes += 1
            if self._telemetry is not None:
                self._telemetry.on_barrier("release", barrier_id, core)
            return True
        return False

    def barrier_released(
        self, barrier_id: int, core: int, generation: int, now: int
    ) -> bool:
        """Poll whether ``generation`` was released and the wake reached us."""
        b = self.barrier(barrier_id)
        rel = b.release.get(generation)
        if rel is None:
            return False
        rel_cycle, releaser = rel
        hops = self.mesh.hop_count(releaser, core)
        wake = rel_cycle + self.mesh.traversal_latency(max(1, hops))
        return now >= wake

    # -- introspection (dynamic policy selector, Section IV.B) -------------------

    def cores_waiting_on_locks(self) -> int:
        return sum(len(lk.waiters) + len(lk.grant_at) for lk in self.locks.values())

    def spinning_cores(self) -> set:
        """Cores currently busy-waiting on a lock or a barrier.

        Lock waiters (queued or with a grant in flight) and barrier
        arrivals that are not the releaser.  Used by the spin-gating
        extension (the paper's future work) to park spinners.
        """
        out: set = set()
        for lk in self.locks.values():
            out.update(lk.waiters)
            out.update(lk.grant_at.keys())
        for b in self.barriers.values():
            out.update(b.waiting)
        return out

    def contended_lock_holders(self) -> list:
        """Cores currently inside a critical section others wait for.

        These are the threads whose progress gates the whole application
        — the paper's ToOne policy and dynamic selector give them the
        spare-token pool ("priority to threads that enter a critical
        section", Section IV.B).
        """
        return [
            lk.owner
            for lk in self.locks.values()
            if lk.owner is not None and (lk.waiters or lk.grant_at)
        ]

    def cores_waiting_on_barriers(self) -> int:
        return sum(b.arrived for b in self.barriers.values())
