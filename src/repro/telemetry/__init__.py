"""Observability for the simulator: events, metrics, trace export.

See DESIGN §8 for the event taxonomy and the zero-cost-when-disabled
probe contract.  Enable with ``CMPConfig(telemetry=True)`` or
``REPRO_TELEMETRY=1``; drive from the command line with
``python -m repro.telemetry run``.
"""

from .events import Event, EventBus, EventKind, RingBuffer
from .export import (
    build_chrome_trace,
    load_power_timeline,
    peak_power,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
    write_power_timeline,
)
from .metrics import (
    CYCLE_BUCKETS,
    LATENCY_BUCKETS,
    TOKEN_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .session import TELEMETRY_PHASES, TelemetrySession, telemetry_enabled
from .summary import phase_breakdown_table, summarize

__all__ = [
    "Event",
    "EventBus",
    "EventKind",
    "RingBuffer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CYCLE_BUCKETS",
    "LATENCY_BUCKETS",
    "TOKEN_BUCKETS",
    "TelemetrySession",
    "TELEMETRY_PHASES",
    "telemetry_enabled",
    "build_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
    "write_power_timeline",
    "load_power_timeline",
    "peak_power",
    "phase_breakdown_table",
    "summarize",
]
