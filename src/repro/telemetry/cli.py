"""``python -m repro.telemetry`` — trace one run, validate traces.

``run`` simulates one recipe with telemetry enabled (always uncached —
a cache hit would have no live event stream) and writes any of the
exporter outputs::

    python -m repro.telemetry run --figure fig9 --scale tiny \
        --out trace.json --metrics metrics.json --timeline power.ndjson

``validate`` re-checks a written trace against the Chrome
``trace_event`` schema (the CI gate)::

    python -m repro.telemetry validate trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..config import CMPConfig
from ..workloads import build_program
from .export import (
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
    write_power_timeline,
)
from .summary import summarize

__all__ = ["main", "build_parser", "pick_recipe", "run_traced"]


def pick_recipe(figure: str):
    """The figure's first PTB recipe (or first recipe, for non-PTB
    figures) — the run whose token flow the figure is about."""
    from ..analysis.experiments import FIGURE_RECIPES

    decl = FIGURE_RECIPES.get(figure)
    if decl is None:
        raise SystemExit(
            f"unknown figure {figure!r}; available: "
            f"{', '.join(sorted(FIGURE_RECIPES))}"
        )
    recipes = decl()
    for recipe in recipes:
        if recipe.technique == "ptb":
            return recipe
    return recipes[0]


def run_traced(
    benchmark: str,
    cores: int,
    technique: str = "ptb",
    policy: Optional[str] = "toall",
    budget_fraction: Optional[float] = 0.5,
    scale: str = "tiny",
    max_cycles: int = 400_000,
    seed: int = 2011,
):
    """Build and run one telemetry-enabled simulation.

    Returns ``(sim, result)``; the session is ``sim.telemetry``.
    """
    from ..sim.cmp import CMPSimulator

    cfg = CMPConfig(num_cores=cores).with_telemetry()
    program = build_program(benchmark, cores, scale=scale, seed=seed)
    sim = CMPSimulator(
        cfg, program, technique=technique,
        budget_fraction=budget_fraction, ptb_policy=policy, seed=seed,
    )
    result = sim.run(max_cycles)
    return sim, result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.telemetry",
        description="Trace a simulation run; validate written traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one recipe with telemetry")
    run.add_argument("--figure", default="fig9",
                     help="figure whose first PTB recipe to trace")
    run.add_argument("--benchmark", help="override the recipe's benchmark")
    run.add_argument("--cores", type=int, help="override the core count")
    run.add_argument("--technique", help="override the technique")
    run.add_argument("--policy", help="override the PTB policy")
    run.add_argument("--scale", default="tiny",
                     help="workload scale (default tiny)")
    run.add_argument("--max-cycles", type=int, default=400_000)
    run.add_argument("--seed", type=int, default=2011)
    run.add_argument("--out", help="write Chrome/Perfetto trace JSON here")
    run.add_argument("--metrics", help="write metrics JSON here")
    run.add_argument("--metrics-csv", help="write flat metrics CSV here")
    run.add_argument("--timeline",
                     help="write per-cycle power NDJSON here")
    run.add_argument("--include-micro", action="store_true",
                     help="include MOESI/mesh micro-events in the trace")
    run.add_argument("--quiet", action="store_true",
                     help="suppress the summary table")

    val = sub.add_parser("validate",
                         help="check a trace file against the schema")
    val.add_argument("trace", help="path to a trace_event JSON file")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    recipe = pick_recipe(args.figure)
    benchmark = args.benchmark or recipe.benchmark
    cores = args.cores if args.cores is not None else recipe.cores
    technique = args.technique or recipe.technique
    policy = args.policy if args.policy is not None else recipe.policy
    sim, result = run_traced(
        benchmark, cores, technique=technique, policy=policy,
        budget_fraction=recipe.budget_fraction, scale=args.scale,
        max_cycles=args.max_cycles, seed=args.seed,
    )
    session = sim.telemetry
    if session is None:  # pragma: no cover - run_traced always enables
        raise SystemExit("simulator did not record telemetry")
    wrote: List[str] = []
    if args.out:
        trace = write_chrome_trace(session, args.out,
                                   include_micro=args.include_micro)
        problems = validate_chrome_trace(trace)
        if problems:
            for p in problems:
                print(f"schema: {p}", file=sys.stderr)
            return 1
        wrote.append(args.out)
    if args.metrics:
        write_metrics_json(session, args.metrics)
        wrote.append(args.metrics)
    if args.metrics_csv:
        write_metrics_csv(session.metrics, args.metrics_csv)
        wrote.append(args.metrics_csv)
    if args.timeline:
        write_power_timeline(session, args.timeline)
        wrote.append(args.timeline)
    if not args.quiet:
        print(
            f"{benchmark} x{cores} {technique}"
            + (f"/{policy}" if policy else "")
            + f" @ {args.scale}: {result.cycles} cycles"
        )
        print(summarize(session, result))
    for path in wrote:
        print(f"wrote {path}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        with open(args.trace) as fh:
            trace = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.trace}: {exc}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(trace)
    if problems:
        for p in problems:
            print(f"{args.trace}: {p}", file=sys.stderr)
        return 1
    events = len(trace.get("traceEvents", []))
    print(f"{args.trace}: OK ({events} trace events)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_validate(args)
