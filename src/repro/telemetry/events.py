"""Typed simulator events, the ring buffer, and the event bus.

The telemetry subsystem observes the simulator through *events*: small,
typed, timestamped records published by probe call-sites scattered
through every layer (tokens, budget, DVFS, coherence, NoC, sync,
pipeline).  Publishing is designed to be cheap enough to leave wired in
permanently:

* an event is one :class:`Event` named tuple (no dicts, no kwargs on
  the hot path);
* storage is a fixed-capacity :class:`RingBuffer` per event kind, so a
  chatty kind (MOESI transitions, mesh messages) can never evict the
  rare control-plane events (token grants, DVFS transitions) a trace
  reader actually navigates by;
* when the buffer wraps, the oldest events are dropped and counted —
  telemetry degrades by forgetting history, never by stopping the run.

When telemetry is disabled (the default) none of this is constructed:
probe sites hold ``_telemetry = None`` and reduce to one ``is not
None`` test on a pre-loaded local, mirroring the
:mod:`repro.simcheck.sanitizers` zero-cost contract.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional

__all__ = ["EventKind", "Event", "RingBuffer", "EventBus"]


class EventKind(IntEnum):
    """The event taxonomy (see DESIGN §8)."""

    #: A core reported spare tokens to the PTB balancer (value = tokens).
    TOKEN_PLEDGE = 0
    #: The balancer delivered tokens to a core (value = tokens).
    TOKEN_GRANT = 1
    #: A core's smoothed power rose above its budget line (value = power).
    BUDGET_ENTER = 2
    #: ... and fell back under it (value = power).
    BUDGET_EXIT = 3
    #: The whole CMP crossed the global budget (value = total power).
    GLOBAL_BUDGET_ENTER = 4
    GLOBAL_BUDGET_EXIT = 5
    #: A DVFS controller started a mode transition (value = target mode,
    #: detail = "old->new").
    DVFS_MODE = 6
    #: A core's level-2 throttle changed (value = Technique int).
    THROTTLE = 7
    #: A MOESI directory transaction (detail = GetS/GetM/Evict,
    #: value = latency in cycles).
    MOESI = 8
    #: A message entered the mesh (value = flit-hops).
    MESH_MSG = 9
    #: A core started busy-waiting (detail = "lock"/"barrier").
    SPIN_ENTER = 10
    SPIN_EXIT = 11
    #: Lock protocol: acquire/contend/handoff/release (value = lock id).
    LOCK_ACQUIRE = 12
    LOCK_CONTEND = 13
    LOCK_HANDOFF = 14
    LOCK_RELEASE = 15
    #: Barrier protocol (value = barrier id).
    BARRIER_ARRIVE = 16
    BARRIER_RELEASE = 17
    #: Periodic ROB occupancy sample (value = occupancy).
    ROB_SAMPLE = 18
    #: The run hit ``max_cycles`` before every thread completed.
    TRUNCATED = 19


class Event(NamedTuple):
    """One timestamped simulator event.

    ``core`` is -1 for CMP-global events (the balancer, global budget
    crossings, truncation).  ``value`` carries the kind-specific number
    (tokens, power, latency...); ``detail`` an optional short string.
    """

    cycle: int
    kind: EventKind
    core: int
    value: float
    detail: Optional[str]


class RingBuffer:
    """Fixed-capacity FIFO that drops (and counts) the oldest entries.

    Append is O(1) with no allocation once full; iteration yields the
    retained entries oldest-first.
    """

    __slots__ = ("capacity", "_buf", "_head", "_n", "dropped")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._buf: List[Optional[Event]] = [None] * capacity
        self._head = 0          # index of the oldest retained entry
        self._n = 0             # retained entries
        self.dropped = 0        # evicted-by-wraparound count

    def append(self, item) -> None:
        cap = self.capacity
        if self._n < cap:
            self._buf[(self._head + self._n) % cap] = item
            self._n += 1
        else:
            self._buf[self._head] = item
            self._head = (self._head + 1) % cap
            self.dropped += 1

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator:
        buf, cap, head = self._buf, self.capacity, self._head
        for i in range(self._n):
            yield buf[(head + i) % cap]

    def clear(self) -> None:
        self._buf = [None] * self.capacity
        self._head = 0
        self._n = 0
        self.dropped = 0


#: Default per-kind ring capacity.
DEFAULT_CAPACITY = 1 << 16

#: Kind-specific capacities: control-plane events are rare but precious
#: (trace checks sum them), micro-events are plentiful but individually
#: disposable.
KIND_CAPACITIES: Dict[EventKind, int] = {
    EventKind.TOKEN_PLEDGE: 1 << 19,
    EventKind.TOKEN_GRANT: 1 << 19,
    EventKind.MOESI: 1 << 14,
    EventKind.MESH_MSG: 1 << 14,
    EventKind.ROB_SAMPLE: 1 << 15,
}


class EventBus:
    """Per-kind ring buffers plus whole-run event counters.

    ``emit`` appends to the kind's ring and bumps its counter; the
    counters are never truncated, so aggregate checks (e.g. "granted
    tokens sum to the balancer's deliveries") stay exact even after the
    rings wrap.  Subscribers — rarely used; the exporters read the rings
    post-run — receive every event of their kind synchronously.
    """

    def __init__(
        self,
        default_capacity: int = DEFAULT_CAPACITY,
        capacities: Optional[Dict[EventKind, int]] = None,
    ) -> None:
        caps = dict(KIND_CAPACITIES)
        if capacities:
            caps.update(capacities)
        self._rings: Dict[EventKind, RingBuffer] = {
            kind: RingBuffer(caps.get(kind, default_capacity))
            for kind in EventKind
        }
        self.counts: Dict[EventKind, int] = {kind: 0 for kind in EventKind}
        #: Sum of ``value`` per kind (exact for integer-valued kinds).
        self.value_sums: Dict[EventKind, float] = {
            kind: 0.0 for kind in EventKind
        }
        self._subscribers: Dict[EventKind, List[Callable[[Event], None]]] = {}

    def emit(
        self,
        cycle: int,
        kind: EventKind,
        core: int = -1,
        value: float = 0.0,
        detail: Optional[str] = None,
    ) -> None:
        ev = Event(cycle, kind, core, value, detail)
        self._rings[kind].append(ev)
        self.counts[kind] += 1
        self.value_sums[kind] += value
        subs = self._subscribers.get(kind)
        if subs:
            for fn in subs:
                fn(ev)

    def subscribe(self, kind: EventKind, fn: Callable[[Event], None]) -> None:
        self._subscribers.setdefault(kind, []).append(fn)

    def ring(self, kind: EventKind) -> RingBuffer:
        return self._rings[kind]

    def dropped(self, kind: EventKind) -> int:
        return self._rings[kind].dropped

    def events(self, *kinds: EventKind) -> Iterator[Event]:
        """Retained events of ``kinds`` (all kinds if empty), in cycle
        order (stable across kinds: ties broken by kind, then core)."""
        wanted = kinds if kinds else tuple(EventKind)
        merged: List[Event] = []
        for kind in wanted:
            merged.extend(self._rings[kind])
        merged.sort(key=lambda e: (e.cycle, e.kind, e.core))
        return iter(merged)

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    @property
    def total_dropped(self) -> int:
        return sum(r.dropped for r in self._rings.values())
