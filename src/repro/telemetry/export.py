"""Exporters: Chrome/Perfetto traces, CSV/JSON metrics, power NDJSON.

Three consumers, three formats:

* **Perfetto / chrome://tracing** — ``build_chrome_trace`` renders the
  event bus as Chrome ``trace_event`` JSON (the legacy JSON format both
  UIs load directly): one thread track per core, one for the PTB
  balancer, counter tracks for power and ROB occupancy.  Cycle
  timestamps become microseconds via ``TechConfig.cycle_time_ns``.
* **Spreadsheets / diffing** — ``write_metrics_csv`` /
  ``write_metrics_json`` flatten the :class:`~repro.telemetry.metrics.
  MetricsRegistry`.
* **repro.analysis** — ``write_power_timeline`` emits one NDJSON row
  per sampled cycle (total, smoothed total, per-core watts);
  ``load_power_timeline`` reads it back.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, List, Optional

from ..units import Watts
from .events import Event, EventKind

__all__ = [
    "build_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
    "write_power_timeline",
    "load_power_timeline",
    "peak_power",
]

#: pid shared by every track of one simulated CMP.
_PID = 0

#: Event kinds rendered as paired duration slices ("B"/"E") on a core
#: track: (begin kind, end kind, slice name).
_SPANS = (
    (EventKind.SPIN_ENTER, EventKind.SPIN_EXIT, "spin"),
    (EventKind.BUDGET_ENTER, EventKind.BUDGET_EXIT, "over-budget"),
)

#: Instant-event kinds drawn on the emitting core's track.
_CORE_INSTANTS = {
    EventKind.DVFS_MODE: "dvfs",
    EventKind.THROTTLE: "throttle",
    EventKind.LOCK_ACQUIRE: "lock.acquire",
    EventKind.LOCK_CONTEND: "lock.contend",
    EventKind.LOCK_HANDOFF: "lock.handoff",
    EventKind.LOCK_RELEASE: "lock.release",
    EventKind.BARRIER_ARRIVE: "barrier.arrive",
    EventKind.BARRIER_RELEASE: "barrier.release",
}

#: High-volume micro-architecture kinds, included only on request.
_MICRO_INSTANTS = {
    EventKind.MOESI: "moesi",
    EventKind.MESH_MSG: "mesh",
}


def build_chrome_trace(session, include_micro: bool = False) -> Dict:
    """Render ``session`` as a Chrome ``trace_event`` JSON object."""
    cfg = session.cfg
    ns_per_cycle = cfg.tech.cycle_time_ns

    def ts(cycle: int) -> float:
        return cycle * ns_per_cycle / 1000.0  # µs

    n = session.num_cores
    balancer_tid = n
    events: List[Dict] = []

    def meta(kind: str, tid: Optional[int] = None, **args) -> None:
        ev: Dict = {"name": kind, "ph": "M", "pid": _PID, "args": args}
        if tid is not None:
            ev["tid"] = tid
        events.append(ev)

    meta("process_name",
         name=f"repro CMP ({n} cores @ {cfg.tech.frequency_mhz} MHz)")
    for i in range(n):
        meta("thread_name", tid=i, name=f"core {i}")
        meta("thread_sort_index", tid=i, sort_index=i)
    meta("thread_name", tid=balancer_tid, name="PTB balancer")
    meta("thread_sort_index", tid=balancer_tid, sort_index=n)

    body: List[Dict] = []
    bus = session.bus

    # Duration slices: pair each ENTER with the core's next EXIT.  An
    # unclosed slice at end-of-run is closed at the last known cycle so
    # the B/E stacks stay balanced (Perfetto rejects dangling begins).
    end_ts = ts(session.now + 1)
    for begin_kind, end_kind, name in _SPANS:
        open_ev: Dict[int, Event] = {}
        for ev in bus.events(begin_kind, end_kind):
            if ev.kind == begin_kind:
                open_ev[ev.core] = ev
            else:
                start = open_ev.pop(ev.core, None)
                if start is None:
                    continue  # begin was evicted by ring wraparound
                slice_name = (f"{name}:{start.detail}" if start.detail
                              else name)
                body.append({"name": slice_name, "ph": "B", "pid": _PID,
                             "tid": ev.core, "ts": ts(start.cycle),
                             "args": {"value": start.value}})
                body.append({"name": slice_name, "ph": "E", "pid": _PID,
                             "tid": ev.core, "ts": ts(ev.cycle)})
        for core, start in sorted(open_ev.items()):
            slice_name = (f"{name}:{start.detail}" if start.detail
                          else name)
            body.append({"name": slice_name, "ph": "B", "pid": _PID,
                         "tid": core, "ts": ts(start.cycle),
                         "args": {"value": start.value}})
            body.append({"name": slice_name, "ph": "E", "pid": _PID,
                         "tid": core, "ts": end_ts})

    # Token flow on the balancer track.
    for ev in bus.events(EventKind.TOKEN_PLEDGE, EventKind.TOKEN_GRANT):
        name = ("token.pledge" if ev.kind == EventKind.TOKEN_PLEDGE
                else "token.grant")
        body.append({"name": name, "ph": "i", "pid": _PID,
                     "tid": balancer_tid, "ts": ts(ev.cycle), "s": "t",
                     "args": {"core": ev.core, "tokens": ev.value}})

    # Global budget crossings + truncation, also on the balancer track.
    for ev in bus.events(EventKind.GLOBAL_BUDGET_ENTER,
                         EventKind.GLOBAL_BUDGET_EXIT,
                         EventKind.TRUNCATED):
        name = {
            EventKind.GLOBAL_BUDGET_ENTER: "global.over_budget",
            EventKind.GLOBAL_BUDGET_EXIT: "global.under_budget",
            EventKind.TRUNCATED: "TRUNCATED",
        }[ev.kind]
        body.append({"name": name, "ph": "i", "pid": _PID,
                     "tid": balancer_tid, "ts": ts(ev.cycle), "s": "p",
                     "args": {"value": ev.value}})

    instants = dict(_CORE_INSTANTS)
    if include_micro:
        instants.update(_MICRO_INSTANTS)
    for kind, name in instants.items():
        for ev in bus.events(kind):
            tid = ev.core if ev.core >= 0 else balancer_tid
            args: Dict = {"value": ev.value}
            if ev.detail:
                args["detail"] = ev.detail
            body.append({"name": name, "ph": "i", "pid": _PID, "tid": tid,
                         "ts": ts(ev.cycle), "s": "t", "args": args})

    # Counter tracks: per-core + total power from the timeline, ROB
    # occupancy from the periodic samples.
    for cycle, total, smoothed, powers in session.timeline:
        t = ts(cycle)
        body.append({"name": "power (W)", "ph": "C", "pid": _PID, "ts": t,
                     "args": {f"core{i}": p for i, p in enumerate(powers)}})
        body.append({"name": "total power (W)", "ph": "C", "pid": _PID,
                     "ts": t, "args": {"raw": total, "smoothed": smoothed}})
    for ev in bus.events(EventKind.ROB_SAMPLE):
        body.append({"name": "rob occupancy", "ph": "C", "pid": _PID,
                     "ts": ts(ev.cycle),
                     "args": {f"core{ev.core}": ev.value}})

    body.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": events + body,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro.telemetry",
            "frequency_mhz": cfg.tech.frequency_mhz,
            "num_cores": n,
            "events_total": bus.total_events,
            "events_dropped": bus.total_dropped,
        },
    }


def write_chrome_trace(session, path: str,
                       include_micro: bool = False) -> Dict:
    trace = build_chrome_trace(session, include_micro=include_micro)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return trace


_KNOWN_PH = {"B", "E", "i", "I", "C", "M", "X"}


def validate_chrome_trace(trace: object) -> List[str]:
    """Check ``trace`` against the Chrome ``trace_event`` JSON schema.

    Returns a list of problems (empty means the trace is loadable by
    Perfetto / chrome://tracing).  Checked: top-level shape, per-event
    required keys, known phases, numeric non-negative timestamps, and
    balanced B/E stacks per (pid, tid).
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    depth: Dict[tuple, int] = {}
    for idx, ev in enumerate(events):
        where = f"traceEvents[{idx}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PH:
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if ph == "M":
            if not isinstance(ev.get("args"), dict):
                problems.append(f"{where}: metadata event needs args")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph in ("B", "E", "i", "I", "X") and not isinstance(
                ev.get("tid"), int):
            problems.append(f"{where}: missing integer tid")
        if ph == "B":
            depth[(ev.get("pid"), ev.get("tid"))] = depth.get(
                (ev.get("pid"), ev.get("tid")), 0) + 1
        elif ph == "E":
            key = (ev.get("pid"), ev.get("tid"))
            if depth.get(key, 0) <= 0:
                problems.append(f"{where}: E without matching B on {key}")
            else:
                depth[key] -= 1
        elif ph == "C" and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: counter event needs args")
    for key, d in sorted(depth.items()):
        if d:
            problems.append(f"unbalanced B/E on (pid, tid)={key}: {d} open")
    return problems


def write_metrics_csv(registry, path: str) -> None:
    """Flat CSV: one row per counter/gauge, one per histogram bucket."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["name", "core", "type", "field", "value"])
        for row in registry.rows():
            writer.writerow(row)


def write_metrics_json(session, path: str) -> Dict:
    doc = {
        "metrics": session.metrics.to_dict(),
        "aopb_by_phase": session.aopb_by_phase_dict(),
        "aopb_total": session.aopb_total,
        "tokens_pledged": session.tokens_pledged,
        "tokens_granted": session.tokens_granted,
        "granted_by_phase": session.granted_by_phase_dict(),
        "truncated": session.truncated,
        "events": {k.name: v for k, v in session.bus.counts.items() if v},
        "events_dropped": session.bus.total_dropped,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def write_power_timeline(session, path: str) -> int:
    """One NDJSON row per sampled cycle; returns the row count."""
    rows = 0
    with open(path, "w") as fh:
        for cycle, total, smoothed, powers in session.timeline:
            fh.write(json.dumps({
                "cycle": cycle,
                "total_w": total,
                "smoothed_w": smoothed,
                "cores_w": list(powers),
            }))
            fh.write("\n")
            rows += 1
    return rows


def load_power_timeline(path: str) -> List[Dict[str, object]]:
    """Read a power-timeline NDJSON file back (for ``repro.analysis``)."""
    out: List[Dict[str, object]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def peak_power(timeline_rows: Iterable[Dict[str, object]]) -> Watts:
    """Max total watts across loaded timeline rows (0.0 when empty)."""
    return max((float(r["total_w"]) for r in timeline_rows), default=0.0)
