"""Metrics registry: counters, gauges and fixed-bucket histograms.

Events (``events.py``) answer *when* something happened; metrics answer
*how much* of it a run saw.  The registry keys every instrument by
``(name, core)`` so per-core series line up in exports; ``core=None``
is the CMP-global label.

Instruments are deliberately primitive — integers, floats and
fixed-bucket histograms — so a run's metrics serialize to CSV/JSON
without any schema machinery and diff cleanly across PRs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CYCLE_BUCKETS",
    "LATENCY_BUCKETS",
    "TOKEN_BUCKETS",
]

#: Default buckets for cycle-count distributions (spin episode lengths,
#: window occupancies...): powers of two up to 64K cycles.
CYCLE_BUCKETS: Tuple[float, ...] = tuple(
    float(1 << i) for i in range(0, 17, 2)
)

#: Buckets for per-access latencies: L1 hit .. memory round trip.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 12.0, 25.0, 50.0, 100.0, 200.0, 400.0,
)

#: Buckets for per-instruction power-token costs (base + ROB residency).
TOKEN_BUCKETS: Tuple[float, ...] = (
    2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins sample."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v


class Histogram:
    """Fixed-bucket distribution with an overflow bucket.

    ``buckets`` are sorted upper bounds; an observation lands in the
    first bucket whose bound is ``>= v`` (bounds are inclusive), or in
    the overflow bucket past the last bound.  ``counts`` therefore has
    ``len(buckets) + 1`` entries.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.bounds, v)] += 1
        self.total += 1
        self.sum += v

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def bucket_pairs(self) -> List[Tuple[str, int]]:
        """``(upper-bound label, count)`` pairs, overflow labelled +Inf."""
        labels = [f"le_{b:g}" for b in self.bounds] + ["le_inf"]
        return list(zip(labels, self.counts))


#: Registry key: (metric name, core label or None).
_Key = Tuple[str, Optional[int]]


class MetricsRegistry:
    """All of one run's instruments, keyed by ``(name, core)``.

    Lookup methods are get-or-create so probe sites never need to
    pre-register; asking for an existing name with a conflicting
    instrument type is an error (one name, one type).
    """

    def __init__(self) -> None:
        self._metrics: Dict[_Key, object] = {}

    def _get(self, name: str, core: Optional[int], factory, cls) -> object:
        key = (name, core)
        m = self._metrics.get(key)
        if m is None:
            m = factory()
            self._metrics[key] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} (core={core}) already registered as "
                f"{type(m).__name__}, not {cls.__name__}"
            )
        return m

    def counter(self, name: str, core: Optional[int] = None) -> Counter:
        return self._get(name, core, Counter, Counter)

    def gauge(self, name: str, core: Optional[int] = None) -> Gauge:
        return self._get(name, core, Gauge, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = CYCLE_BUCKETS,
        core: Optional[int] = None,
    ) -> Histogram:
        return self._get(name, core, lambda: Histogram(buckets), Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def items(self) -> Iterator[Tuple[str, Optional[int], object]]:
        """(name, core, instrument) triples in stable sorted order."""
        for (name, core) in sorted(
            self._metrics, key=lambda k: (k[0], -1 if k[1] is None else k[1])
        ):
            yield name, core, self._metrics[(name, core)]

    def rows(self) -> List[Tuple[str, str, str, str, float]]:
        """Flat ``(name, core, type, field, value)`` rows for CSV export.

        Counters/gauges yield one row; histograms yield one row per
        bucket plus ``total``/``sum`` rows.
        """
        out: List[Tuple[str, str, str, str, float]] = []
        for name, core, m in self.items():
            label = "" if core is None else str(core)
            if isinstance(m, Counter):
                out.append((name, label, "counter", "value", float(m.value)))
            elif isinstance(m, Gauge):
                out.append((name, label, "gauge", "value", float(m.value)))
            elif isinstance(m, Histogram):
                for bucket, count in m.bucket_pairs():
                    out.append((name, label, "histogram", bucket,
                                float(count)))
                out.append((name, label, "histogram", "total",
                            float(m.total)))
                out.append((name, label, "histogram", "sum", m.sum))
        return out

    def to_dict(self) -> Dict[str, object]:
        """Nested ``{name: {core-label: value-or-histogram-dict}}``."""
        out: Dict[str, Dict[str, object]] = {}
        for name, core, m in self.items():
            label = "all" if core is None else f"core{core}"
            slot = out.setdefault(name, {})
            if isinstance(m, Counter):
                slot[label] = m.value
            elif isinstance(m, Gauge):
                slot[label] = m.value
            elif isinstance(m, Histogram):
                slot[label] = {
                    "buckets": dict(m.bucket_pairs()),
                    "total": m.total,
                    "sum": m.sum,
                    "mean": m.mean,
                }
        return out
