"""The telemetry session: probe hub wired into one simulation run.

A :class:`TelemetrySession` owns the event bus, the metrics registry
and the per-cycle power timeline of one :class:`repro.sim.cmp.
CMPSimulator` run.  ``attach`` installs the session on every component
the same way :class:`repro.simcheck.sanitizers.SanitizerSuite` installs
sanitizers: components hold a ``_telemetry`` attribute that is ``None``
by default, and each probe call-site reduces to one ``is not None``
test when telemetry is disabled — the zero-cost-when-disabled contract
(DESIGN §8).

The session never *changes* anything it observes: every probe is a pure
reader, so a telemetry-on run produces bit-identical ``SimResult``
fields to a telemetry-off run (enforced by
``tests/test_telemetry_integration.py``).

Enabling: ``CMPConfig(telemetry=True)`` (or ``cfg.with_telemetry()``)
or the environment variable ``REPRO_TELEMETRY=1``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..units import Cycles, Joules, Tokens, Watts
from .events import EventBus, EventKind
from .metrics import LATENCY_BUCKETS, TOKEN_BUCKETS, MetricsRegistry

__all__ = ["TelemetrySession", "telemetry_enabled", "TELEMETRY_PHASES"]

#: AoPB breakdown buckets: the four sync phases of Figure 3 plus an
#: ``idle`` bucket for cores that already completed (their smoothed
#: power can still sit over the line for a few decay cycles).
TELEMETRY_PHASES: Tuple[str, ...] = (
    "busy", "lock_acq", "lock_rel", "barrier", "idle",
)
_IDLE = len(TELEMETRY_PHASES) - 1

#: Cycles between periodic ROB-occupancy samples.
ROB_SAMPLE_INTERVAL = 64


def _cycle_energy(excess: Watts) -> Joules:
    """A per-cycle power excess integrated over its one-cycle sample.

    Every power sample covers exactly one cycle, so the exchange rate
    is exactly 1 — but power and energy are different dimensions, and
    the AoPB accumulators must cross through this function so the
    dimension checker can see the crossing is deliberate (and so the
    accrual stays bitwise-identical to the simulator's own AoPB sum).
    """
    return excess  # simcheck: disable=UNIT004 - the declared exchange


def telemetry_enabled(cfg=None) -> bool:
    """True when telemetry should run: config flag or ``REPRO_TELEMETRY``."""
    if cfg is not None and getattr(cfg, "telemetry", False):
        return True
    return os.environ.get("REPRO_TELEMETRY", "") not in (
        "", "0", "false", "off",
    )


class TelemetrySession:
    """Event bus + metrics + power timeline for one simulation run."""

    def __init__(
        self,
        cfg,
        *,
        timeline_stride: int = 1,
        rob_sample_interval: int = ROB_SAMPLE_INTERVAL,
    ) -> None:
        if timeline_stride <= 0 or rob_sample_interval <= 0:
            raise ValueError("telemetry sampling intervals must be positive")
        self.cfg = cfg
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        self.now: int = 0
        self.timeline_stride = timeline_stride
        self.rob_sample_interval = rob_sample_interval

        n = cfg.num_cores
        self.num_cores = n
        #: Per-cycle ``(cycle, total, total_smoothed, per-core powers)``.
        self.timeline: List[Tuple[int, Watts, Watts, Tuple[Watts, ...]]] = []
        #: AoPB accrued per sync phase (EU, same accrual as SimResult's
        #: ``aopb_energy`` — the per-phase split of Figure 1's area).
        self.aopb_by_phase: List[Joules] = [0.0] * len(TELEMETRY_PHASES)
        #: Total AoPB accrued by the session (bitwise-identical to the
        #: simulator's own accumulator: same additions, same order).
        self.aopb_total: Joules = 0.0
        #: Token flow totals (exact integers, never ring-truncated).
        self.tokens_pledged: Tokens = 0
        self.tokens_granted: Tokens = 0
        self.granted_by_phase: List[Tokens] = [0] * len(TELEMETRY_PHASES)
        self.truncated = False

        self._core_phase: List[int] = [0] * n
        self._over_local: List[bool] = [False] * n
        self._over_global = False
        self._last_throttle: List[int] = [0] * n

        # Attached lazily (the session may be built before the simulator).
        self._cores: Sequence = ()
        self.global_budget: Watts = float("inf")

    # ------------------------------------------------------------------ #
    # wiring                                                             #
    # ------------------------------------------------------------------ #

    def attach(self, sim) -> None:
        """Install probe references on the simulator's components."""
        self._cores = sim.cores
        self.global_budget = sim.global_budget
        sim.mesh._telemetry = self
        sim.hierarchy.directory._telemetry = self
        sim.sync_domain._telemetry = self
        for core in sim.cores:
            core._telemetry = self
            # The accountant gets its per-core cost histogram directly:
            # it has no core id and needs only ``observe``.
            core.accountant._telemetry = self.metrics.histogram(
                "tokens.instr_cost", TOKEN_BUCKETS, core=core.core_id
            )
        controller = sim.controller
        controller._telemetry = self
        balancer = getattr(controller, "balancer", None)
        if balancer is not None:
            balancer._telemetry = self
        for i, ctl in enumerate(getattr(controller, "_dvfs", None) or ()):
            ctl._telemetry = self
            ctl._core_id = i

    # ------------------------------------------------------------------ #
    # per-cycle hooks (called by the simulator loop)                     #
    # ------------------------------------------------------------------ #

    def begin_cycle(self, cycle: int) -> None:
        self.now = cycle

    def sample_cycle(
        self,
        powers: Sequence[Watts],
        smoothed: Sequence[Watts],
        budget_lines: Sequence[Watts],
        total: Watts,
        total_smoothed: Watts,
    ) -> None:
        """Observe one completed cycle (before the controller reacts).

        Called with the same smoothed powers and budget lines the AoPB
        metric just used, so the per-phase breakdown accrues exactly the
        area the run reports.
        """
        now = self.now
        bus = self.bus
        cores = self._cores
        phases = self._core_phase
        over = self._over_local
        for i in range(self.num_cores):
            core = cores[i]
            phase = _IDLE if core.done else int(core.sync_phase)
            phases[i] = phase
            d = smoothed[i] - budget_lines[i]
            if d > 0:
                e = _cycle_energy(d)
                self.aopb_by_phase[phase] += e
                self.aopb_total += e
                if not over[i]:
                    over[i] = True
                    bus.emit(now, EventKind.BUDGET_ENTER, i, smoothed[i])
                self.metrics.counter("budget.over_cycles", core=i).inc()
            elif over[i]:
                over[i] = False
                bus.emit(now, EventKind.BUDGET_EXIT, i, smoothed[i])
        if total_smoothed > self.global_budget:
            if not self._over_global:
                self._over_global = True
                bus.emit(now, EventKind.GLOBAL_BUDGET_ENTER, -1,
                         total_smoothed)
            self.metrics.counter("budget.global_over_cycles").inc()
        elif self._over_global:
            self._over_global = False
            bus.emit(now, EventKind.GLOBAL_BUDGET_EXIT, -1, total_smoothed)

        if now % self.timeline_stride == 0:
            self.timeline.append((now, total, total_smoothed, tuple(powers)))
        if now % self.rob_sample_interval == 0:
            for i in range(self.num_cores):
                bus.emit(now, EventKind.ROB_SAMPLE, i,
                         float(cores[i].rob_occupancy))

    # ------------------------------------------------------------------ #
    # component probes                                                   #
    # ------------------------------------------------------------------ #

    def on_balancer(
        self, spares: Sequence[Tokens], grants: Sequence[Tokens]
    ) -> None:
        """PTB balancer cycle: ``spares`` ingested, ``grants`` delivered."""
        now = self.now
        bus = self.bus
        for i, s in enumerate(spares):
            if s > 0:
                bus.emit(now, EventKind.TOKEN_PLEDGE, i, float(s))
                self.tokens_pledged += s
        for i, g in enumerate(grants):
            if g > 0:
                bus.emit(now, EventKind.TOKEN_GRANT, i, float(g))
                self.tokens_granted += g
                self.granted_by_phase[self._core_phase[i]] += g
                self.metrics.counter("tokens.granted", core=i).inc(g)

    def on_dvfs(self, core: int, old_mode: int, new_mode: int) -> None:
        self.bus.emit(self.now, EventKind.DVFS_MODE, core, float(new_mode),
                      f"{old_mode}->{new_mode}")
        self.metrics.counter("dvfs.transitions", core=core).inc()

    def on_throttle(self, core: int, technique: int) -> None:
        """Per-cycle level-2 throttle state; events only on change."""
        if technique:
            self.metrics.counter("throttle.cycles", core=core).inc()
        if technique != self._last_throttle[core]:
            self._last_throttle[core] = technique
            self.bus.emit(self.now, EventKind.THROTTLE, core,
                          float(technique))

    def on_moesi(self, kind: str, core: int, line: int,
                 latency: Cycles) -> None:
        self.bus.emit(self.now, EventKind.MOESI, core, float(latency), kind)
        self.metrics.counter(f"coherence.{kind.lower()}").inc()
        self.metrics.histogram(
            "coherence.latency", LATENCY_BUCKETS
        ).observe(latency)

    def on_mesh(self, hops: int, flits: int, flit_hops: int) -> None:
        self.bus.emit(self.now, EventKind.MESH_MSG, -1, float(flit_hops))
        self.metrics.counter("noc.messages").inc()
        self.metrics.counter("noc.flit_hops").inc(flit_hops)

    def on_spin(self, core: int, entering: bool, kind: str) -> None:
        if entering:
            self.bus.emit(self.now, EventKind.SPIN_ENTER, core, 0.0, kind)
            self.metrics.counter("spin.episodes", core=core).inc()
        else:
            self.bus.emit(self.now, EventKind.SPIN_EXIT, core, 0.0, kind)

    _LOCK_KINDS = {
        "acquire": EventKind.LOCK_ACQUIRE,
        "contend": EventKind.LOCK_CONTEND,
        "handoff": EventKind.LOCK_HANDOFF,
        "release": EventKind.LOCK_RELEASE,
    }

    def on_lock(self, what: str, lock_id: int, core: int) -> None:
        self.bus.emit(self.now, self._LOCK_KINDS[what], core, float(lock_id))
        self.metrics.counter(f"lock.{what}s").inc()

    def on_barrier(self, what: str, barrier_id: int, core: int) -> None:
        kind = (EventKind.BARRIER_RELEASE if what == "release"
                else EventKind.BARRIER_ARRIVE)
        self.bus.emit(self.now, kind, core, float(barrier_id))
        self.metrics.counter(f"barrier.{what}s").inc()

    # ------------------------------------------------------------------ #
    # end of run                                                          #
    # ------------------------------------------------------------------ #

    def on_truncated(self, cycle: int) -> None:
        self.truncated = True
        self.bus.emit(cycle, EventKind.TRUNCATED, -1, float(cycle))

    def finish(self, cycles: Cycles, committed: int = 0) -> None:
        """Record end-of-run gauges (idempotent; call after the loop)."""
        g = self.metrics.gauge
        g("run.cycles").set(float(cycles))
        g("run.committed").set(float(committed))
        g("run.aopb_total").set(self.aopb_total)
        for name, v in self.aopb_by_phase_dict().items():
            g(f"run.aopb.{name}").set(v)
        g("run.tokens_pledged").set(float(self.tokens_pledged))
        g("run.tokens_granted").set(float(self.tokens_granted))
        g("run.events").set(float(self.bus.total_events))
        g("run.events_dropped").set(float(self.bus.total_dropped))
        g("run.truncated").set(1.0 if self.truncated else 0.0)

    # ------------------------------------------------------------------ #
    # derived views                                                       #
    # ------------------------------------------------------------------ #

    def aopb_by_phase_dict(self) -> Dict[str, Joules]:
        return dict(zip(TELEMETRY_PHASES, self.aopb_by_phase))

    def granted_by_phase_dict(self) -> Dict[str, Tokens]:
        return dict(zip(TELEMETRY_PHASES, self.granted_by_phase))
