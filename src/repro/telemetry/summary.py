"""Human-readable run summary: per-phase AoPB and token-flow breakdown.

Answers the two questions the paper's figures keep asking — *where* did
the area-over-power-budget accrue (Figure 3's phase split applied to
Figure 1's area), and *who* received the balanced tokens — as one text
table per run.
"""

from __future__ import annotations

from typing import List, Optional

from .events import EventKind
from .session import TELEMETRY_PHASES, TelemetrySession

__all__ = ["phase_breakdown_table", "summarize"]


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole else "-"


def phase_breakdown_table(session: TelemetrySession) -> str:
    """Per-phase AoPB (EU) and granted-token breakdown table."""
    # Imported lazily: the simulator imports repro.telemetry, and
    # repro.analysis imports the simulator — a module-level import here
    # would close that cycle.
    from ..analysis.report import format_table

    aopb = session.aopb_by_phase
    grants = session.granted_by_phase
    total_aopb = session.aopb_total
    total_grants = session.tokens_granted
    rows: List[List[object]] = []
    for i, phase in enumerate(TELEMETRY_PHASES):
        rows.append([
            phase,
            f"{aopb[i]:.1f}",
            _pct(aopb[i], total_aopb),
            grants[i],
            _pct(grants[i], total_grants),
        ])
    rows.append([
        "total",
        f"{total_aopb:.1f}",
        _pct(total_aopb, total_aopb),
        total_grants,
        _pct(total_grants, total_grants),
    ])
    return format_table(
        ["phase", "AoPB (EU)", "AoPB %", "tokens granted", "grant %"],
        rows,
        title="Per-phase AoPB / token flow",
    )


def summarize(session: TelemetrySession,
              result: Optional[object] = None) -> str:
    """Full post-run report: phase table, token flow, event volumes."""
    lines: List[str] = [phase_breakdown_table(session), ""]
    lines.append(
        f"tokens pledged {session.tokens_pledged}, "
        f"granted {session.tokens_granted}"
    )
    if result is not None:
        lines.append(
            f"run: {result.cycles} cycles, energy {result.total_energy:.1f} "
            f"EU, AoPB {result.aopb_energy:.1f} EU"
        )
    bus = session.bus
    busy = [
        f"{kind.name}={bus.counts[kind]}"
        for kind in EventKind
        if bus.counts[kind]
    ]
    lines.append("events: " + (", ".join(busy) if busy else "none"))
    if bus.total_dropped:
        lines.append(
            f"note: {bus.total_dropped} events evicted by ring wraparound "
            "(counters above remain exact)"
        )
    if session.truncated:
        lines.append(
            "WARNING: run TRUNCATED at max_cycles before all threads "
            "completed; aggregates cover the simulated prefix only"
        )
    return "\n".join(lines)
