"""Synthetic trace generation: phase programs and instruction streams."""

from .generator import (
    LINE_BYTES,
    SHARED_BASE,
    InstrBatch,
    ThreadTraceGenerator,
)
from .phases import (
    DEFAULT_MIX,
    FP_MIX,
    INT_MEM_MIX,
    BarrierPhase,
    ComputePhase,
    LockPhase,
    ParallelProgram,
    Phase,
    SyncKind,
    SyncOp,
    ThreadProgram,
    validate_mix,
)

__all__ = [
    "LINE_BYTES",
    "SHARED_BASE",
    "InstrBatch",
    "ThreadTraceGenerator",
    "DEFAULT_MIX",
    "FP_MIX",
    "INT_MEM_MIX",
    "BarrierPhase",
    "ComputePhase",
    "LockPhase",
    "ParallelProgram",
    "Phase",
    "SyncKind",
    "SyncOp",
    "ThreadProgram",
    "validate_mix",
]
