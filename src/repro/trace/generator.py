"""Instruction stream generation.

Converts a :class:`~repro.trace.phases.ThreadProgram` into the stream of
dynamic instructions and synchronization markers a core consumes.

Performance note (this is the simulator's hot path): dynamic
instructions are produced in *batches* of parallel primitive lists
(kind codes, PCs, addresses, branch bits) rather than as per-instance
objects.  One 16-core run fetches hundreds of thousands of dynamic
instructions; building a dataclass for each would dominate runtime.
Randomness is drawn from per-thread ``numpy`` generators in bulk.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..isa.instructions import Kind
from .phases import (
    BarrierPhase,
    ComputePhase,
    LockPhase,
    SyncKind,
    SyncOp,
    ThreadProgram,
)

#: Cache-line granularity of generated addresses.
LINE_BYTES = 64

#: Private address spaces are separated per thread; shared data lives in
#: a region common to all threads of a program.
PRIVATE_REGION_BITS = 34
SHARED_BASE = 1 << 40


class InstrBatch:
    """A batch of dynamic instructions as parallel primitive lists.

    ``kinds[i]``/``pcs[i]``/``addrs[i]`` describe instruction ``i``;
    ``takens[i]``/``backwards[i]`` are meaningful only for branches;
    ``deps[i]`` is 1 when instruction ``i`` depends on instruction
    ``i-1`` of the same thread (statistical dependence model).
    """

    __slots__ = ("kinds", "pcs", "addrs", "takens", "backwards", "deps", "n")

    def __init__(
        self,
        kinds: List[int],
        pcs: List[int],
        addrs: List[int],
        takens: List[int],
        backwards: List[int],
        deps: List[int],
    ) -> None:
        self.kinds = kinds
        self.pcs = pcs
        self.addrs = addrs
        self.takens = takens
        self.backwards = backwards
        self.deps = deps
        self.n = len(kinds)


StreamItem = Union[InstrBatch, SyncOp]


def _compile_body(phase: ComputePhase, rng: np.random.Generator):
    """Lay out the static loop body of a compute phase.

    Returns parallel tuples ``(kinds, is_mem, is_branch)`` of length
    ``phase.loop_body``.  The final slot is always the backward loop
    branch; remaining slots are filled to match the phase mix as closely
    as a finite body allows.
    """
    body = phase.loop_body
    kinds: List[int] = []
    # Deterministic largest-remainder apportionment of the mix over the
    # body (minus the closing loop branch).
    slots = body - 1
    mix_items = [(k, f) for k, f in phase.mix.items() if f > 0]
    counts = {k: int(f * slots) for k, f in mix_items}
    assigned = sum(counts.values())
    remainders = sorted(
        mix_items, key=lambda kf: (kf[1] * slots) % 1.0, reverse=True
    )
    i = 0
    while assigned < slots and remainders:
        k = remainders[i % len(remainders)][0]
        counts[k] += 1
        assigned += 1
        i += 1
    for k, c in counts.items():
        kinds.extend([int(k)] * c)
    # Interleave deterministically (shuffle with the phase RNG) so that
    # memory ops and FP ops spread through the body.
    order = rng.permutation(len(kinds))
    kinds = [kinds[j] for j in order]
    kinds.append(int(Kind.BRANCH))  # closing backward branch
    return kinds


#: Three-tier locality model: most accesses stay in a sliding L1-sized
#: hot window; a second tier reuses an L2-resident warm region; the
#: remainder sweep the whole footprint (capacity/compulsory misses).
HOT_FRACTION = 0.92
WARM_FRACTION = 0.06          # of the total (hot + warm + cold = 1)
#: Size of the hot window in cache lines (fits comfortably in L1).
HOT_WINDOW_LINES = 192
#: Size of the warm region in cache lines (fits in the private L2).
WARM_REGION_LINES = 1536
#: Shared accesses also have locality: most touch a sliding shared hot
#: window, the rest the full shared footprint.
SHARED_HOT_FRACTION = 0.70
SHARED_HOT_LINES = 256
#: Shared data beyond this many lines is never generated: the shared
#: region of real kernels (boundary rows, particle cells, work queues)
#: is far smaller than the private bulk data.
SHARED_FOOTPRINT_CAP = 2048


class _ComputeState:
    """Generation state while inside one compute phase."""

    __slots__ = (
        "phase", "remaining", "body_kinds", "pc_base",
        "iteration", "private_base", "rng", "hot_base",
    )

    def __init__(
        self,
        phase: ComputePhase,
        pc_base: int,
        private_base: int,
        rng: np.random.Generator,
        body_kinds: Optional[List[int]] = None,
    ) -> None:
        self.phase = phase
        self.remaining = phase.instructions
        self.body_kinds = (
            body_kinds if body_kinds is not None else _compile_body(phase, rng)
        )
        self.pc_base = pc_base
        self.iteration = 0
        self.private_base = private_base
        self.rng = rng
        self.hot_base = 0

    def next_batch(self, max_size: int = 512) -> Optional[InstrBatch]:
        if self.remaining <= 0:
            return None
        phase = self.phase
        body = self.body_kinds
        blen = len(body)
        n = min(self.remaining, max_size)
        # Emit whole loop iterations when possible so back-edges line up.
        n_iters = max(1, n // blen)
        n = min(self.remaining, n_iters * blen)
        self.remaining -= n

        rng = self.rng
        start = (self.iteration * blen) % blen  # always 0 except tail runs
        kinds = [body[(start + i) % blen] for i in range(n)]
        pcs = [self.pc_base + ((start + i) % blen) * 4 for i in range(n)]

        # Vectorised randomness for the whole batch.
        u_shared = rng.random(n)
        footprint = max(1, phase.footprint_lines)
        # Temporal locality: most accesses land in a sliding hot window;
        # the remainder sweep the whole footprint (capacity misses).
        hot_span = min(HOT_WINDOW_LINES, footprint)
        warm_span = min(WARM_REGION_LINES, footprint)
        hot_lines = self.hot_base + rng.integers(0, hot_span, n)
        hot_lines %= footprint
        warm_lines = rng.integers(0, warm_span, n)
        cold_lines = rng.integers(0, footprint, n)
        u_hot = rng.random(n)
        line_private = np.where(
            u_hot < HOT_FRACTION,
            hot_lines,
            np.where(u_hot < HOT_FRACTION + WARM_FRACTION,
                     warm_lines, cold_lines),
        )
        self.hot_base = (self.hot_base + max(1, hot_span // 64)) % footprint
        shared_span = min(SHARED_HOT_LINES, footprint)
        sh_hot = rng.integers(0, shared_span, n)
        sh_cold = rng.integers(0, min(footprint, SHARED_FOOTPRINT_CAP), n)
        line_shared = np.where(
            rng.random(n) < SHARED_HOT_FRACTION, sh_hot, sh_cold
        )
        u_taken = rng.random(n)
        u_dep = rng.random(n)

        shared_mask = u_shared < phase.shared_fraction
        addrs_np = np.where(
            shared_mask,
            SHARED_BASE + line_shared * LINE_BYTES,
            self.private_base + line_private * LINE_BYTES,
        )
        addrs = addrs_np.tolist()
        taken_rand = (u_taken < phase.branch_bias)
        deps = (u_dep >= phase.ilp).astype(np.int8).tolist()

        takens = [0] * n
        backwards = [0] * n
        branch_kind = int(Kind.BRANCH)
        taken_list = taken_rand.tolist()
        for i in range(n):
            k = kinds[i]
            if k == branch_kind:
                if (start + i) % blen == blen - 1:
                    backwards[i] = 1
                    takens[i] = 1  # loop back-edge: taken
                else:
                    takens[i] = 1 if taken_list[i] else 0
            if kinds[i] not in _MEM_KINDS:
                addrs[i] = 0
        self.iteration += n // blen
        return InstrBatch(kinds, pcs, addrs, takens, backwards, deps)


_MEM_KINDS = frozenset(
    (int(Kind.LOAD), int(Kind.STORE), int(Kind.ATOMIC))
)


class ThreadTraceGenerator:
    """Pull-based stream of :class:`InstrBatch` / :class:`SyncOp` items.

    The core's fetch stage calls :meth:`next_item` whenever it exhausts
    its current batch.  ``None`` signals end of program.
    """

    def __init__(self, program: ThreadProgram, seed: int) -> None:
        self.program = program
        self.thread_id = program.thread_id
        self._rng = np.random.default_rng(
            np.random.SeedSequence((seed, program.thread_id))
        )
        self._phase_idx = 0
        self._compute: Optional[_ComputeState] = None
        self._pending: List[StreamItem] = []
        self._private_base = (program.thread_id + 1) << PRIVATE_REGION_BITS
        self._instructions_emitted = 0
        # Static-code identity: phases with the same shape (same loop
        # body, mix, locality) are the same *function* called with a
        # different trip count, so they share PCs — that is what gives
        # the I-cache, gshare and PTHT their cross-interval reuse.
        self._code_bases: dict = {}
        self._next_code_slot = 1

    @property
    def instructions_emitted(self) -> int:
        return self._instructions_emitted

    def _enter_phase(self) -> bool:
        """Advance to the next phase; returns False at end of program."""
        if self._phase_idx >= len(self.program.phases):
            return False
        phase = self.program.phases[self._phase_idx]
        pc_base, body = self._code_base_for(phase)
        self._phase_idx += 1
        if isinstance(phase, ComputePhase):
            self._compute = _ComputeState(
                phase, pc_base, self._private_base, self._rng, body
            )
        elif isinstance(phase, LockPhase):
            self._pending.append(SyncOp(SyncKind.ACQUIRE, phase.lock_id))
            self._compute = _ComputeState(
                phase.critical_section, pc_base, self._private_base,
                self._rng, body,
            )
            # RELEASE is queued after the critical section drains; handled
            # by a sentinel pushed when the compute state exhausts.
            self._pending_release = phase.lock_id
        elif isinstance(phase, BarrierPhase):
            self._pending.append(SyncOp(SyncKind.BARRIER, phase.barrier_id))
        else:  # pragma: no cover - exhaustive over Phase union
            raise TypeError(f"unknown phase type {type(phase)!r}")
        return True

    _pending_release: Optional[int] = None

    def _code_base_for(self, phase) -> int:
        """PC base of a phase's static code.

        The code identity key deliberately omits the dynamic trip count
        (``instructions``): two compute phases differing only in how much
        work they do run the *same* loop.  Code regions are laid out at a
        non-power-of-two stride so they spread across cache sets.
        """
        if isinstance(phase, ComputePhase):
            key = (
                "comp", phase.loop_body, phase.footprint_lines,
                phase.shared_fraction, phase.branch_bias, phase.ilp,
                tuple(sorted((int(k), v) for k, v in phase.mix.items())),
            )
        elif isinstance(phase, LockPhase):
            cs = phase.critical_section
            key = ("cs", phase.lock_id, cs.loop_body)
        else:
            key = ("barrier",)
        entry = self._code_bases.get(key)
        if entry is None:
            base = self._next_code_slot * 0x1340
            body = None
            if isinstance(phase, ComputePhase):
                body = _compile_body(phase, self._rng)
            elif isinstance(phase, LockPhase):
                body = _compile_body(phase.critical_section, self._rng)
            entry = (base, body)
            self._code_bases[key] = entry
            self._next_code_slot += 1
        return entry

    def next_item(self) -> Optional[StreamItem]:
        while True:
            if self._pending:
                return self._pending.pop(0)
            if self._compute is not None:
                batch = self._compute.next_batch()
                if batch is not None:
                    self._instructions_emitted += batch.n
                    return batch
                self._compute = None
                if self._pending_release is not None:
                    lock_id = self._pending_release
                    self._pending_release = None
                    return SyncOp(SyncKind.RELEASE, lock_id)
            if not self._enter_phase():
                return None
