"""Phase-structured thread programs.

A synthetic workload is described per-thread as a list of *phases*:

* :class:`ComputePhase` — a loop nest executing a given dynamic
  instruction count with a given kind mix, working-set size and branch
  behaviour.  Misses and mispredictions are *not* injected directly: the
  phase only chooses addresses and branch patterns; the cache hierarchy
  and the gshare predictor produce misses/mispredictions on their own.
* :class:`LockPhase` — acquire a (possibly contended) spinlock, run a
  critical-section compute phase, release.
* :class:`BarrierPhase` — join a named barrier with all threads.

This mirrors how the paper's workloads stress the system: what matters
to PTB is the synchronization structure and the power unbalance it
creates, not the numerical output of the original benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Tuple

from ..isa.instructions import Kind

#: A default, compute-bound kind mix (fractions must sum to 1).
DEFAULT_MIX: Dict[Kind, float] = {
    Kind.INT_ALU: 0.40,
    Kind.INT_MULT: 0.04,
    Kind.FP_ALU: 0.10,
    Kind.FP_MULT: 0.04,
    Kind.LOAD: 0.22,
    Kind.STORE: 0.08,
    Kind.BRANCH: 0.12,
}

#: A floating-point heavy mix (scientific kernels: ocean, tomcatv, water).
FP_MIX: Dict[Kind, float] = {
    Kind.INT_ALU: 0.22,
    Kind.INT_MULT: 0.02,
    Kind.FP_ALU: 0.28,
    Kind.FP_MULT: 0.14,
    Kind.LOAD: 0.20,
    Kind.STORE: 0.06,
    Kind.BRANCH: 0.08,
}

#: An integer/memory mix (radix sort, x264 entropy coding).
INT_MEM_MIX: Dict[Kind, float] = {
    Kind.INT_ALU: 0.38,
    Kind.INT_MULT: 0.02,
    Kind.FP_ALU: 0.02,
    Kind.FP_MULT: 0.00,
    Kind.LOAD: 0.30,
    Kind.STORE: 0.14,
    Kind.BRANCH: 0.14,
}


def validate_mix(mix: Dict[Kind, float]) -> None:
    total = sum(mix.values())
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"instruction mix must sum to 1, got {total}")
    if any(v < 0 for v in mix.values()):
        raise ValueError("mix fractions must be non-negative")


class SyncKind(Enum):
    """Synchronization operations a thread can request."""

    ACQUIRE = "acquire"
    RELEASE = "release"
    BARRIER = "barrier"


@dataclass(frozen=True)
class SyncOp:
    """A synchronization marker in an instruction stream."""

    kind: SyncKind
    obj_id: int


@dataclass(frozen=True)
class ComputePhase:
    """A stretch of useful computation.

    Attributes
    ----------
    instructions:
        Dynamic instruction count of the phase.
    mix:
        Kind mix; branches close loop bodies (backward, mostly taken).
    footprint_lines:
        Size of the phase's working set in cache lines.  Larger than L1
        -> L1 misses; larger than L2 -> memory traffic.
    shared_fraction:
        Fraction of memory accesses touching globally shared data (the
        rest go to thread-private addresses).  Shared lines bounce
        between cores through the MOESI protocol.
    loop_body:
        Static loop-body length in instructions; sets PC reuse (and thus
        PTHT/branch-predictor locality).
    branch_bias:
        Probability that a *non-loop* conditional branch goes the same
        way as last time (predictability).  Loop back-edges are taken
        until the loop exits.
    ilp:
        Rough instruction-level parallelism: probability that an
        instruction is independent of the previous one.  Lower ilp ->
        longer dependence chains -> lower IPC -> lower power.
    """

    instructions: int
    mix: Dict[Kind, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    footprint_lines: int = 2048
    shared_fraction: float = 0.05
    loop_body: int = 64
    branch_bias: float = 0.92
    ilp: float = 0.7

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ValueError("instruction count must be >= 0")
        if self.loop_body <= 0:
            raise ValueError("loop body must be positive")
        if not (0.0 <= self.shared_fraction <= 1.0):
            raise ValueError("shared fraction must be in [0,1]")
        if not (0.0 <= self.ilp <= 1.0):
            raise ValueError("ilp must be in [0,1]")
        validate_mix(self.mix)


@dataclass(frozen=True)
class LockPhase:
    """Acquire ``lock_id``, execute the critical section, release."""

    lock_id: int
    critical_section: ComputePhase

    def __post_init__(self) -> None:
        if self.lock_id < 0:
            raise ValueError("lock id must be >= 0")


@dataclass(frozen=True)
class BarrierPhase:
    """Join barrier ``barrier_id`` together with every other thread."""

    barrier_id: int

    def __post_init__(self) -> None:
        if self.barrier_id < 0:
            raise ValueError("barrier id must be >= 0")


Phase = ComputePhase | LockPhase | BarrierPhase


@dataclass(frozen=True)
class ThreadProgram:
    """Ordered phases executed by one thread."""

    thread_id: int
    phases: Tuple[Phase, ...]

    def total_instructions(self) -> int:
        """Dynamic instructions excluding spin-loop iterations."""
        total = 0
        for ph in self.phases:
            if isinstance(ph, ComputePhase):
                total += ph.instructions
            elif isinstance(ph, LockPhase):
                total += ph.critical_section.instructions
        return total


@dataclass(frozen=True)
class ParallelProgram:
    """A complete multithreaded workload: one program per core."""

    name: str
    threads: Tuple[ThreadProgram, ...]

    def __post_init__(self) -> None:
        ids = [t.thread_id for t in self.threads]
        if ids != list(range(len(ids))):
            raise ValueError("thread ids must be 0..n-1 in order")

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    def total_instructions(self) -> int:
        return sum(t.total_instructions() for t in self.threads)
