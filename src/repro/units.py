"""Zero-cost unit/dimension annotation vocabulary.

The simulator's numbers live in four incompatible currencies:

* **power tokens** — the paper's control-plane unit (one token = the
  energy of one instruction resident in the ROB for one cycle),
* **energy units (EU)** — the power model's per-cycle energy; since
  every sample covers exactly one cycle, an EU/cycle figure is a
  *power* and an EU sum over cycles is an *energy*,
* **cycles** — simulated time,
* **frequency scales** — DVFS operating points.

Mixing them (adding a token count to an energy, comparing watts to a
token budget) silently corrupts every result in EXPERIMENTS.md, so the
static dimension checker (``python -m repro.simcheck flow``) flags
mixed-unit arithmetic.  The vocabulary below is how code declares the
unit of a value: annotate parameters, returns, attributes and module
constants with these names and the checker propagates them through
assignments, arithmetic and call boundaries.

Every name is a plain alias of ``float`` — annotations cost nothing at
runtime (all annotated modules use ``from __future__ import
annotations``) and the checker matches the *names*, not the objects.

Conventions:

* ``Watts``  — per-cycle power in EU (EU/cycle).  The repo's "EU" power
  figures are dimensionally watts; one alias keeps the checker simple.
* ``Joules`` — energy in EU accumulated over cycles.
* ``Tokens`` — power-token counts (integer-valued, but ``float`` for
  intermediate arithmetic like budgets and averages).
* ``Cycles`` — cycle counts and timestamps.
* ``Hertz``  — absolute frequency; DVFS *scale factors* (f/f_nominal)
  are dimensionless and stay unannotated.

Multiplication and division deliberately *launder* units (the checker
treats the result as unknown): ``tokens * token_unit`` is how one
currency is exchanged for another.  Prefer routing conversions through
an annotated function (e.g. :meth:`repro.power.model.EnergyModel.
tokens_to_eu`) so both sides of the exchange are declared.
"""

from __future__ import annotations

#: Power-token counts (the paper's control currency).
Tokens = float

#: Energy in EU summed over cycles.
Joules = float

#: Per-cycle power in EU (EU/cycle).
Watts = float

#: Cycle counts and cycle timestamps.
Cycles = float

#: Absolute frequency.
Hertz = float

#: Annotation names the dimension checker recognizes.
UNIT_NAMES = ("Tokens", "Joules", "Watts", "Cycles", "Hertz")
