"""The paper's 14-benchmark workload suite (SPLASH-2 + PARSEC, Table 2)."""

from .catalog import (
    SCALES,
    BenchmarkSpec,
    benchmark_names,
    build_program,
    spec_of,
    table2_rows,
)
from .characteristics import (
    ALL_SPECS,
    BENCHMARK_ORDER,
    PARSEC_SPECS,
    SPECS_BY_NAME,
    SPLASH2_SPECS,
)
from .parsec import PARSEC_NAMES, parsec_spec
from .splash2 import SPLASH2_NAMES, splash2_spec

__all__ = [
    "SCALES",
    "BenchmarkSpec",
    "benchmark_names",
    "build_program",
    "spec_of",
    "table2_rows",
    "ALL_SPECS",
    "BENCHMARK_ORDER",
    "PARSEC_SPECS",
    "SPECS_BY_NAME",
    "SPLASH2_SPECS",
    "PARSEC_NAMES",
    "parsec_spec",
    "SPLASH2_NAMES",
    "splash2_spec",
]
