"""Workload catalog: build runnable programs from benchmark specs.

:func:`build_program` turns a :class:`BenchmarkSpec` into a
:class:`~repro.trace.phases.ParallelProgram` for a given thread count
and scale.  Construction is deterministic in ``(name, threads, scale,
seed)``.

Program shape per interval::

    [compute (imbalanced)] [lock/CS ops interleaved] ... BARRIER

and a final barrier closes the parallel phase so all threads finish
together, as the paper's region-of-interest methodology does.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

import numpy as np

from ..trace.phases import (
    BarrierPhase,
    ComputePhase,
    LockPhase,
    ParallelProgram,
    Phase,
    ThreadProgram,
)
from .characteristics import (
    ALL_SPECS,
    BENCHMARK_ORDER,
    PARSEC_SPECS,
    SPECS_BY_NAME,
    SPLASH2_SPECS,
    BenchmarkSpec,
)

#: Named simulation scales: multiply per-thread work.  "small" is sized
#: so a 16-core run completes in roughly ten thousand cycles.
SCALES: Dict[str, float] = {
    "tiny": 0.12,
    "small": 1.0,
    "medium": 4.0,
    "large": 16.0,
}


def benchmark_names() -> Tuple[str, ...]:
    """All 14 benchmarks in the paper's figure order."""
    return BENCHMARK_ORDER


def spec_of(name: str) -> BenchmarkSpec:
    try:
        return SPECS_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {BENCHMARK_ORDER}"
        ) from None


def table2_rows() -> List[Tuple[str, str, str]]:
    """(suite, benchmark, input size) rows reproducing Table 2."""
    return [(s.suite, s.name, s.input_size) for s in ALL_SPECS]


def _compute_phase(
    spec: BenchmarkSpec, instructions: int
) -> ComputePhase:
    return ComputePhase(
        instructions=max(0, instructions),
        mix=spec.mix,
        footprint_lines=spec.footprint_lines,
        shared_fraction=spec.shared_fraction,
        loop_body=spec.loop_body,
        branch_bias=spec.branch_bias,
        ilp=spec.ilp,
    )


def build_program(
    name: str,
    num_threads: int,
    scale: float | str = "small",
    seed: int = 7,
) -> ParallelProgram:
    """Synthesise the named benchmark for ``num_threads`` threads.

    ``scale`` is a factor or one of :data:`SCALES`.  Thread work per
    interval is drawn lognormally around the spec mean with the spec's
    imbalance — the same interval draws for every technique under the
    same seed, so comparisons across techniques see identical work.
    """
    spec = spec_of(name)
    if isinstance(scale, str):
        try:
            scale = SCALES[scale]
        except KeyError:
            raise KeyError(
                f"unknown scale {scale!r}; available: {sorted(SCALES)}"
            ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    if num_threads < 1:
        raise ValueError("need at least one thread")

    # zlib.crc32 is stable across processes (str.__hash__ is salted).
    name_key = zlib.crc32(name.encode()) & 0xFFFF
    rng = np.random.default_rng(np.random.SeedSequence((seed, name_key)))
    sigma = spec.imbalance
    barrier_id = 0
    threads: List[List[Phase]] = [[] for _ in range(num_threads)]

    for interval in range(spec.barrier_intervals):
        # Per-thread work for this interval: lognormal around the mean.
        draws = rng.lognormal(mean=0.0, sigma=sigma, size=num_threads)
        work = (spec.work_per_interval * scale * draws).astype(np.int64)
        # Lock ids for this interval: contended benchmarks reuse few ids.
        for t in range(num_threads):
            phases = threads[t]
            n_locks = spec.lock_ops_per_interval
            if n_locks > 0:
                # Interleave compute slices with critical sections.
                slice_len = max(1, int(work[t]) // (n_locks + 1))
                for k in range(n_locks):
                    phases.append(_compute_phase(spec, slice_len))
                    lock_id = int(rng.integers(0, spec.num_locks))
                    phases.append(
                        LockPhase(
                            lock_id=lock_id,
                            critical_section=_compute_phase(
                                spec, max(1, int(spec.cs_len * scale ** 0.25))
                            ),
                        )
                    )
                phases.append(_compute_phase(spec, slice_len))
            else:
                phases.append(_compute_phase(spec, int(work[t])))
            phases.append(BarrierPhase(barrier_id))
        barrier_id += 1

    return ParallelProgram(
        name=name,
        threads=tuple(
            ThreadProgram(thread_id=t, phases=tuple(threads[t]))
            for t in range(num_threads)
        ),
    )


__all__ = [
    "ALL_SPECS",
    "BENCHMARK_ORDER",
    "PARSEC_SPECS",
    "SPLASH2_SPECS",
    "SCALES",
    "BenchmarkSpec",
    "benchmark_names",
    "build_program",
    "spec_of",
    "table2_rows",
]
