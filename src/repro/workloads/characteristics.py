"""Per-benchmark workload characteristics.

Each of the paper's 14 benchmarks (Table 2) is described by a
:class:`BenchmarkSpec` capturing what matters to PTB: the
synchronization *structure* (barrier-interval count, lock density,
critical-section length, contention), the per-interval work imbalance
across threads (what makes early threads spin at barriers), and the
compute character (instruction mix, working-set size, shared-data
fraction, ILP, branch predictability).

The numbers are calibrated so the execution-time breakdown of a 16-core
run matches the *shape* of the paper's Figure 3 — e.g. Unstructured and
Fluidanimate are lock-acquisition-bound, Ocean/Radix barrier-heavy, and
Cholesky/Blackscholes/Swaptions/x264 essentially contention-free — and
so spin time grows with the core count, as both Figure 3 and Figure 4
show.  Imbalance does this naturally: per-interval thread work is drawn
from a distribution, and the expected gap between the slowest thread
and the rest widens as more samples are drawn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..isa.instructions import Kind
from ..trace.phases import DEFAULT_MIX, FP_MIX, INT_MEM_MIX


@dataclass(frozen=True)
class BenchmarkSpec:
    """Everything needed to synthesise one benchmark's thread programs."""

    name: str
    suite: str                     # "splash2" | "parsec"
    input_size: str                # Table 2 working set, for the record
    mix: Dict[Kind, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    #: Barrier-separated intervals in the parallel phase.
    barrier_intervals: int = 6
    #: Mean dynamic instructions per thread per interval (at scale=1).
    work_per_interval: int = 2600
    #: Relative spread of per-thread work within an interval (lognormal
    #: sigma): drives barrier spin time, growing with core count.
    imbalance: float = 0.25
    #: Lock acquisitions per thread per interval.
    lock_ops_per_interval: int = 0
    #: Dynamic instructions inside each critical section.
    cs_len: int = 60
    #: Number of distinct locks; 1 = fully contended global lock.
    num_locks: int = 1
    #: Working set in cache lines (64 B); > L1 capacity -> L1 misses.
    footprint_lines: int = 3000
    #: Fraction of accesses to globally shared (coherent) data.
    shared_fraction: float = 0.05
    #: Statistical instruction-level parallelism (see ComputePhase).
    ilp: float = 0.70
    #: Non-loop branch predictability.
    branch_bias: float = 0.92
    #: Static loop-body size (PC locality for PTHT/gshare).
    loop_body: int = 64

    def __post_init__(self) -> None:
        if self.barrier_intervals < 1:
            raise ValueError("need at least one interval")
        if self.work_per_interval < 0 or self.cs_len < 0:
            raise ValueError("work sizes must be non-negative")
        if self.imbalance < 0:
            raise ValueError("imbalance must be >= 0")
        if self.num_locks < 1:
            raise ValueError("need at least one lock id")


#: SPLASH-2 suite (Table 2, top block).
SPLASH2_SPECS: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        name="barnes", suite="splash2", input_size="8192 bodies, 4 time steps",
        mix=dict(FP_MIX), barrier_intervals=8, work_per_interval=2400,
        imbalance=0.22, lock_ops_per_interval=3, cs_len=35, num_locks=16,
        footprint_lines=6000, shared_fraction=0.12, ilp=0.72,
    ),
    BenchmarkSpec(
        name="cholesky", suite="splash2", input_size="tk16.0",
        mix=dict(FP_MIX), barrier_intervals=3, work_per_interval=6400,
        imbalance=0.06, lock_ops_per_interval=2, cs_len=24, num_locks=32,
        footprint_lines=4000, shared_fraction=0.08, ilp=0.78,
        branch_bias=0.95,
    ),
    BenchmarkSpec(
        name="fft", suite="splash2", input_size="256K complex doubles",
        mix=dict(FP_MIX), barrier_intervals=6, work_per_interval=3200,
        imbalance=0.30, footprint_lines=6000, shared_fraction=0.18,
        ilp=0.80, branch_bias=0.97, loop_body=48,
    ),
    BenchmarkSpec(
        name="ocean", suite="splash2", input_size="258x258 ocean",
        mix=dict(FP_MIX), barrier_intervals=14, work_per_interval=1400,
        imbalance=0.45, footprint_lines=6000, shared_fraction=0.15,
        ilp=0.75, branch_bias=0.96, loop_body=56,
    ),
    BenchmarkSpec(
        name="radix", suite="splash2", input_size="1M keys, 1024 radix",
        mix=dict(INT_MEM_MIX), barrier_intervals=10, work_per_interval=1800,
        imbalance=0.42, footprint_lines=8000, shared_fraction=0.22,
        ilp=0.66, branch_bias=0.90, loop_body=40,
    ),
    BenchmarkSpec(
        name="raytrace", suite="splash2", input_size="Teapot",
        barrier_intervals=2, work_per_interval=7000, imbalance=0.25,
        lock_ops_per_interval=2, cs_len=25, num_locks=1,  # work-queue lock
        footprint_lines=5000, shared_fraction=0.10, ilp=0.70,
        branch_bias=0.88,
    ),
    BenchmarkSpec(
        name="tomcatv", suite="splash2", input_size="256 elements, 5 iterations",
        mix=dict(FP_MIX), barrier_intervals=10, work_per_interval=1900,
        imbalance=0.33, footprint_lines=6000, shared_fraction=0.12,
        ilp=0.78, branch_bias=0.97, loop_body=72,
    ),
    BenchmarkSpec(
        name="unstructured", suite="splash2", input_size="Mesh.2K, 5 time steps",
        barrier_intervals=5, work_per_interval=2000, imbalance=0.30,
        lock_ops_per_interval=3, cs_len=28, num_locks=2,
        footprint_lines=5000, shared_fraction=0.20, ilp=0.62,
        branch_bias=0.85, loop_body=36,
    ),
    BenchmarkSpec(
        name="waternsq", suite="splash2", input_size="512 molecules, 4 time steps",
        mix=dict(FP_MIX), barrier_intervals=8, work_per_interval=2100,
        imbalance=0.22, lock_ops_per_interval=2, cs_len=30, num_locks=4,
        footprint_lines=5000, shared_fraction=0.12, ilp=0.74,
    ),
    BenchmarkSpec(
        name="watersp", suite="splash2", input_size="512 molecules, 4 time steps",
        mix=dict(FP_MIX), barrier_intervals=8, work_per_interval=2300,
        imbalance=0.30, lock_ops_per_interval=2, cs_len=25, num_locks=8,
        footprint_lines=5000, shared_fraction=0.08, ilp=0.76,
    ),
)

#: PARSEC subset (Table 2, bottom block) — the applications that
#: finished within the authors' 3-day cluster limit.
PARSEC_SPECS: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        name="blackscholes", suite="parsec", input_size="simsmall",
        mix=dict(FP_MIX), barrier_intervals=1, work_per_interval=18000,
        imbalance=0.04, footprint_lines=3000, shared_fraction=0.02,
        ilp=0.82, branch_bias=0.98, loop_body=80,
    ),
    BenchmarkSpec(
        name="fluidanimate", suite="parsec", input_size="simsmall",
        mix=dict(FP_MIX), barrier_intervals=5, work_per_interval=2200,
        imbalance=0.25, lock_ops_per_interval=4, cs_len=25, num_locks=6,
        footprint_lines=5000, shared_fraction=0.15, ilp=0.70,
    ),
    BenchmarkSpec(
        name="swaptions", suite="parsec", input_size="simsmall",
        mix=dict(FP_MIX), barrier_intervals=1, work_per_interval=17000,
        imbalance=0.06, footprint_lines=4000, shared_fraction=0.02,
        ilp=0.80, branch_bias=0.97,
    ),
    BenchmarkSpec(
        name="x264", suite="parsec", input_size="simsmall",
        mix=dict(INT_MEM_MIX), barrier_intervals=2, work_per_interval=8200,
        imbalance=0.10, lock_ops_per_interval=3, cs_len=20, num_locks=8,
        footprint_lines=6000, shared_fraction=0.06, ilp=0.68,
        branch_bias=0.86, loop_body=44,
    ),
)

ALL_SPECS: Tuple[BenchmarkSpec, ...] = SPLASH2_SPECS + PARSEC_SPECS

SPECS_BY_NAME: Dict[str, BenchmarkSpec] = {s.name: s for s in ALL_SPECS}

#: Benchmark order used by the paper's per-benchmark figures.
BENCHMARK_ORDER: Tuple[str, ...] = tuple(s.name for s in ALL_SPECS)
