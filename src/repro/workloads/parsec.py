"""PARSEC benchmark models (Table 2, bottom block).

The paper uses the PARSEC applications that finished within its
simulation-time limit, all with ``simsmall`` inputs:

* **blackscholes** — embarrassingly parallel option pricing: one long
  compute region, synchronization only at the end (the paper notes it
  "only synchronizes at the end of the code").
* **fluidanimate** — SPH fluid: fine-grained cell locks with real
  contention plus per-frame barriers; lock-bound like Unstructured.
* **swaptions** — independent Monte-Carlo pricing, no contention.
* **x264** — pipeline-parallel encoder: mostly busy, sparse locking on
  reference-frame exchange.
"""

from __future__ import annotations

from typing import Tuple

from .characteristics import PARSEC_SPECS, BenchmarkSpec

PARSEC_NAMES: Tuple[str, ...] = tuple(s.name for s in PARSEC_SPECS)


def parsec_spec(name: str) -> BenchmarkSpec:
    for s in PARSEC_SPECS:
        if s.name == name:
            return s
    raise KeyError(f"{name!r} is not a PARSEC benchmark; see {PARSEC_NAMES}")


__all__ = ["PARSEC_NAMES", "PARSEC_SPECS", "parsec_spec"]
