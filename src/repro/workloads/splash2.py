"""SPLASH-2 benchmark models (Table 2, top block).

Convenience accessors for the ten SPLASH-2 applications the paper
evaluates.  The specs live in :mod:`repro.workloads.characteristics`;
this module exposes them by name and documents what each synthetic
model captures of the original:

* **barnes** — hierarchical N-body: tree-build critical sections over a
  lock pool plus imbalanced per-body force computation between barriers.
* **cholesky** — sparse factorisation: well-balanced task-queue code,
  little contention (the paper singles it out as "well balanced").
* **fft** — six transpose/compute steps separated by barriers, large
  footprint, very predictable branches.
* **ocean** — multigrid solver: many short barrier intervals with high
  imbalance (the paper's worst AoPB case under the naive split).
* **radix** — sort: barrier-separated counting/scan/permute steps with
  heavy shared traffic and an integer/memory mix.
* **raytrace** — a single contended work-queue lock feeding mostly
  independent rays (lock-acquisition time dominates its sync profile).
* **tomcatv** — mesh-generation kernel: iteration barriers, FP mix.
* **unstructured** — irregular mesh: many small critical sections on
  few locks; the paper's most lock-bound application.
* **waternsq** — O(n^2) molecular dynamics: per-molecule lock pool plus
  time-step barriers.
* **watersp** — spatial variant: same structure, far fewer lock ops.
"""

from __future__ import annotations

from typing import Tuple

from .characteristics import SPLASH2_SPECS, BenchmarkSpec

SPLASH2_NAMES: Tuple[str, ...] = tuple(s.name for s in SPLASH2_SPECS)


def splash2_spec(name: str) -> BenchmarkSpec:
    for s in SPLASH2_SPECS:
        if s.name == name:
            return s
    raise KeyError(f"{name!r} is not a SPLASH-2 benchmark; see {SPLASH2_NAMES}")


__all__ = ["SPLASH2_NAMES", "SPLASH2_SPECS", "splash2_spec"]
