"""Shared fixtures: small configurations and programs for fast tests."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, CMPConfig
from repro.isa.kmeans import default_token_classes
from repro.power.model import TOKEN_UNIT_EU
from repro.trace.phases import (
    BarrierPhase,
    ComputePhase,
    LockPhase,
    ParallelProgram,
    ThreadProgram,
)


@pytest.fixture(scope="session")
def token_map():
    return default_token_classes(token_unit=TOKEN_UNIT_EU)


@pytest.fixture
def cfg4():
    """A 4-core CMP with the paper's Table 1 parameters."""
    return CMPConfig(num_cores=4)


@pytest.fixture
def cfg2():
    return CMPConfig(num_cores=2)


def make_compute(n=2000, **kw) -> ComputePhase:
    kw.setdefault("footprint_lines", 512)
    return ComputePhase(instructions=n, **kw)


def make_program(
    num_threads: int,
    work: int = 1500,
    barriers: int = 2,
    lock_ops: int = 0,
    cs_len: int = 40,
    name: str = "test-prog",
) -> ParallelProgram:
    """A small, regular program: [compute, (lock cs)*, barrier] x N."""
    threads = []
    for t in range(num_threads):
        phases = []
        for b in range(barriers):
            phases.append(make_compute(work))
            for k in range(lock_ops):
                phases.append(
                    LockPhase(lock_id=0, critical_section=make_compute(cs_len))
                )
            phases.append(BarrierPhase(b))
        threads.append(ThreadProgram(thread_id=t, phases=tuple(phases)))
    return ParallelProgram(name=name, threads=tuple(threads))


@pytest.fixture
def small_program4():
    return make_program(4)


@pytest.fixture
def lock_program4():
    return make_program(4, work=800, barriers=1, lock_ops=3, cs_len=60)
