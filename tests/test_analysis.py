"""Tests for the experiment harness: runner cache, figures, TDP math."""

import pytest

from repro.analysis.experiments import (
    fig5_motivation,
    fig7_barrier_token_flow,
    fig8_balancer_constants,
    table1_configuration,
    table2_benchmarks,
)
from repro.analysis.report import (
    format_breakdown,
    format_metric_grid,
    format_spin_power,
    format_table,
)
from repro.analysis.runner import ExperimentRunner
from repro.analysis.tdp import (
    PAPER_CORE_COUNTS,
    PAPER_ERRORS,
    TDPScenario,
    cores_under_tdp,
    sec4d_table,
)


class TestRunnerCache:
    def test_memoizes_in_process(self, tmp_path):
        runner = ExperimentRunner(scale="tiny", cache_dir=tmp_path,
                                  max_cycles=30_000)
        a = runner.run("swaptions", 2, "none")
        b = runner.run("swaptions", 2, "none")
        assert a is b  # same object: in-memory hit

    def test_persists_across_runners(self, tmp_path):
        r1 = ExperimentRunner(scale="tiny", cache_dir=tmp_path,
                              max_cycles=30_000)
        a = r1.run("swaptions", 2, "none")
        r2 = ExperimentRunner(scale="tiny", cache_dir=tmp_path,
                              max_cycles=30_000)
        b = r2.run("swaptions", 2, "none")
        assert a.total_energy == pytest.approx(b.total_energy)
        assert a.cycles == b.cycles

    def test_distinct_recipes_distinct_results(self, tmp_path):
        runner = ExperimentRunner(scale="tiny", cache_dir=tmp_path,
                                  max_cycles=30_000)
        base = runner.run("swaptions", 2, "none")
        dvfs = runner.run("swaptions", 2, "dvfs")
        assert base.technique != dvfs.technique

    def test_no_cache_mode(self, tmp_path):
        runner = ExperimentRunner(scale="tiny", cache_dir=tmp_path,
                                  max_cycles=30_000, use_cache=False)
        runner.run("swaptions", 2, "none")
        assert not list(tmp_path.glob("run_*.pkl"))


class TestStaticFigures:
    def test_table1_text(self):
        text = table1_configuration()
        assert "3000 MHz" in text and "MOESI" in text

    def test_table2_rows(self):
        rows = table2_benchmarks()
        assert len(rows) == 14
        assert ("splash2", "ocean", "258x258 ocean") in rows

    def test_fig5_motivating_example(self):
        data = fig5_motivation()
        assert data["global_budget"] == 40
        assert data["local_budget"] == 10
        rows = data["rows"]
        # Paper: cycles 1, 2 and 4 exceed the global budget; cycle 3 not.
        assert [r["over_global"] for r in rows] == [True, True, False, True]
        # In cycle 1, cores 3&4 exceed local budgets (indices 2, 3).
        assert rows[0]["naive_throttled"] == [2, 3]
        # Cycle 3: no mechanism even though cores exceed local shares.
        assert rows[2]["naive_throttled"] == []

    def test_fig7_barrier_walkthrough_matches_paper(self):
        steps = fig7_barrier_token_flow()
        # Step a: core 2 (index 1) spins; others get 10+2.
        assert steps[0]["pool"] == 6
        assert set(steps[0]["effective_budgets"].values()) == {12}
        # Step b: two spinners; remaining cores get 10+6.
        assert set(steps[1]["effective_budgets"].values()) == {16}
        # Step c: three spinners; the last core gets 10+18.
        assert list(steps[2]["effective_budgets"].values()) == [28]

    def test_fig8_constants(self):
        data = fig8_balancer_constants()
        assert data[4]["round_trip_cycles"] == 3
        assert data[8]["round_trip_cycles"] == 5
        assert data[16]["round_trip_cycles"] == 10
        assert data[16]["power_overhead_pct"] == pytest.approx(1.0)


class TestTDP:
    def test_paper_numbers_reproduced(self):
        """Section IV.D: DVFS -> 19 cores, 2level -> 22, PTB -> 29."""
        for tech, cores in PAPER_CORE_COUNTS.items():
            assert cores_under_tdp(PAPER_ERRORS[tech]) == cores

    def test_perfect_accuracy_doubles_cores(self):
        assert cores_under_tdp(0.0) == 32

    def test_sec4d_table_includes_measured(self):
        table = sec4d_table({"ptb": 0.08})
        assert table["ptb"]["measured_cores"] >= 29
        assert table["ideal"]["paper_cores"] == 32

    def test_scenario_arithmetic(self):
        sc = TDPScenario()
        assert sc.baseline_per_core == pytest.approx(6.25)
        assert sc.budget_per_core == pytest.approx(3.125)

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            cores_under_tdp(-0.1)


class TestReportFormatting:
    def test_format_table_basic(self):
        text = format_table(["a", "b"], [["x", 1.5], ["y", -2.0]])
        assert "a" in text and "x" in text
        assert "+1.5" in text and "-2.0" in text

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_metric_grid(self):
        data = {
            "ocean": {"dvfs": {"aopb_pct": 80.0}, "ptb": {"aopb_pct": 10.0}},
        }
        text = format_metric_grid(data, "aopb_pct", title="AoPB")
        assert "AoPB" in text and "ocean" in text

    def test_format_breakdown(self):
        data = {"fft": {4: {"busy": 0.7, "lock_acq": 0.0,
                            "lock_rel": 0.0, "barrier": 0.3}}}
        text = format_breakdown(data)
        assert "fft" in text and "70.0" in text

    def test_format_spin_power(self):
        data = {"fft": {2: 0.05, 4: 0.10}}
        text = format_spin_power(data)
        assert "fft" in text and "10.0" in text
