"""Tests for the PTB load-balancer (paper Section III.E)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budget.ptb import PTBLoadBalancer


class TestDistributeToAll:
    def test_equal_split(self):
        grants = PTBLoadBalancer.distribute(12, [5, 5, 0, 5], "toall")
        assert grants == [4, 4, 0, 4]

    def test_remainder_spread(self):
        grants = PTBLoadBalancer.distribute(10, [1, 1, 1, 0], "toall")
        assert sorted(grants[:3]) == [3, 3, 4]
        assert grants[3] == 0

    def test_no_needy_no_grants(self):
        assert PTBLoadBalancer.distribute(100, [0, 0, 0], "toall") == [0, 0, 0]

    def test_empty_pool(self):
        assert PTBLoadBalancer.distribute(0, [5, 5], "toall") == [0, 0]

    def test_priority_core_included_even_if_not_over(self):
        grants = PTBLoadBalancer.distribute(10, [0, 4, 0, 0], "toall",
                                            priority=[2])
        assert grants[2] > 0  # lock holder served proactively

    def test_conservation(self):
        grants = PTBLoadBalancer.distribute(17, [3, 9, 1, 4], "toall")
        assert sum(grants) == 17


class TestDistributeToOne:
    def test_most_needy_served_first_and_fully(self):
        grants = PTBLoadBalancer.distribute(100, [10, 40, 5, 0], "toone")
        assert grants[1] == 80  # 2x its overshoot, served first
        assert grants[0] > 0    # remainder flows down

    def test_pool_exhausted_by_top_request(self):
        grants = PTBLoadBalancer.distribute(30, [10, 40, 5, 0], "toone")
        assert grants == [0, 30, 0, 0]

    def test_priority_outranks_overshoot(self):
        grants = PTBLoadBalancer.distribute(20, [0, 50, 0, 0], "toone",
                                            priority=[3])
        assert grants[3] > 0
        # Priority core served before the raw-overshoot core.
        assert grants[3] >= grants[1] or grants[1] < 50

    def test_no_requests_no_grants(self):
        assert PTBLoadBalancer.distribute(50, [0, 0], "toone") == [0, 0]

    def test_conservation_never_exceeds_pool(self):
        grants = PTBLoadBalancer.distribute(25, [30, 20, 10], "toone")
        assert sum(grants) <= 25

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            PTBLoadBalancer.distribute(1, [1], "banana")


class TestLatencyPipeline:
    def test_no_grants_before_latency(self):
        bal = PTBLoadBalancer(4, latency=3)
        for _ in range(3):
            grants = bal.cycle([5, 5, 0, 0], [0, 0, 9, 0], "toall")
            assert grants == [0, 0, 0, 0]
        grants = bal.cycle([5, 5, 0, 0], [0, 0, 9, 0], "toall")
        assert grants[2] == 10  # cycle-0 reports arrive at cycle 3

    def test_zero_latency_combinational(self):
        bal = PTBLoadBalancer(2, latency=0)
        grants = bal.cycle([7, 0], [0, 3], "toall")
        assert grants == [0, 7]

    def test_grants_reflect_old_snapshot(self):
        bal = PTBLoadBalancer(2, latency=1)
        bal.cycle([9, 0], [0, 1], "toall")     # t=0 report
        grants = bal.cycle([0, 0], [0, 0], "toall")  # nothing now
        assert grants == [0, 9]                # but t=0's spares arrive

    def test_pending_pledge(self):
        bal = PTBLoadBalancer(2, latency=3)
        bal.cycle([4, 0], [0, 1], "toall")
        bal.cycle([6, 0], [0, 1], "toall")
        assert bal.pending_pledge(0) == 10
        assert bal.pending_pledge(1) == 0

    def test_granted_total_accumulates(self):
        bal = PTBLoadBalancer(2, latency=0)
        bal.cycle([5, 0], [0, 2], "toall")
        bal.cycle([5, 0], [0, 2], "toall")
        assert bal.granted_total == 10

    def test_paper_latencies_used(self):
        from repro.config import PTBConfig

        cfg = PTBConfig()
        assert PTBLoadBalancer(4, cfg.round_trip_latency(4)).latency == 3
        assert PTBLoadBalancer(16, cfg.round_trip_latency(16)).latency == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            PTBLoadBalancer(0, 1)
        with pytest.raises(ValueError):
            PTBLoadBalancer(4, -1)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        pool=st.integers(0, 1000),
        overs=st.lists(st.integers(0, 100), min_size=1, max_size=16),
        policy=st.sampled_from(["toall", "toone"]),
    )
    def test_conservation_and_nonnegativity(self, pool, overs, policy):
        grants = PTBLoadBalancer.distribute(pool, overs, policy)
        assert sum(grants) <= max(pool, 0)
        assert all(g >= 0 for g in grants)
        # Tokens only flow to requesting cores (no priority hints here).
        for g, o in zip(grants, overs):
            if o == 0:
                assert g == 0

    @settings(max_examples=30, deadline=None)
    @given(
        pool=st.integers(1, 500),
        overs=st.lists(st.integers(0, 50), min_size=2, max_size=8),
    )
    def test_toall_split_is_fair(self, pool, overs):
        grants = PTBLoadBalancer.distribute(pool, overs, "toall")
        needy_grants = [g for g, o in zip(grants, overs) if o > 0]
        if needy_grants:
            assert max(needy_grants) - min(needy_grants) <= 1

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_with_priority_grants_never_exceed_pool(self, data):
        pool = data.draw(st.integers(0, 1000))
        overs = data.draw(st.lists(st.integers(0, 100), min_size=1,
                                   max_size=16))
        policy = data.draw(st.sampled_from(["toall", "toone"]))
        priority = data.draw(
            st.lists(st.integers(0, len(overs) - 1), max_size=4,
                     unique=True)
        )
        grants = PTBLoadBalancer.distribute(pool, overs, policy, priority)
        assert sum(grants) <= pool
        assert all(g >= 0 for g in grants)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_toone_priority_cores_served_first(self, data):
        """Under ToOne, contended-lock holders are served *fully* before
        any non-priority core sees a token (paper Section IV.B)."""
        pool = data.draw(st.integers(1, 1000))
        overs = data.draw(st.lists(st.integers(0, 100), min_size=2,
                                   max_size=16))
        priority = data.draw(
            st.lists(st.integers(0, len(overs) - 1), min_size=1,
                     max_size=4, unique=True)
        )
        grants = PTBLoadBalancer.distribute(pool, overs, "toone", priority)
        others_served = any(
            grants[i] > 0 for i in range(len(overs)) if i not in priority
        )
        if others_served:
            for p in priority:
                want = max(overs[p] * 2, 1)
                assert grants[p] == want  # fully served, with headroom

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_toall_shares_differ_by_at_most_one(self, data):
        """ToAll splits the pool evenly across the needy + priority set,
        remainder spread one token at a time."""
        pool = data.draw(st.integers(1, 500))
        overs = data.draw(st.lists(st.integers(0, 50), min_size=2,
                                   max_size=12))
        priority = data.draw(
            st.lists(st.integers(0, len(overs) - 1), max_size=3,
                     unique=True)
        )
        grants = PTBLoadBalancer.distribute(pool, overs, "toall", priority)
        served = [
            grants[i] for i in range(len(overs))
            if overs[i] > 0 or i in priority
        ]
        if served:
            assert max(served) - min(served) <= 1
            assert sum(grants) == pool  # whole pool distributed, no minting
