"""Tests for the gshare branch predictor."""

import pytest

from repro.core.branch import GsharePredictor


class TestGshare:
    def test_initial_state_weakly_taken(self):
        p = GsharePredictor()
        assert p.predict(0x400)

    def test_learns_always_taken_loop(self):
        p = GsharePredictor()
        for _ in range(100):
            p.update(0x400, True)
        miss_before = p.mispredictions
        for _ in range(100):
            p.update(0x400, True)
        assert p.mispredictions == miss_before  # perfect on the loop

    def test_learns_always_not_taken(self):
        p = GsharePredictor()
        for _ in range(10):
            p.update(0x800, False)
        assert not p.predict(0x800)

    def test_accuracy_on_biased_branch(self):
        import random

        rnd = random.Random(3)
        p = GsharePredictor()
        for _ in range(4000):
            p.update(0x123C, rnd.random() < 0.9)
        assert p.accuracy > 0.80

    def test_random_branch_is_hard(self):
        import random

        rnd = random.Random(4)
        p = GsharePredictor()
        for _ in range(4000):
            p.update(0x1240, rnd.random() < 0.5)
        assert p.accuracy < 0.75

    def test_history_length_mask(self):
        p = GsharePredictor(history_bits=4)
        for _ in range(100):
            p.update(0, True)
        assert p.history == 0xF

    def test_alternating_pattern_learned_via_history(self):
        """gshare separates T/NT contexts of a period-2 branch."""
        p = GsharePredictor()
        taken = True
        for _ in range(2000):
            p.update(0x5000, taken)
            taken = not taken
        miss_before = p.mispredictions
        for _ in range(200):
            p.update(0x5000, taken)
            taken = not taken
        recent_acc = 1 - (p.mispredictions - miss_before) / 200
        assert recent_acc > 0.95

    def test_table_size_validation(self):
        with pytest.raises(ValueError):
            GsharePredictor(table_bytes=0)
        with pytest.raises(ValueError):
            GsharePredictor(table_bytes=3000)  # not a power of two counters

    def test_counters_saturate(self):
        p = GsharePredictor()
        p.history = 0
        for _ in range(10):
            i = p._index(0x100)
            p._table[i] = min(3, p._table[i] + 1)
        assert p._table[p._index(0x100)] == 3
