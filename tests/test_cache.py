"""Tests for the set-associative cache (repro.mem.cache)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.mem.cache import Cache


def small_cache(sets=4, assoc=2):
    return Cache(CacheConfig(sets * assoc * 64, assoc))


class TestBasicOperations:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.probe(0x100)
        c.fill(0x100)
        assert c.probe(0x100)
        assert c.hits == 1
        assert c.misses == 1

    def test_contains_does_not_count(self):
        c = small_cache()
        c.fill(5)
        assert c.contains(5)
        assert not c.contains(6)
        assert c.hits == 0
        assert c.misses == 0

    def test_invalidate(self):
        c = small_cache()
        c.fill(9)
        assert c.invalidate(9)
        assert not c.contains(9)
        assert not c.invalidate(9)  # already gone

    def test_fill_same_line_twice_no_eviction(self):
        c = small_cache()
        assert c.fill(3) is None
        assert c.fill(3) is None
        valid, _ = c.occupancy()
        assert valid == 1

    def test_flush(self):
        c = small_cache()
        for line in range(8):
            c.fill(line)
        c.flush()
        assert c.occupancy()[0] == 0


class TestLRUReplacement:
    def test_evicts_least_recently_used(self):
        c = small_cache(sets=1, assoc=2)
        c.fill(0)
        c.fill(1)
        c.probe(0)          # 0 is now MRU
        victim = c.fill(2)  # evicts 1
        assert victim == 1
        assert c.contains(0)
        assert c.contains(2)

    def test_probe_refreshes_lru(self):
        c = small_cache(sets=1, assoc=4)
        for line in range(4):
            c.fill(line)
        c.probe(0)
        c.probe(1)
        victim = c.fill(99)
        assert victim == 2  # oldest untouched

    def test_eviction_counter(self):
        c = small_cache(sets=1, assoc=2)
        c.fill(0)
        c.fill(1)
        c.fill(2)
        assert c.evictions == 1

    def test_set_isolation(self):
        """Lines mapping to different sets never evict each other."""
        c = small_cache(sets=4, assoc=1)
        c.fill(0)  # set 0
        c.fill(1)  # set 1
        c.fill(2)  # set 2
        assert c.contains(0) and c.contains(1) and c.contains(2)

    def test_conflict_in_same_set(self):
        c = small_cache(sets=4, assoc=1)
        c.fill(0)
        victim = c.fill(4)  # same set (line % 4 == 0)
        assert victim == 0


class TestOccupancyInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    def test_never_exceeds_capacity(self, lines):
        c = small_cache(sets=4, assoc=2)
        for line in lines:
            if not c.probe(line):
                c.fill(line)
        valid, capacity = c.occupancy()
        assert valid <= capacity == 8

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    def test_fill_then_immediate_probe_hits(self, lines):
        c = small_cache(sets=8, assoc=2)
        for line in lines:
            c.fill(line)
            assert c.probe(line)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 31), min_size=5, max_size=100))
    def test_hits_plus_misses_equals_accesses(self, lines):
        c = small_cache()
        for line in lines:
            c.probe(line)
            c.fill(line)
        assert c.hits + c.misses == c.accesses == len(lines)

    def test_working_set_within_capacity_converges_to_hits(self):
        c = small_cache(sets=8, assoc=2)  # 16 lines
        lines = list(range(12))
        for _ in range(3):
            for line in lines:
                if not c.probe(line):
                    c.fill(line)
        # Last two passes should be pure hits.
        assert c.hits >= 2 * len(lines)
