"""Tests for the report-generation CLI."""

import pytest

from repro.analysis.cli import RENDERERS, main


class TestCLI:
    def test_all_figures_registered(self):
        expected = {"table1", "table2", "sec4d"} | {
            f"fig{i}" for i in range(2, 15)
        }
        assert set(RENDERERS) == expected

    def test_writes_static_figures(self, tmp_path, capsys):
        rc = main(["table1", "table2", "fig5", "fig7", "fig8",
                   "--out", str(tmp_path)])
        assert rc == 0
        for name in ("table1", "table2", "fig5", "fig7", "fig8"):
            f = tmp_path / f"{name}.txt"
            assert f.exists()
            assert f.read_text().strip()

    def test_stdout_mode(self, capsys):
        rc = main(["fig7", "--stdout"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig99", "--out", str(tmp_path)])

    def test_table1_contents(self, tmp_path):
        main(["table1", "--out", str(tmp_path)])
        text = (tmp_path / "table1.txt").read_text()
        assert "MOESI" in text and "3000 MHz" in text
