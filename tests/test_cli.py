"""Tests for the report-generation CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import RENDERERS, _emit_bench, load_bench, main

REPO = Path(__file__).resolve().parents[1]


class TestCLI:
    def test_all_figures_registered(self):
        expected = {"table1", "table2", "sec4d"} | {
            f"fig{i}" for i in range(2, 15)
        }
        assert set(RENDERERS) == expected

    def test_writes_static_figures(self, tmp_path, capsys):
        rc = main(["table1", "table2", "fig5", "fig7", "fig8",
                   "--out", str(tmp_path)])
        assert rc == 0
        for name in ("table1", "table2", "fig5", "fig7", "fig8"):
            f = tmp_path / f"{name}.txt"
            assert f.exists()
            assert f.read_text().strip()

    def test_stdout_mode(self, capsys):
        rc = main(["fig7", "--stdout"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig99", "--out", str(tmp_path)])

    def test_table1_contents(self, tmp_path):
        main(["table1", "--out", str(tmp_path)])
        text = (tmp_path / "table1.txt").read_text()
        assert "MOESI" in text and "3000 MHz" in text

    def test_static_render_writes_no_bench_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        main(["fig7", "--out", str(tmp_path / "r")])
        assert not (tmp_path / "BENCH_runner.json").exists()

    def test_bad_jobs_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig7", "--jobs", "0", "--out", str(tmp_path)])


class TestParallelCLI:
    """--jobs N and --jobs 1 produce byte-identical reports, and each
    cold render appends a wall-clock entry to BENCH_runner.json."""

    @pytest.fixture(autouse=True)
    def small_world(self, tmp_path, monkeypatch):
        # Two benchmarks, tiny scale, private cache: seconds not minutes.
        from repro.analysis import experiments as ex

        monkeypatch.setattr(ex, "benchmark_names",
                            lambda: ["swaptions", "blackscholes"])
        monkeypatch.setattr(ex, "CORE_COUNTS", (2,))
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        self.tmp = tmp_path

    def _render(self, jobs, tag):
        out = self.tmp / f"out_{tag}"
        bench = self.tmp / "BENCH_runner.json"
        rc = main(["fig3", "--scale", "tiny", "--jobs", str(jobs),
                   "--out", str(out), "--bench-out", str(bench)])
        assert rc == 0
        return (out / "fig3.txt").read_bytes()

    def test_jobs_determinism_and_bench_entries(self, monkeypatch):
        a = self._render(2, "j2")
        # Fresh cache for the serial run: a true cold re-render.
        monkeypatch.setenv("REPRO_CACHE", str(self.tmp / "cache1"))
        b = self._render(1, "j1")
        assert a == b  # byte-identical across worker counts
        data = json.loads((self.tmp / "BENCH_runner.json").read_text())
        jobs = [e["jobs"] for e in data["entries"]]
        assert jobs == [2, 1]
        for e in data["entries"]:
            assert e["wall_seconds"] > 0
            # Cold render: everything simulated once, then the figure
            # function's own plan pass re-finds it all warm in memory.
            assert e["simulated"] > 0
            assert e["planned"] >= e["simulated"]
            assert e["mem_hits"] >= e["simulated"]


class TestBenchLoader:
    """load_bench normalises every entry to one shape and round-trips."""

    def test_repo_file_has_uniform_shape(self):
        entries = load_bench(REPO / "BENCH_runner.json")
        assert entries, "repo BENCH_runner.json should have entries"
        for e in entries:
            assert "schema_version" in e
            assert "git_sha" in e  # null for legacy v1 entries

    def test_round_trip_preserves_entries(self, tmp_path):
        src = REPO / "BENCH_runner.json"
        copy = tmp_path / "BENCH_runner.json"
        copy.write_text(src.read_text())
        before = load_bench(copy)
        _emit_bench(copy, {"schema_version": 2, "git_sha": "deadbee",
                           "jobs": 1, "wall_seconds": 0.1})
        after = load_bench(copy)
        assert after[:-1] == before
        assert after[-1]["git_sha"] == "deadbee"

    def test_legacy_entry_stamped_on_load(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(
            {"entries": [{"jobs": 4, "wall_seconds": 1.0}]}
        ))
        (entry,) = load_bench(path)
        assert entry["schema_version"] == 1
        assert entry["git_sha"] is None

    def test_corrupt_file_loads_empty(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        assert load_bench(path) == []
        assert load_bench(tmp_path / "missing.json") == []
