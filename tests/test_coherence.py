"""Tests for the MOESI directory protocol (repro.mem.coherence)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.mem.coherence import Directory, State
from repro.noc.mesh import Mesh2D


@pytest.fixture
def directory():
    mesh = Mesh2D(4, NetworkConfig())
    return Directory(4, mesh, memory_latency=300)


LINE = 0x40


class TestReadPath:
    def test_first_read_grants_exclusive(self, directory):
        res = directory.read_miss(0, LINE)
        assert directory.state_of(0, LINE) == State.E
        assert not res.from_cache
        assert res.latency >= 300  # memory fetch

    def test_second_reader_shares(self, directory):
        directory.read_miss(0, LINE)
        res = directory.read_miss(1, LINE)
        assert directory.state_of(1, LINE) == State.S
        assert directory.state_of(0, LINE) == State.S  # E downgraded
        assert res.from_cache
        assert res.latency < 300

    def test_read_from_modified_makes_owner(self, directory):
        directory.write_miss(0, LINE)
        res = directory.read_miss(1, LINE)
        # MOESI: dirty copy stays on chip, previous writer becomes Owner.
        assert directory.state_of(0, LINE) == State.O
        assert directory.state_of(1, LINE) == State.S
        assert res.from_cache

    def test_many_readers_all_shared(self, directory):
        for core in range(4):
            directory.read_miss(core, LINE)
        states = [directory.state_of(c, LINE) for c in range(4)]
        assert states[0] in (State.E, State.S)
        assert all(s in (State.S, State.E) for s in states)
        directory.check_invariants()


class TestWritePath:
    def test_write_grants_modified(self, directory):
        directory.write_miss(0, LINE)
        assert directory.state_of(0, LINE) == State.M

    def test_write_invalidates_sharers(self, directory):
        directory.read_miss(0, LINE)
        directory.read_miss(1, LINE)
        directory.read_miss(2, LINE)
        res = directory.write_miss(3, LINE)
        assert res.invalidations >= 2
        for core in range(3):
            assert directory.state_of(core, LINE) == State.I
        assert directory.state_of(3, LINE) == State.M

    def test_write_steals_modified(self, directory):
        directory.write_miss(0, LINE)
        res = directory.write_miss(1, LINE)
        assert directory.state_of(0, LINE) == State.I
        assert directory.state_of(1, LINE) == State.M
        assert res.from_cache  # dirty forward, not memory

    def test_upgrade_from_shared(self, directory):
        directory.read_miss(0, LINE)
        directory.read_miss(1, LINE)
        directory.write_miss(0, LINE)
        assert directory.state_of(0, LINE) == State.M
        assert directory.state_of(1, LINE) == State.I


class TestEviction:
    def test_clean_eviction_no_writeback(self, directory):
        directory.read_miss(0, LINE)
        assert directory.evict(0, LINE) is False
        assert directory.state_of(0, LINE) == State.I

    def test_dirty_eviction_writes_back(self, directory):
        directory.write_miss(0, LINE)
        assert directory.evict(0, LINE) is True
        assert directory.writebacks == 1

    def test_owner_eviction_writes_back(self, directory):
        directory.write_miss(0, LINE)
        directory.read_miss(1, LINE)  # 0 becomes O
        assert directory.evict(0, LINE) is True

    def test_evicting_uncached_is_noop(self, directory):
        assert directory.evict(2, LINE) is False

    def test_entry_removed_when_uncached(self, directory):
        directory.read_miss(0, LINE)
        directory.evict(0, LINE)
        assert LINE not in directory._entries

    def test_refetch_after_full_eviction_goes_to_memory(self, directory):
        directory.read_miss(0, LINE)
        directory.evict(0, LINE)
        res = directory.read_miss(1, LINE)
        assert not res.from_cache


class TestLatencies:
    def test_farther_cores_pay_more(self, directory):
        directory.write_miss(0, 0)  # home of line 0 is core 0
        a = directory.read_miss(1, 0).latency
        directory2 = Directory(4, Mesh2D(4, NetworkConfig()), 300)
        directory2.write_miss(0, 0)
        b = directory2.read_miss(3, 0).latency
        assert b >= a  # core 3 is farther from core 0 than core 1

    def test_home_interleaving(self, directory):
        assert directory.home_of(0) == 0
        assert directory.home_of(1) == 1
        assert directory.home_of(5) == 1


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "evict"]),
                st.integers(0, 3),    # core
                st.integers(0, 7),    # line
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_random_traffic_preserves_moesi_invariants(self, ops):
        directory = Directory(4, Mesh2D(4, NetworkConfig()), 300)
        for op, core, line in ops:
            if op == "read":
                directory.read_miss(core, line)
            elif op == "write":
                directory.write_miss(core, line)
            else:
                directory.evict(core, line)
            directory.check_invariants()

    def test_single_writer_invariant_explicit(self, directory):
        directory.write_miss(0, LINE)
        directory.write_miss(1, LINE)
        directory.write_miss(2, LINE)
        holders = [
            c for c in range(4)
            if directory.state_of(c, LINE) in (State.M, State.E, State.O)
        ]
        assert len(holders) == 1
