"""Tests for repro.config — the Table 1 configuration layer."""

import math

import pytest

from repro.config import (
    CacheConfig,
    CMPConfig,
    CoreConfig,
    DEFAULT_CONFIG,
    DFS_MODES,
    DVFS_MODES,
    DVFSConfig,
    MemoryConfig,
    NetworkConfig,
    PTBConfig,
    TechConfig,
)


class TestCacheConfig:
    def test_l1_geometry_matches_table1(self):
        l1 = DEFAULT_CONFIG.mem.l1d
        assert l1.size_bytes == 64 * 1024
        assert l1.assoc == 2
        assert l1.latency == 1
        assert l1.num_sets == 512

    def test_l2_geometry_matches_table1(self):
        l2 = DEFAULT_CONFIG.mem.l2_per_core
        assert l2.size_bytes == 1024 * 1024
        assert l2.assoc == 4
        assert l2.latency == 12
        assert l2.num_sets == 4096

    def test_offset_bits(self):
        assert CacheConfig(64 * 1024, 2).offset_bits == 6  # 64 B lines

    def test_index_bits(self):
        c = CacheConfig(64 * 1024, 2)
        assert 1 << c.index_bits == c.num_sets

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(48 * 1024, 2)

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CacheConfig(0, 1)


class TestCoreConfig:
    def test_table1_defaults(self):
        c = CoreConfig()
        assert c.rob_entries == 128
        assert c.lsq_entries == 64
        assert c.decode_width == 4
        assert c.issue_width == 4
        assert c.int_alu == 6
        assert c.int_mult == 2
        assert c.fp_alu == 4
        assert c.fp_mult == 4
        assert c.pipeline_stages == 14
        assert c.bp_history_bits == 16
        assert c.bp_table_bytes == 64 * 1024

    def test_rejects_zero_rob(self):
        with pytest.raises(ValueError):
            CoreConfig(rob_entries=0)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            CoreConfig(decode_width=0)


class TestTechConfig:
    def test_table1_defaults(self):
        t = TechConfig()
        assert t.process_nm == 32
        assert t.frequency_mhz == 3000
        assert t.vdd == 0.9

    def test_cycle_time(self):
        assert math.isclose(TechConfig().cycle_time_ns, 1 / 3)

    def test_vth_must_be_below_vdd(self):
        with pytest.raises(ValueError):
            TechConfig(vth=0.95)


class TestDVFSModes:
    def test_five_modes(self):
        assert len(DVFS_MODES) == 5

    def test_paper_mode_values(self):
        assert DVFS_MODES[0] == (1.00, 1.00)
        assert DVFS_MODES[1] == (0.95, 0.95)
        assert DVFS_MODES[2] == (0.90, 0.90)
        assert DVFS_MODES[3] == (0.90, 0.75)
        assert DVFS_MODES[4] == (0.90, 0.65)

    def test_dfs_keeps_full_voltage(self):
        assert all(v == 1.0 for v, _ in DFS_MODES)
        assert [f for _, f in DFS_MODES] == [f for _, f in DVFS_MODES]

    def test_dvfs_config_validation(self):
        with pytest.raises(ValueError):
            DVFSConfig(window_cycles=0)
        with pytest.raises(ValueError):
            DVFSConfig(modes=((1.0, 1.0),))
        with pytest.raises(ValueError):
            DVFSConfig(modes=((1.0, 1.0), (0.0, 0.5)))


class TestPTBConfig:
    def test_paper_latencies(self):
        ptb = PTBConfig()
        assert ptb.round_trip_latency(4) == 3
        assert ptb.round_trip_latency(8) == 5
        assert ptb.round_trip_latency(16) == 10

    def test_two_core_latency_is_minimal(self):
        assert PTBConfig().round_trip_latency(2) == 3

    def test_clustering_caps_latency_above_16_cores(self):
        ptb = PTBConfig(cluster_size=16)
        assert ptb.round_trip_latency(64) == 10

    def test_latency_override(self):
        assert PTBConfig(latency_override=0).round_trip_latency(16) == 0

    def test_power_overhead_is_one_percent(self):
        assert PTBConfig().power_overhead == pytest.approx(0.01)

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            PTBConfig(policy="magic")

    def test_rejects_negative_relax(self):
        with pytest.raises(ValueError):
            PTBConfig(relax_threshold=-0.1)


class TestCMPConfig:
    def test_default_is_16_cores(self):
        assert DEFAULT_CONFIG.num_cores == 16

    @pytest.mark.parametrize("n,dims", [(2, (2, 1)), (4, (2, 2)),
                                        (8, (4, 2)), (16, (4, 4))])
    def test_mesh_dims(self, n, dims):
        assert CMPConfig(num_cores=n).mesh_dims == dims

    def test_with_cores(self):
        assert DEFAULT_CONFIG.with_cores(8).num_cores == 8
        # original untouched (frozen dataclass semantics)
        assert DEFAULT_CONFIG.num_cores == 16

    def test_with_ptb(self):
        c = DEFAULT_CONFIG.with_ptb(policy="toone", relax_threshold=0.2)
        assert c.ptb.policy == "toone"
        assert c.ptb.relax_threshold == 0.2
        assert DEFAULT_CONFIG.ptb.policy == "toall"

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            CMPConfig(num_cores=0)

    def test_describe_contains_table1_lines(self):
        text = DEFAULT_CONFIG.describe()
        assert "32 nanometres" in text
        assert "3000 MHz" in text
        assert "0.9 V" in text
        assert "128 entries + 64 Load Store Queue" in text
        assert "14 stages" in text
        assert "MOESI" in text
        assert "300 Cycles" in text
        assert "2D mesh" in text
        assert "4 bytes" in text

    def test_memory_config_validation(self):
        with pytest.raises(ValueError):
            MemoryConfig(memory_latency=0)
        with pytest.raises(ValueError):
            MemoryConfig(coherence_protocol="MOOSE")

    def test_network_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(link_latency=0)
