"""Tests for budget controllers (naive split and PTB)."""

import pytest

from repro.budget import make_controller
from repro.budget.controller import BudgetController, LocalBudgetController
from repro.budget.ptb import PTBController
from repro.config import CMPConfig
from repro.power.microarch import Technique
from repro.power.model import EnergyModel


@pytest.fixture
def env():
    cfg = CMPConfig(num_cores=4)
    energy = EnergyModel(cfg)
    budget = 0.5 * energy.global_peak_power(4)
    return cfg, energy, budget


def tok(energy, power):
    over = power - energy.uncontrollable_power
    return int(energy.eu_to_tokens(over)) if over > 0 else 0


class TestFactory:
    def test_all_techniques(self, env):
        cfg, energy, budget = env
        for name, cls in [
            ("none", BudgetController),
            ("dvfs", LocalBudgetController),
            ("dfs", LocalBudgetController),
            ("2level", LocalBudgetController),
            ("ptb", PTBController),
        ]:
            ctl = make_controller(name, cfg, energy, budget)
            assert isinstance(ctl, cls)
            assert ctl.name == name

    def test_unknown_rejected(self, env):
        cfg, energy, budget = env
        with pytest.raises(ValueError):
            make_controller("magic", cfg, energy, budget)

    def test_ptht_flags(self, env):
        cfg, energy, budget = env
        assert not make_controller("dvfs", cfg, energy, budget).uses_ptht
        assert make_controller("2level", cfg, energy, budget).uses_ptht
        assert make_controller("ptb", cfg, energy, budget).uses_ptht


class TestNoControl:
    def test_everything_permitted(self, env):
        cfg, energy, budget = env
        ctl = BudgetController(cfg, energy, budget)
        ctl.end_cycle(0, [0] * 4, [999.0] * 4)
        assert all(ctl.execute)
        assert all(ctl.fetch_allowed)
        assert all(v == 1.0 for v in ctl.v_scale)

    def test_budget_lines_are_equal_share(self, env):
        cfg, energy, budget = env
        ctl = BudgetController(cfg, energy, budget)
        assert ctl.budget_lines == [budget / 4] * 4


class TestNaiveTrigger:
    def test_no_throttle_when_global_under(self, env):
        cfg, energy, budget = env
        ctl = LocalBudgetController(cfg, energy, budget, "2level")
        local = ctl.local_budget
        # One core over local, but the CMP total is under.
        powers = [local * 1.5, 1.0, 1.0, 1.0]
        for cyc in range(5):
            ctl.end_cycle(cyc, [tok(energy, p) for p in powers], powers)
        assert ctl.technique_of(0) == Technique.NONE

    def test_throttles_over_core_when_global_over(self, env):
        cfg, energy, budget = env
        ctl = LocalBudgetController(cfg, energy, budget, "2level")
        local = ctl.local_budget
        powers = [local * 1.6] * 4  # everyone over -> global over
        for cyc in range(5):
            ctl.end_cycle(cyc, [tok(energy, p) for p in powers], powers)
        assert all(
            ctl.technique_of(i) != Technique.NONE for i in range(4)
        )
        assert ctl.throttled_cycles > 0

    def test_deeper_overshoot_harsher_technique(self, env):
        cfg, energy, budget = env
        ctl = LocalBudgetController(cfg, energy, budget, "2level")
        local = ctl.local_budget
        powers = [local * 3.0, local * 1.06, local * 1.06, local * 1.06]
        ctl.end_cycle(0, [tok(energy, p) for p in powers], powers)
        assert ctl.technique_of(0) > ctl.technique_of(1)

    def test_under_core_not_throttled(self, env):
        cfg, energy, budget = env
        ctl = LocalBudgetController(cfg, energy, budget, "2level")
        local = ctl.local_budget
        powers = [local * 2.5, local * 2.5, local * 2.5, local * 0.2]
        ctl.end_cycle(0, [tok(energy, p) for p in powers], powers)
        assert ctl.technique_of(3) == Technique.NONE

    def test_dvfs_only_reacts_at_window_end(self, env):
        cfg, energy, budget = env
        ctl = LocalBudgetController(cfg, energy, budget, "dvfs")
        local = ctl.local_budget
        powers = [local * 2.0] * 4
        for cyc in range(cfg.dvfs.window_cycles - 1):
            ctl.end_cycle(cyc, [0] * 4, powers)
        assert ctl.mode_of(0) == 0  # not yet

    def test_dvfs_engages_after_over_window(self, env):
        cfg, energy, budget = env
        ctl = LocalBudgetController(cfg, energy, budget, "dvfs")
        local = ctl.local_budget
        powers = [local * 2.0] * 4
        for cyc in range(2 * cfg.dvfs.window_cycles + 1):
            ctl.end_cycle(cyc, [0] * 4, powers)
        assert ctl._dvfs[0].target_mode > 0


class TestPTBController:
    def test_budget_lines_rise_with_grants(self, env):
        cfg, energy, budget = env
        ctl = PTBController(cfg, energy, budget, policy="toall")
        local = ctl.local_budget
        # Cores 0-2 spin (low power), core 3 well over its share.
        powers = [local * 0.3] * 3 + [local * 1.6]
        tokens = [tok(energy, p) for p in powers]
        latency = cfg.ptb.round_trip_latency(4)
        for cyc in range(latency + 3):
            ctl.end_cycle(cyc, tokens, powers)
        assert ctl.budget_lines[3] > local
        assert ctl._grants[3] > 0

    def test_grant_conservation(self, env):
        """Granted lines never exceed local shares + reported spares."""
        cfg, energy, budget = env
        ctl = PTBController(cfg, energy, budget, policy="toall")
        local = ctl.local_budget
        powers = [local * 0.2] * 2 + [local * 1.8] * 2
        tokens = [tok(energy, p) for p in powers]
        for cyc in range(20):
            ctl.end_cycle(cyc, tokens, powers)
            granted_eu = sum(
                max(0.0, line - local) for line in ctl.budget_lines
            )
            spare_eu = sum(max(0.0, local - p) for p in powers)
            assert granted_eu <= spare_eu * 1.05 + 1e-6

    def test_granted_core_not_throttled(self, env):
        cfg, energy, budget = env
        ctl = PTBController(cfg, energy, budget, policy="toall")
        local = ctl.local_budget
        powers = [local * 0.2] * 3 + [local * 1.5]
        tokens = [tok(energy, p) for p in powers]
        for cyc in range(20):
            ctl.end_cycle(cyc, tokens, powers)
        # Enough spare flows that core 3 keeps running unthrottled.
        assert ctl.technique_of(3) == Technique.NONE

    def test_all_over_behaves_like_2level(self, env):
        cfg, energy, budget = env
        ctl = PTBController(cfg, energy, budget, policy="toall")
        local = ctl.local_budget
        powers = [local * 1.8] * 4  # nobody has spares
        tokens = [tok(energy, p) for p in powers]
        for cyc in range(20):
            ctl.end_cycle(cyc, tokens, powers)
        assert any(ctl.technique_of(i) != Technique.NONE for i in range(4))

    def test_relaxation_delays_trigger(self, env):
        cfg, energy, budget = env
        strict = PTBController(cfg, energy, budget, policy="toall")
        relaxed_cfg = cfg.with_ptb(relax_threshold=5.0)
        relaxed = PTBController(relaxed_cfg, energy, budget, policy="toall")
        local = strict.local_budget
        powers = [local * 1.4] * 4
        tokens = [tok(energy, p) for p in powers]
        for cyc in range(20):
            strict.end_cycle(cyc, tokens, powers)
            relaxed.end_cycle(cyc, tokens, powers)
        assert strict.throttled_cycles > relaxed.throttled_cycles

    def test_policy_validation(self, env):
        cfg, energy, budget = env
        with pytest.raises(ValueError):
            PTBController(cfg, energy, budget, policy="nope")

    def test_dynamic_policy_follows_sync_state(self, env):
        cfg, energy, budget = env
        ctl = PTBController(cfg, energy, budget, policy="dynamic")

        class FakeSync:
            def __init__(self, locks, barriers):
                self._l, self._b = locks, barriers

            def cores_waiting_on_locks(self):
                return self._l

            def cores_waiting_on_barriers(self):
                return self._b

            def contended_lock_holders(self):
                return []

        assert ctl._select_policy(FakeSync(3, 0)) == "toone"
        assert ctl._select_policy(FakeSync(0, 3)) == "toall"
        assert ctl.policy_switches >= 1

    def test_static_policy_ignores_sync_state(self, env):
        cfg, energy, budget = env
        ctl = PTBController(cfg, energy, budget, policy="toall")
        assert ctl._select_policy(None) == "toall"
