"""Tests for the DVFS/DFS controller."""

import pytest

from repro.config import DVFSConfig
from repro.power.dvfs import DVFSController


def run_window(ctl, power, budget, cycles=None):
    """Feed constant power for one full window."""
    cycles = cycles if cycles is not None else ctl.cfg.window_cycles
    executed = 0
    for _ in range(cycles):
        if ctl.tick(power, budget):
            executed += 1
    return executed


class TestModeSelection:
    def test_stays_at_full_speed_under_budget(self):
        ctl = DVFSController(DVFSConfig())
        run_window(ctl, power=10.0, budget=100.0)
        assert ctl.mode == 0

    def test_steps_down_when_over_budget(self):
        ctl = DVFSController(DVFSConfig())
        run_window(ctl, power=50.0, budget=40.0)
        assert ctl.target_mode > 0

    def test_selects_mode_that_fits(self):
        ctl = DVFSController(DVFSConfig())
        # Need scale <= 0.6 -> mode 4 (0.9^2*0.65 = 0.527).
        run_window(ctl, power=100.0, budget=60.0)
        assert ctl.target_mode == 4

    def test_picks_mildest_sufficient_mode(self):
        ctl = DVFSController(DVFSConfig())
        # Need scale <= 0.9 -> mode 1 (0.857) suffices.
        run_window(ctl, power=100.0, budget=90.0)
        assert ctl.target_mode == 1

    def test_steps_back_up_when_budget_relaxes(self):
        ctl = DVFSController(DVFSConfig(transition_cycles_per_step=1))
        run_window(ctl, power=100.0, budget=55.0)
        for _ in range(10):
            ctl.tick(40.0, float("inf"))
        run_window(ctl, power=40.0, budget=float("inf"))
        # allow the transition to complete
        for _ in range(20):
            ctl.tick(40.0, float("inf"))
        assert ctl.mode == 0


class TestTransitions:
    def test_transition_latency_proportional_to_steps(self):
        cfg = DVFSConfig(transition_cycles_per_step=10)
        ctl = DVFSController(cfg)
        run_window(ctl, power=100.0, budget=55.0)  # target mode 4
        assert ctl.in_transition
        assert ctl.mode == 0
        for _ in range(4 * 10):
            ctl.tick(100.0, 55.0)
        assert not ctl.in_transition
        assert ctl.mode == 4

    def test_transition_pays_higher_voltage(self):
        ctl = DVFSController(DVFSConfig())
        run_window(ctl, power=100.0, budget=55.0)
        assert ctl.in_transition
        assert ctl.v_scale == max(ctl.modes[0][0], ctl.modes[4][0])
        assert ctl.f_scale == min(ctl.modes[0][1], ctl.modes[4][1])

    def test_transitions_counted(self):
        ctl = DVFSController(DVFSConfig())
        run_window(ctl, power=100.0, budget=55.0)
        assert ctl.transitions == 1


class TestFrequencySkipping:
    def test_full_speed_executes_every_cycle(self):
        ctl = DVFSController(DVFSConfig())
        assert run_window(ctl, 1.0, 100.0, cycles=100) == 100

    def test_low_mode_skips_cycles(self):
        ctl = DVFSController(DVFSConfig(transition_cycles_per_step=0))
        ctl.force_mode(4)  # f = 0.65
        executed = run_window(ctl, 1.0, float("inf"), cycles=1000)
        assert executed == pytest.approx(650, abs=10)

    def test_mode2_rate(self):
        # Window larger than the measurement so the controller holds mode 2.
        ctl = DVFSController(DVFSConfig(window_cycles=4096))
        ctl.force_mode(2)  # f = 0.90
        executed = run_window(ctl, 1.0, float("inf"), cycles=1000)
        assert executed == pytest.approx(900, abs=10)


class TestDFS:
    def test_dfs_never_lowers_voltage(self):
        ctl = DVFSController(DVFSConfig(), dfs=True)
        run_window(ctl, power=100.0, budget=55.0)
        for _ in range(100):
            ctl.tick(100.0, 55.0)
        assert ctl.v_scale == 1.0

    def test_dfs_has_less_headroom(self):
        """DFS's deepest mode only reaches 65% power; DVFS reaches ~53%."""
        dvfs = DVFSController(DVFSConfig())
        dfs = DVFSController(DVFSConfig(), dfs=True)
        v, f = dvfs.modes[-1]
        assert v * v * f == pytest.approx(0.527, abs=0.01)
        v, f = dfs.modes[-1]
        assert v * v * f == pytest.approx(0.65, abs=0.01)

    def test_force_mode_validation(self):
        ctl = DVFSController(DVFSConfig())
        with pytest.raises(ValueError):
            ctl.force_mode(9)
