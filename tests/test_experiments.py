"""End-to-end tests of the per-figure experiment functions.

These run the actual figure builders on a two-benchmark, two-core-count
subset at tiny scale (seconds, uncached), checking structure and the
invariants that hold at any scale.
"""

import pytest

from repro.analysis.experiments import (
    fig2_naive_split,
    fig3_time_breakdown,
    fig4_spin_power,
    fig9_core_policy_sweep,
    fig13_performance,
    fig14_relaxed_ptb,
)
from repro.analysis.runner import ExperimentRunner

SUBSET = ("ocean", "blackscholes")
CORES = (2, 4)


@pytest.fixture(scope="module")
def tiny_runner(tmp_path_factory):
    return ExperimentRunner(
        scale="tiny",
        cache_dir=tmp_path_factory.mktemp("cache"),
        max_cycles=120_000,
    )


class TestFig2:
    def test_structure_and_avg(self, tiny_runner):
        data = fig2_naive_split(tiny_runner, cores=2, benchmarks=SUBSET)
        assert set(data) == set(SUBSET) | {"Avg."}
        for row in data.values():
            assert set(row) == {"dvfs", "dfs", "2level"}
            for m in row.values():
                assert set(m) == {"energy_pct", "aopb_pct"}

    def test_avg_is_mean_of_rows(self, tiny_runner):
        data = fig2_naive_split(tiny_runner, cores=2, benchmarks=SUBSET)
        manual = sum(data[b]["dvfs"]["aopb_pct"] for b in SUBSET) / 2
        assert data["Avg."]["dvfs"]["aopb_pct"] == pytest.approx(manual)


class TestFig3And4:
    def test_breakdown_fractions_valid(self, tiny_runner):
        data = fig3_time_breakdown(tiny_runner, core_counts=CORES,
                                   benchmarks=SUBSET)
        for bench in SUBSET:
            for n in CORES:
                fr = data[bench][n]
                assert sum(fr.values()) == pytest.approx(1.0)
                assert all(0.0 <= v <= 1.0 for v in fr.values())

    def test_spin_power_bounds(self, tiny_runner):
        data = fig4_spin_power(tiny_runner, core_counts=CORES,
                               benchmarks=SUBSET)
        for bench in list(SUBSET) + ["Avg."]:
            for n in CORES:
                assert 0.0 <= data[bench][n] < 1.0

    def test_sync_heavy_spins_more_than_compute_bound(self, tiny_runner):
        data = fig4_spin_power(tiny_runner, core_counts=(4,),
                               benchmarks=SUBSET)
        assert data["ocean"][4] > data["blackscholes"][4]


class TestFig9Family:
    def test_sweep_structure(self, tiny_runner):
        data = fig9_core_policy_sweep(
            tiny_runner, core_counts=(2,), policies=("toall",),
            benchmarks=SUBSET,
        )
        assert set(data) == {"2Core_Toall"}
        agg = data["2Core_Toall"]
        assert set(agg) == {"dvfs", "dfs", "2level", "ptb"}

    def test_ptb_wins_even_at_tiny_scale(self, tiny_runner):
        data = fig9_core_policy_sweep(
            tiny_runner, core_counts=(4,), policies=("toall",),
            benchmarks=SUBSET,
        )
        agg = data["4Core_Toall"]
        assert agg["ptb"]["aopb_pct"] < agg["dvfs"]["aopb_pct"]
        assert agg["ptb"]["aopb_pct"] < agg["2level"]["aopb_pct"]

    def test_relaxed_adds_column(self, tiny_runner):
        data = fig14_relaxed_ptb(
            tiny_runner, core_counts=(2,), policies=("toall",),
            benchmarks=SUBSET,
        )
        agg = data["2Core_Toall"]
        assert "ptb_relaxed" in agg
        # Relaxation trades budget-matching accuracy away: the relaxed
        # variant's AoPB is no better than strict PTB's (it throttles
        # less), and its energy stays within a few points of strict.
        # (With in-flight pledges escrowed — the v8 accounting — strict
        # throttling of overdrawn donors itself saves spin energy, so
        # relaxed no longer undercuts strict on energy at tiny scale.)
        assert agg["ptb_relaxed"]["aopb_pct"] >= agg["ptb"]["aopb_pct"] - 0.1
        assert (
            abs(agg["ptb_relaxed"]["energy_pct"] - agg["ptb"]["energy_pct"])
            <= 5.0
        )

    def test_performance_figure(self, tiny_runner):
        data = fig13_performance(tiny_runner, cores=2, benchmarks=SUBSET)
        assert set(data) == set(SUBSET) | {"Avg."}
        assert all(-50.0 < v < 100.0 for v in data.values())
