"""Tests for functional-unit pool scheduling."""

import pytest

from repro.config import CoreConfig
from repro.core.functional_units import FunctionalUnitPool
from repro.isa.instructions import Kind


@pytest.fixture
def fus():
    return FunctionalUnitPool(CoreConfig())


class TestScheduling:
    def test_ready_unit_starts_immediately(self, fus):
        assert fus.schedule(int(Kind.INT_ALU), ready=10, latency=1) == 10

    def test_six_int_alus_pipeline_freely(self, fus):
        # Pipelined ALUs accept a new op every cycle per unit.
        starts = [
            fus.schedule(int(Kind.INT_ALU), ready=0, latency=1)
            for _ in range(6)
        ]
        assert starts == [0] * 6

    def test_seventh_alu_op_same_cycle_delayed(self, fus):
        for _ in range(6):
            fus.schedule(int(Kind.INT_ALU), ready=0, latency=1)
        start = fus.schedule(int(Kind.INT_ALU), ready=0, latency=1)
        assert start == 1
        assert fus.structural_stalls == 1

    def test_two_int_mults_unpipelined(self, fus):
        # Table 1: 2 IntMult units; they hold their unit for the full
        # 4-cycle latency.
        a = fus.schedule(int(Kind.INT_MULT), ready=0, latency=4)
        b = fus.schedule(int(Kind.INT_MULT), ready=0, latency=4)
        c = fus.schedule(int(Kind.INT_MULT), ready=0, latency=4)
        assert a == 0 and b == 0
        assert c == 4  # waits for a unit to free

    def test_fp_units_are_pipelined(self, fus):
        starts = [
            fus.schedule(int(Kind.FP_ALU), ready=0, latency=3)
            for _ in range(8)
        ]
        # 4 FP ALUs -> two ops per unit, second wave one cycle later.
        assert starts.count(0) == 4
        assert starts.count(1) == 4

    def test_loads_share_integer_ports(self, fus):
        for _ in range(6):
            fus.schedule(int(Kind.LOAD), ready=0, latency=1)
        start = fus.schedule(int(Kind.INT_ALU), ready=0, latency=1)
        assert start == 1

    def test_later_ready_takes_precedence(self, fus):
        assert fus.schedule(int(Kind.FP_MULT), ready=100, latency=5) == 100

    def test_unpipelined_backlog_accumulates(self, fus):
        starts = [
            fus.schedule(int(Kind.FP_MULT), ready=0, latency=5)
            for _ in range(10)
        ]
        # 4 FP mult units, 5-cycle occupancy: waves at 0,0,0,0,5,5,5,5,10,10
        assert starts == [0, 0, 0, 0, 5, 5, 5, 5, 10, 10]
