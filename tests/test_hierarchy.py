"""Tests for the per-core cache hierarchy + coherence glue."""

import pytest

from repro.config import CMPConfig
from repro.mem.coherence import State
from repro.mem.hierarchy import MemoryHierarchy
from repro.noc.mesh import Mesh2D
from repro.trace.generator import SHARED_BASE


@pytest.fixture
def hier():
    cfg = CMPConfig(num_cores=4)
    return MemoryHierarchy(cfg, Mesh2D(4, cfg.net))


PRIV = 1 << 34
SHARED = SHARED_BASE


class TestPrivatePath:
    def test_cold_load_goes_to_memory(self, hier):
        res = hier.load(0, PRIV)
        assert not res.l1_hit
        assert res.l2_access
        assert res.mem_access
        assert res.latency >= 300

    def test_warm_load_hits_l1(self, hier):
        hier.load(0, PRIV)
        res = hier.load(0, PRIV)
        assert res.l1_hit
        assert res.latency == 0

    def test_l2_hit_after_l1_eviction(self, hier):
        hier.load(0, PRIV)
        # Evict from L1 by filling its set (2 ways + 1 conflict).
        l1 = hier.l1d[0]
        set_stride = l1.num_sets * 64
        hier.load(0, PRIV + set_stride)
        hier.load(0, PRIV + 2 * set_stride)
        res = hier.load(0, PRIV)
        assert not res.l1_hit
        assert res.l2_access
        assert not res.mem_access
        assert res.latency == 12

    def test_private_store_write_allocates(self, hier):
        res = hier.store(0, PRIV)
        assert res.mem_access
        res2 = hier.store(0, PRIV)
        assert res2.l1_hit

    def test_private_data_is_core_local(self, hier):
        hier.load(0, PRIV)
        res = hier.load(1, PRIV)  # different core: own hierarchy, cold
        assert not res.l1_hit
        assert res.mem_access


class TestSharedPath:
    def test_shared_load_engages_directory(self, hier):
        res = hier.load(0, SHARED)
        assert res.mem_access
        line = hier.l1d[0].line_of(SHARED)
        assert hier.directory.state_of(0, line) == State.E

    def test_cache_to_cache_transfer(self, hier):
        hier.load(0, SHARED)
        res = hier.load(1, SHARED)
        assert not res.mem_access  # supplied on-chip
        assert res.flit_hops > 0

    def test_store_invalidates_remote_readers(self, hier):
        hier.load(0, SHARED)
        hier.load(1, SHARED)
        res = hier.store(2, SHARED)
        assert res.invalidations >= 1
        # Reader 0's next load must miss (its copy was invalidated).
        res0 = hier.load(0, SHARED)
        assert not res0.l1_hit

    def test_store_hit_in_modified_is_free(self, hier):
        hier.store(0, SHARED)
        res = hier.store(0, SHARED)
        assert res.l1_hit

    def test_silent_e_to_m_upgrade(self, hier):
        hier.load(0, SHARED)   # E
        res = hier.store(0, SHARED)
        assert res.l1_hit      # no traffic for E->M
        line = hier.l1d[0].line_of(SHARED)
        assert hier.directory.state_of(0, line) == State.M

    def test_atomic_behaves_like_store(self, hier):
        res = hier.atomic(0, SHARED)
        line = hier.l1d[0].line_of(SHARED)
        assert hier.directory.state_of(0, line) == State.M

    def test_is_shared_line_boundary(self, hier):
        assert hier.is_shared_line(hier.l1d[0].line_of(SHARED))
        assert not hier.is_shared_line(hier.l1d[0].line_of(PRIV))


class TestInstructionFetch:
    def test_cold_fetch_misses(self, hier):
        res = hier.fetch_instr(0, 0x1000)
        assert res.latency > 0

    def test_warm_fetch_hits(self, hier):
        hier.fetch_instr(0, 0x1000)
        res = hier.fetch_instr(0, 0x1000)
        assert res.l1_hit
        assert res.latency == 0

    def test_same_line_fetch_hits(self, hier):
        hier.fetch_instr(0, 0x1000)
        res = hier.fetch_instr(0, 0x1004)  # same 64 B line
        assert res.l1_hit


class TestPrewarm:
    def test_prewarm_fills_l2(self, hier):
        line = hier.l2[0].line_of(PRIV)
        hier.prewarm(0, range(line, line + 64))
        res = hier.load(0, PRIV)
        assert not res.mem_access
        assert res.latency == 12

    def test_prewarm_shared_enters_s_state(self, hier):
        line = hier.l1d[0].line_of(SHARED)
        hier.prewarm(0, range(0), range(line, line + 8))
        assert hier.directory.state_of(0, line) == State.S

    def test_prewarm_does_not_pollute_stats(self, hier):
        line = hier.l2[0].line_of(PRIV)
        hier.prewarm(0, range(line, line + 128))
        assert hier.l2[0].hits == 0
        assert hier.l2[0].misses == 0


class TestInclusive:
    def test_l2_eviction_back_invalidates_l1(self, hier):
        cfg = CMPConfig(num_cores=1)
        h = MemoryHierarchy(cfg, Mesh2D(1, cfg.net))
        l2 = h.l2[0]
        base_line = l2.line_of(PRIV)
        # Fill one L2 set completely, then one more to force an eviction.
        stride = l2.num_sets
        addrs = [PRIV + i * stride * 64 for i in range(l2.assoc + 1)]
        for a in addrs:
            h.load(0, a)
        victim_line = l2.line_of(addrs[0])
        assert not h.l1d[0].contains(victim_line)

    def test_miss_rates_reporting(self, hier):
        hier.load(0, PRIV)
        hier.load(0, PRIV)
        rates = hier.miss_rates(0)
        assert 0.0 <= rates["l1d"] <= 1.0
        assert rates["l1d"] == pytest.approx(0.5)
