"""Cross-component property-based invariants (hypothesis).

These fuzz the interfaces that couple subsystems: the PTB controller's
token conservation under arbitrary power inputs, the memory hierarchy's
coherence invariants under random multi-core traffic, and the trace
generator feeding the pipeline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budget.ptb import PTBController
from repro.config import CMPConfig
from repro.mem.coherence import State
from repro.mem.hierarchy import MemoryHierarchy
from repro.noc.mesh import Mesh2D
from repro.power.model import EnergyModel
from repro.trace.generator import SHARED_BASE


@pytest.fixture(scope="module")
def ptb_env():
    cfg = CMPConfig(num_cores=4)
    energy = EnergyModel(cfg)
    budget = 0.5 * energy.global_peak_power(4)
    return cfg, energy, budget


class TestPTBConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(*[st.floats(5.0, 80.0) for _ in range(4)]),
            min_size=5,
            max_size=40,
        )
    )
    def test_grants_never_exceed_reported_spares(self, power_seq):
        cfg = CMPConfig(num_cores=4)
        energy = EnergyModel(cfg)
        budget = 0.5 * energy.global_peak_power(4)
        ctl = PTBController(cfg, energy, budget, policy="toall")
        unctrl = energy.uncontrollable_power
        max_spares_seen = 0
        for cyc, powers in enumerate(power_seq):
            tokens = [
                max(0, int(energy.eu_to_tokens(p - unctrl))) for p in powers
            ]
            ctl.end_cycle(cyc, tokens, list(powers))
            max_spares_seen = max(
                max_spares_seen, sum(ctl._last_spares)
            )
            # Grants delivered this cycle cannot exceed the biggest pool
            # ever reported (token conservation through the pipeline).
            assert sum(ctl._grants) <= max_spares_seen

    @settings(max_examples=25, deadline=None)
    @given(
        st.tuples(*[st.floats(5.0, 80.0) for _ in range(4)]),
    )
    def test_budget_lines_conserve_global_sum(self, powers):
        cfg = CMPConfig(num_cores=4)
        energy = EnergyModel(cfg)
        budget = 0.5 * energy.global_peak_power(4)
        ctl = PTBController(cfg, energy, budget, policy="toall")
        unctrl = energy.uncontrollable_power
        for cyc in range(25):
            tokens = [
                max(0, int(energy.eu_to_tokens(p - unctrl))) for p in powers
            ]
            ctl.end_cycle(cyc, tokens, list(powers))
            # Lines above the local share are funded by real spares:
            # Sum(lines) stays within the global budget plus the spares
            # that will go unused by their donors.
            raised = sum(
                max(0.0, line - ctl.local_budget)
                for line in ctl.budget_lines
            )
            spare_now = sum(
                max(0.0, ctl.local_budget - p) for p in powers
            )
            assert raised <= spare_now + 1.0  # rounding slack


class TestHierarchyInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["load", "store", "atomic"]),
                st.integers(0, 3),          # core
                st.integers(0, 15),         # shared line index
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_random_shared_traffic_keeps_moesi_invariants(self, ops):
        cfg = CMPConfig(num_cores=4)
        hier = MemoryHierarchy(cfg, Mesh2D(4, cfg.net))
        for op, core, idx in ops:
            addr = SHARED_BASE + idx * 64
            getattr(hier, op)(core, addr)
            hier.directory.check_invariants()

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 30)),
            min_size=1,
            max_size=60,
        )
    )
    def test_store_then_load_same_core_always_hits(self, pairs):
        cfg = CMPConfig(num_cores=4)
        hier = MemoryHierarchy(cfg, Mesh2D(4, cfg.net))
        for core, idx in pairs:
            addr = SHARED_BASE + idx * 64
            hier.store(core, addr)
            res = hier.load(core, addr)
            assert res.l1_hit  # nothing between the store and the load

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 3), st.integers(0, 3), st.integers(0, 20))
    def test_writer_sees_own_data_after_remote_write(self, a, b, idx):
        cfg = CMPConfig(num_cores=4)
        hier = MemoryHierarchy(cfg, Mesh2D(4, cfg.net))
        addr = SHARED_BASE + idx * 64
        hier.store(a, addr)
        hier.store(b, addr)
        line = hier.l1d[b].line_of(addr)
        assert hier.directory.state_of(b, line) == State.M
        if a != b:
            assert hier.directory.state_of(a, line) == State.I
