"""Tests for the instruction model (repro.isa.instructions)."""

import pytest

from repro.isa.instructions import (
    BASE_ENERGY,
    EXEC_LATENCY,
    SPIN_LOOP_KINDS,
    Instruction,
    Kind,
)


class TestKinds:
    def test_every_kind_has_latency_and_energy(self):
        for kind in Kind:
            assert kind in EXEC_LATENCY
            assert kind in BASE_ENERGY

    def test_latencies_positive(self):
        assert all(v >= 1 for v in EXEC_LATENCY.values())

    def test_multiplies_slower_than_adds(self):
        assert EXEC_LATENCY[Kind.INT_MULT] > EXEC_LATENCY[Kind.INT_ALU]
        assert EXEC_LATENCY[Kind.FP_MULT] > EXEC_LATENCY[Kind.FP_ALU]

    def test_fp_costs_more_energy_than_int(self):
        assert BASE_ENERGY[Kind.FP_ALU] > BASE_ENERGY[Kind.INT_ALU]
        assert BASE_ENERGY[Kind.FP_MULT] > BASE_ENERGY[Kind.INT_MULT]

    def test_fp_mult_is_most_expensive(self):
        assert BASE_ENERGY[Kind.FP_MULT] == max(BASE_ENERGY.values())

    def test_nop_is_cheapest(self):
        assert BASE_ENERGY[Kind.NOP] == min(BASE_ENERGY.values())

    def test_atomic_costs_more_than_plain_store(self):
        assert BASE_ENERGY[Kind.ATOMIC] > BASE_ENERGY[Kind.STORE]


class TestInstruction:
    def test_mem_predicate(self):
        assert Instruction(0, Kind.LOAD, mem_addr=64).is_mem
        assert Instruction(0, Kind.STORE, mem_addr=64).is_mem
        assert Instruction(0, Kind.ATOMIC, mem_addr=64).is_mem
        assert not Instruction(0, Kind.INT_ALU).is_mem
        assert not Instruction(0, Kind.BRANCH).is_mem

    def test_latency_property(self):
        assert Instruction(0, Kind.FP_MULT).exec_latency == EXEC_LATENCY[Kind.FP_MULT]

    def test_energy_property(self):
        assert Instruction(0, Kind.LOAD).base_energy == BASE_ENERGY[Kind.LOAD]

    def test_frozen(self):
        instr = Instruction(0, Kind.LOAD)
        with pytest.raises(AttributeError):
            instr.pc = 4


class TestSpinLoop:
    def test_spin_loop_shape(self):
        # test (load) - compare (alu) - backward branch
        assert SPIN_LOOP_KINDS == (Kind.LOAD, Kind.INT_ALU, Kind.BRANCH)

    def test_spin_loop_is_cheap(self):
        spin_cost = sum(BASE_ENERGY[k] for k in SPIN_LOOP_KINDS)
        expensive = BASE_ENERGY[Kind.FP_MULT] * len(SPIN_LOOP_KINDS)
        assert spin_cost < expensive
