"""Tests for the K-means token-class calibration (paper Section III.B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import BASE_ENERGY, Kind
from repro.isa.kmeans import (
    TokenClassMap,
    calibrate_token_classes,
    default_token_classes,
    kmeans_1d,
)


class TestKmeans1D:
    def test_separates_obvious_clusters(self):
        values = np.array([1.0] * 50 + [10.0] * 50)
        centroids, labels = kmeans_1d(values, 2)
        assert len(centroids) == 2
        assert centroids[0] == pytest.approx(1.0)
        assert centroids[1] == pytest.approx(10.0)
        assert set(labels[:50]) == {0}
        assert set(labels[50:]) == {1}

    def test_centroids_sorted(self):
        rng = np.random.default_rng(1)
        values = rng.random(500) * 20
        centroids, _ = kmeans_1d(values, 8)
        assert np.all(np.diff(centroids) >= 0)

    def test_fewer_uniques_than_k(self):
        values = np.array([2.0, 5.0, 2.0, 5.0])
        centroids, labels = kmeans_1d(values, 8)
        assert len(centroids) == 2
        assert np.all(centroids[labels] == values)

    def test_deterministic(self):
        rng = np.random.default_rng(7)
        values = rng.random(300) * 10
        c1, l1 = kmeans_1d(values, 4)
        c2, l2 = kmeans_1d(values, 4)
        assert np.array_equal(c1, c2)
        assert np.array_equal(l1, l2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([]), 3)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0, 2.0]), 0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(0.1, 100.0), min_size=10, max_size=200),
        st.integers(1, 8),
    )
    def test_labels_always_valid(self, values, k):
        centroids, labels = kmeans_1d(np.array(values), k)
        assert labels.min() >= 0
        assert labels.max() < len(centroids)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0.1, 50.0), min_size=20, max_size=100))
    def test_assignment_is_nearest_centroid(self, values):
        arr = np.array(values)
        centroids, labels = kmeans_1d(arr, 4)
        for v, lbl in zip(arr, labels):
            dists = np.abs(centroids - v)
            assert dists[lbl] == pytest.approx(dists.min())


class TestTokenClassCalibration:
    def test_default_has_eight_classes(self):
        cmap = default_token_classes()
        assert cmap.num_classes == 8

    def test_every_kind_mapped(self):
        cmap = default_token_classes()
        for kind in Kind:
            tokens = cmap.tokens_for_kind(kind)
            assert tokens >= 1

    def test_class_ordering_follows_energy(self):
        cmap = default_token_classes()
        assert (
            cmap.tokens_for_kind(Kind.FP_MULT)
            >= cmap.tokens_for_kind(Kind.INT_ALU)
        )
        assert (
            cmap.tokens_for_kind(Kind.FP_ALU)
            >= cmap.tokens_for_kind(Kind.NOP)
        )

    def test_token_unit_scales_class_tokens(self):
        coarse = default_token_classes(token_unit=1.0)
        fine = default_token_classes(token_unit=0.1)
        # Smaller token unit -> more tokens per instruction.
        assert (
            fine.tokens_for_kind(Kind.INT_ALU)
            > coarse.tokens_for_kind(Kind.INT_ALU)
        )

    def test_quantization_error_below_paper_bound(self):
        """Paper: 8 groups keep token accounting within 1% of exact."""
        rng = np.random.default_rng(42)
        kinds = list(Kind)
        probs = np.array([1, 1, 1, 1, 4, 2, 3, 1, 1], dtype=float)
        probs /= probs.sum()
        chosen = rng.choice(len(kinds), 5000, p=probs)
        sample = np.array(
            [BASE_ENERGY[kinds[i]] for i in chosen]
        ) * rng.normal(1.0, 0.05, 5000).clip(0.5)
        cmap = calibrate_token_classes(sample, k=8, token_unit=0.15)
        err = cmap.quantization_error(sample, token_unit=0.15)
        assert err < 0.01

    def test_fewer_classes_have_higher_error(self):
        rng = np.random.default_rng(3)
        kinds = list(Kind)
        chosen = rng.integers(0, len(kinds), 4000)
        sample = np.array([BASE_ENERGY[kinds[i]] for i in chosen])
        sample = sample * rng.normal(1.0, 0.1, 4000).clip(0.5)
        err8 = calibrate_token_classes(sample, 8).quantization_error(sample)
        err2 = calibrate_token_classes(sample, 2).quantization_error(sample)
        assert err8 <= err2 + 1e-9

    def test_classify_nearest(self):
        cmap = TokenClassMap(
            centroids=(1.0, 5.0, 10.0),
            class_tokens=(1, 5, 10),
            kind_class=tuple(0 for _ in Kind),
        )
        assert cmap.classify(1.4) == 0
        assert cmap.classify(4.0) == 1
        assert cmap.classify(100.0) == 2

    def test_tokens_for_energy(self):
        cmap = TokenClassMap(
            centroids=(2.0, 8.0),
            class_tokens=(2, 8),
            kind_class=tuple(0 for _ in Kind),
        )
        assert cmap.tokens_for_energy(2.5) == 2
        assert cmap.tokens_for_energy(7.0) == 8

    def test_rejects_bad_token_unit(self):
        with pytest.raises(ValueError):
            calibrate_token_classes([1.0, 2.0], token_unit=0.0)

    def test_default_deterministic(self):
        a = default_token_classes(seed=9)
        b = default_token_classes(seed=9)
        assert a.centroids == b.centroids
        assert a.class_tokens == b.class_tokens
