"""Tests for the 2D-mesh interconnect (repro.noc.mesh)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.noc.mesh import Mesh2D


@pytest.fixture
def mesh16():
    return Mesh2D(16, NetworkConfig())


class TestTopology:
    @pytest.mark.parametrize("n,w,h", [(2, 2, 1), (4, 2, 2), (8, 4, 2), (16, 4, 4)])
    def test_dims(self, n, w, h):
        m = Mesh2D(n, NetworkConfig())
        assert (m.width, m.height) == (w, h)

    def test_coords_unique(self, mesh16):
        coords = {(mesh16.coord_of(i).x, mesh16.coord_of(i).y) for i in range(16)}
        assert len(coords) == 16

    def test_coord_out_of_range(self, mesh16):
        with pytest.raises(ValueError):
            mesh16.coord_of(16)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Mesh2D(0, NetworkConfig())


class TestRouting:
    def test_hop_count_self_is_zero(self, mesh16):
        assert mesh16.hop_count(5, 5) == 0

    def test_hop_count_neighbours(self, mesh16):
        assert mesh16.hop_count(0, 1) == 1
        assert mesh16.hop_count(0, 4) == 1  # one row down

    def test_hop_count_corners(self, mesh16):
        assert mesh16.hop_count(0, 15) == 6  # (0,0) -> (3,3)

    def test_hop_count_symmetric(self, mesh16):
        for a in range(16):
            for b in range(16):
                assert mesh16.hop_count(a, b) == mesh16.hop_count(b, a)

    def test_route_endpoints(self, mesh16):
        route = mesh16.route(0, 15)
        assert route[0] == 0
        assert route[-1] == 15

    def test_route_length_matches_hops(self, mesh16):
        for a, b in [(0, 15), (3, 12), (5, 5), (7, 8)]:
            route = mesh16.route(a, b)
            assert len(route) - 1 == mesh16.hop_count(a, b)

    def test_route_steps_are_adjacent(self, mesh16):
        route = mesh16.route(2, 13)
        for u, v in zip(route, route[1:]):
            assert mesh16.hop_count(u, v) == 1

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_triangle_inequality(self, a, b):
        m = Mesh2D(16, NetworkConfig())
        for c in range(16):
            assert m.hop_count(a, b) <= m.hop_count(a, c) + m.hop_count(c, b)


class TestLatencyAndEnergy:
    def test_zero_hops_zero_latency(self, mesh16):
        assert mesh16.traversal_latency(0) == 0

    def test_per_hop_cost_matches_table1(self, mesh16):
        # One hop: 4-cycle link + 1-cycle router head latency, plus
        # 15 extra flit cycles for a 64 B line at 4 B/flit.
        assert mesh16.traversal_latency(1, payload_bytes=64) == 5 + 15

    def test_small_payload_has_no_serialisation_tail(self, mesh16):
        assert mesh16.traversal_latency(2, payload_bytes=4) == 10

    def test_latency_monotonic_in_hops(self, mesh16):
        lats = [mesh16.traversal_latency(h) for h in range(7)]
        assert lats == sorted(lats)

    def test_record_message_counts_flit_hops(self, mesh16):
        fh = mesh16.record_message(hops=3, payload_bytes=64)
        assert fh == 16 * 3
        assert mesh16.flit_hops == fh
        assert mesh16.messages == 1

    def test_record_message_minimum_one_flit(self, mesh16):
        assert mesh16.record_message(hops=2, payload_bytes=1) == 2
