"""Tests for the second-level microarchitectural throttles."""

import pytest

from repro.power.microarch import (
    MicroarchThrottle,
    Technique,
    select_technique,
)


class TestSelection:
    def test_no_overshoot_no_technique(self):
        assert select_technique(0.0) == Technique.NONE
        assert select_technique(-0.5) == Technique.NONE

    def test_tiny_overshoot_light_throttle(self):
        assert select_technique(0.03) == Technique.FETCH_LIGHT

    def test_moderate_overshoot_fetch_throttle(self):
        assert select_technique(0.10) == Technique.FETCH_THROTTLE

    def test_large_overshoot_fetch_gate(self):
        assert select_technique(0.20) == Technique.FETCH_GATE

    def test_severe_overshoot_issue_half(self):
        assert select_technique(0.40) == Technique.ISSUE_HALF

    def test_extreme_overshoot_pipeline_gate(self):
        assert select_technique(0.80) == Technique.PIPELINE_GATE

    def test_selection_monotonic(self):
        levels = [select_technique(x / 100) for x in range(0, 100, 2)]
        assert levels == sorted(levels)


class TestThrottleActuation:
    def test_none_always_fetches(self):
        th = MicroarchThrottle()
        allowed = []
        for _ in range(8):
            th.tick()
            allowed.append(th.fetch_allowed)
        assert all(allowed)

    def test_fetch_light_skips_quarter(self):
        th = MicroarchThrottle()
        th.set(Technique.FETCH_LIGHT)
        allowed = []
        for _ in range(16):
            th.tick()
            allowed.append(th.fetch_allowed)
        assert allowed.count(False) == 4

    def test_fetch_throttle_alternates(self):
        th = MicroarchThrottle()
        th.set(Technique.FETCH_THROTTLE)
        allowed = []
        for _ in range(16):
            th.tick()
            allowed.append(th.fetch_allowed)
        assert allowed.count(True) == 8

    def test_fetch_gate_blocks_all(self):
        th = MicroarchThrottle()
        th.set(Technique.FETCH_GATE)
        for _ in range(8):
            th.tick()
            assert not th.fetch_allowed

    def test_issue_half_width(self):
        th = MicroarchThrottle()
        th.set(Technique.ISSUE_HALF)
        assert th.issue_width(4) == 2
        assert th.issue_width(1) == 1  # never zero

    def test_pipeline_gate_zero_issue(self):
        th = MicroarchThrottle()
        th.set(Technique.PIPELINE_GATE)
        assert th.issue_width(4) == 0
        assert not th.fetch_allowed

    def test_full_width_when_not_issue_limited(self):
        th = MicroarchThrottle()
        th.set(Technique.FETCH_GATE)
        assert th.issue_width(4) == 4

    def test_engagement_statistics(self):
        th = MicroarchThrottle()
        th.set(Technique.FETCH_GATE)
        for _ in range(5):
            th.tick()
        th.set(Technique.NONE)
        for _ in range(5):
            th.tick()
        assert th.engaged_cycles == 5
        assert th.by_technique[Technique.FETCH_GATE] == 5
