"""Tests for the out-of-order core model (repro.core.pipeline)."""

import pytest

from repro.config import CMPConfig
from repro.core.pipeline import Core, SyncPhase
from repro.mem.hierarchy import MemoryHierarchy
from repro.noc.mesh import Mesh2D
from repro.sync.primitives import SyncDomain
from repro.trace.generator import ThreadTraceGenerator
from repro.trace.phases import (
    BarrierPhase,
    ComputePhase,
    LockPhase,
    ThreadProgram,
)
from repro.isa.instructions import Kind


def make_core(phases, cfg=None, token_map=None, core_id=0, n_cores=2,
              shared=None):
    cfg = cfg or CMPConfig(num_cores=n_cores)
    mesh = Mesh2D(n_cores, cfg.net)
    hier = shared[0] if shared else MemoryHierarchy(cfg, mesh)
    dom = shared[1] if shared else SyncDomain(n_cores, mesh)
    if token_map is None:
        from repro.isa.kmeans import default_token_classes
        from repro.power.model import TOKEN_UNIT_EU

        token_map = default_token_classes(token_unit=TOKEN_UNIT_EU)
    gen = ThreadTraceGenerator(
        ThreadProgram(thread_id=core_id, phases=tuple(phases)), seed=3
    )
    return Core(core_id, cfg, token_map, hier, dom, gen), hier, dom


def run_to_completion(core, max_cycles=100_000, **stepkw):
    cycle = 0
    while not core.done and cycle < max_cycles:
        core.step(cycle, **stepkw)
        cycle += 1
    return cycle


class TestBasicExecution:
    def test_completes_compute_program(self, token_map):
        core, _, _ = make_core([ComputePhase(2000, footprint_lines=128)],
                               token_map=token_map)
        cycles = run_to_completion(core)
        assert core.done
        assert core.committed == 2000
        assert 0 < cycles < 50_000

    def test_rob_never_overflows(self, token_map):
        core, _, _ = make_core([ComputePhase(3000, footprint_lines=128)],
                               token_map=token_map)
        cycle = 0
        while not core.done and cycle < 50_000:
            core.step(cycle)
            assert core.rob_occupancy <= core.rob_entries
            cycle += 1

    def test_high_ilp_runs_faster(self, token_map):
        fast, _, _ = make_core(
            [ComputePhase(4000, ilp=1.0, footprint_lines=64,
                          mix={Kind.INT_ALU: 1.0})],
            token_map=token_map,
        )
        slow, _, _ = make_core(
            [ComputePhase(4000, ilp=0.0, footprint_lines=64,
                          mix={Kind.INT_ALU: 1.0})],
            token_map=token_map,
        )
        assert run_to_completion(fast) < run_to_completion(slow)

    def test_fetch_gating_stops_progress(self, token_map):
        core, _, _ = make_core([ComputePhase(1000)], token_map=token_map)
        for cycle in range(200):
            core.step(cycle, fetch_allowed=False)
        assert core.committed == 0

    def test_idle_cycle_consumes_nothing(self, token_map):
        core, _, _ = make_core([ComputePhase(100)], token_map=token_map)
        core.idle_cycle(0)
        assert core.events.n_fetched == 0
        assert not core.events.active

    def test_events_populated_during_execution(self, token_map):
        core, _, _ = make_core([ComputePhase(2000, footprint_lines=64)],
                               token_map=token_map)
        run_to_completion(core)
        # Tokens were consumed and PTHT was exercised.
        assert core.accountant.total_consumed > 0
        assert core.accountant.ptht.updates > 0


class TestSynchronization:
    def test_two_cores_pass_a_barrier(self, token_map):
        cfg = CMPConfig(num_cores=2)
        mesh = Mesh2D(2, cfg.net)
        hier = MemoryHierarchy(cfg, mesh)
        dom = SyncDomain(2, mesh)
        phases = [ComputePhase(200, footprint_lines=64), BarrierPhase(0)]
        cores = []
        for tid in range(2):
            c, _, _ = make_core(phases, cfg=cfg, token_map=token_map,
                                core_id=tid, n_cores=2, shared=(hier, dom))
            cores.append(c)
        cycle = 0
        while not all(c.done for c in cores) and cycle < 100_000:
            for c in cores:
                if not c.done:
                    c.step(cycle)
            cycle += 1
        assert all(c.done for c in cores)
        assert dom.barrier(0).episodes == 1

    def test_unbalanced_barrier_creates_spin(self, token_map):
        cfg = CMPConfig(num_cores=2)
        mesh = Mesh2D(2, cfg.net)
        hier = MemoryHierarchy(cfg, mesh)
        dom = SyncDomain(2, mesh)
        fast, _, _ = make_core(
            [ComputePhase(100, footprint_lines=64), BarrierPhase(0)],
            cfg=cfg, token_map=token_map, core_id=0, shared=(hier, dom))
        slow, _, _ = make_core(
            [ComputePhase(6000, footprint_lines=64), BarrierPhase(0)],
            cfg=cfg, token_map=token_map, core_id=1, shared=(hier, dom))
        spin_cycles = 0
        cycle = 0
        while not (fast.done and slow.done) and cycle < 100_000:
            for c in (fast, slow):
                if not c.done:
                    c.step(cycle)
            if fast.is_spinning:
                spin_cycles += 1
            cycle += 1
        assert spin_cycles > 100
        assert fast.spin_iterations > 10

    def test_lock_mutual_exclusion(self, token_map):
        cfg = CMPConfig(num_cores=2)
        mesh = Mesh2D(2, cfg.net)
        hier = MemoryHierarchy(cfg, mesh)
        dom = SyncDomain(2, mesh)
        phases = [
            LockPhase(0, ComputePhase(300, footprint_lines=64)),
            LockPhase(0, ComputePhase(300, footprint_lines=64)),
        ]
        cores = []
        for tid in range(2):
            c, _, _ = make_core(phases, cfg=cfg, token_map=token_map,
                                core_id=tid, shared=(hier, dom))
            cores.append(c)
        cycle = 0
        while not all(c.done for c in cores) and cycle < 200_000:
            for c in cores:
                if not c.done:
                    c.step(cycle)
            # Mutual exclusion: the domain never has two owners.
            lk = dom.lock(0)
            assert lk.owner is None or isinstance(lk.owner, int)
            cycle += 1
        assert all(c.done for c in cores)
        assert dom.lock(0).acquires == 4

    def test_sync_phase_tracking(self, token_map):
        cfg = CMPConfig(num_cores=2)
        mesh = Mesh2D(2, cfg.net)
        hier = MemoryHierarchy(cfg, mesh)
        dom = SyncDomain(2, mesh)
        phases = [
            LockPhase(0, ComputePhase(400, footprint_lines=64)),
            BarrierPhase(0),
        ]
        cores = []
        for tid in range(2):
            c, _, _ = make_core(phases, cfg=cfg, token_map=token_map,
                                core_id=tid, shared=(hier, dom))
            cores.append(c)
        seen = set()
        cycle = 0
        while not all(c.done for c in cores) and cycle < 200_000:
            for c in cores:
                if not c.done:
                    c.step(cycle)
                    seen.add(c.sync_phase)
            cycle += 1
        assert SyncPhase.BUSY in seen
        assert SyncPhase.LOCK_ACQ in seen
        assert SyncPhase.BARRIER in seen


class TestSpinPowerSignature:
    def test_spinning_cheaper_than_computing(self, token_map):
        """The Figure 6 property: spin power below busy power."""
        cfg = CMPConfig(num_cores=2)
        mesh = Mesh2D(2, cfg.net)
        hier = MemoryHierarchy(cfg, mesh)
        dom = SyncDomain(2, mesh)
        from repro.power.model import EnergyModel

        energy = EnergyModel(cfg)
        fast, _, _ = make_core(
            [ComputePhase(50, footprint_lines=64), BarrierPhase(0)],
            cfg=cfg, token_map=token_map, core_id=0, shared=(hier, dom))
        slow, _, _ = make_core(
            [ComputePhase(20000, footprint_lines=64), BarrierPhase(0)],
            cfg=cfg, token_map=token_map, core_id=1, shared=(hier, dom))
        spin_p, spin_n, busy_p, busy_n = 0.0, 0, 0.0, 0
        for cycle in range(12_000):
            for c in (fast, slow):
                if not c.done:
                    c.step(cycle)
            if fast.is_spinning and cycle > 2000:
                spin_p += energy.cycle_power(fast.events)
                spin_n += 1
            if not slow.done and cycle > 2000:
                busy_p += energy.cycle_power(slow.events)
                busy_n += 1
        assert spin_n > 0 and busy_n > 0
        assert spin_p / spin_n < 0.8 * (busy_p / busy_n)
