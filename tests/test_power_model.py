"""Tests for the per-cycle power model and Cacti-style energies."""

import math

import pytest

from repro.config import CMPConfig
from repro.power.cacti import (
    StructureEnergies,
    cache_access_energy,
    sram_access_energy,
    wire_energy_per_mm,
)
from repro.power.model import (
    CLOCK_POWER_EU,
    TOKEN_UNIT_EU,
    CycleEvents,
    EnergyModel,
)


@pytest.fixture
def model():
    return EnergyModel(CMPConfig(num_cores=4))


def busy_events(occ=40, fetched=4):
    ev = CycleEvents()
    ev.fetched_energy = fetched * 6.0
    ev.completed_energy = fetched * 6.0
    ev.committed_energy = fetched * 6.0
    ev.n_fetched = fetched
    ev.n_branches = 1
    ev.rob_occupancy = occ
    return ev


class TestCacti:
    def test_bigger_caches_cost_more(self):
        assert sram_access_energy(1 << 20, 4) > sram_access_energy(1 << 16, 4)

    def test_higher_associativity_costs_more(self):
        assert sram_access_energy(1 << 16, 8) > sram_access_energy(1 << 16, 1)

    def test_technology_scaling_quadratic(self):
        e32 = sram_access_energy(1 << 16, 2, feature_nm=32)
        e64 = sram_access_energy(1 << 16, 2, feature_nm=64)
        assert e64 == pytest.approx(4 * e32)

    def test_l2_costs_more_than_l1(self):
        cfg = CMPConfig()
        s = StructureEnergies.from_config(cfg)
        assert s.l2_access > s.l1d_access

    def test_memory_dominates(self):
        s = StructureEnergies.from_config(CMPConfig())
        assert s.mem_access > 5 * s.l2_access

    def test_validation(self):
        with pytest.raises(ValueError):
            sram_access_energy(0, 2)

    def test_wire_energy_scales_with_feature(self):
        assert wire_energy_per_mm(64) > wire_energy_per_mm(32)

    def test_cache_access_energy_wrapper(self):
        cfg = CMPConfig()
        assert cache_access_energy(cfg.mem.l1d) == pytest.approx(
            sram_access_energy(64 * 1024, 2)
        )


class TestCyclePower:
    def test_busy_exceeds_idle(self, model):
        busy = model.cycle_power(busy_events())
        idle = model.cycle_power(CycleEvents())
        assert busy > idle > 0

    def test_more_occupancy_more_power(self, model):
        lo = model.cycle_power(busy_events(occ=8))
        hi = model.cycle_power(busy_events(occ=120))
        assert hi > lo

    def test_voltage_scaling_quadratic_on_dynamic(self, model):
        ev = busy_events()
        p_full = model.cycle_power(ev, v_scale=1.0)
        p_low = model.cycle_power(ev, v_scale=0.9)
        leak_full = model.leakage(1.0, model.temp_ref)
        leak_low = model.leakage(0.9, model.temp_ref)
        dyn_ratio = (p_low - leak_low) / (p_full - leak_full)
        assert dyn_ratio == pytest.approx(0.81, abs=0.01)

    def test_inactive_cycle_is_cheap(self, model):
        ev = busy_events()
        ev.active = False
        assert model.cycle_power(ev) < model.cycle_power(busy_events())

    def test_memory_event_adds_big_energy(self, model):
        ev = busy_events()
        base = model.cycle_power(ev)
        ev.mem_accesses = 1
        assert model.cycle_power(ev) - base == pytest.approx(
            model.struct.mem_access, rel=0.01
        )

    def test_ptht_charged_only_when_enabled(self, model):
        ev = busy_events()
        off = model.cycle_power(ev)
        model.charge_ptht = True
        on = model.cycle_power(ev)
        assert on > off

    def test_ptb_overhead_multiplier(self, model):
        ev = busy_events()
        base = model.cycle_power(ev)
        model.ptb_overhead_fraction = 0.01
        assert model.cycle_power(ev) == pytest.approx(base * 1.01)


class TestLeakage:
    def test_grows_exponentially_with_temperature(self, model):
        t = model.temp_ref
        l1 = model.leakage(1.0, t)
        l2 = model.leakage(1.0, t + 30)
        assert l2 / l1 == pytest.approx(math.e, rel=0.01)

    def test_linear_in_voltage(self, model):
        t = model.temp_ref
        assert model.leakage(0.5, t) == pytest.approx(
            0.5 * model.leakage(1.0, t)
        )


class TestDerivedConstants:
    def test_peak_exceeds_typical_busy(self, model):
        assert model.peak_core_power > model.cycle_power(busy_events(occ=40))

    def test_uncontrollable_below_half_budget(self, model):
        budget = 0.5 * model.peak_core_power
        assert model.uncontrollable_power < budget

    def test_global_peak_scales_linearly(self, model):
        assert model.global_peak_power(8) == pytest.approx(
            8 * model.peak_core_power
        )

    def test_token_eu_roundtrip(self, model):
        assert model.eu_to_tokens(model.tokens_to_eu(123.0)) == pytest.approx(123.0)
        assert model.tokens_to_eu(1.0) == TOKEN_UNIT_EU

    def test_clock_gating_floor(self, model):
        gated = model.clock(0.0, 1.0)
        full = model.clock(1.0, 1.0)
        assert gated == pytest.approx(CLOCK_POWER_EU * model.gating_residue)
        assert full == pytest.approx(CLOCK_POWER_EU)
