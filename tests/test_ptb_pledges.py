"""In-flight pledge accounting (paper Section III.E.2).

The balancer round trip is 3-10 cycles, so at any instant the pipe
holds several cycles of pledged-but-undelivered spares.  The paper's
central conservation claim is that the global budget holds *even while
tokens are in flight*: a pledging donor runs under a correspondingly
more restrictive budget until the pledge lands.  These tests pin that
down at latency 5 (the paper's 8-core constant): the donor's effective
budget is reduced by the *full* in-flight pledge sum — not just the
most recent cycle's spares — every cycle of the round trip, and

    sum(effective budgets) + sum(pipe contents) <= global token budget

holds every cycle.
"""

import pytest

from repro.budget.ptb import PTBController
from repro.config import CMPConfig
from repro.power.model import EnergyModel

CORES = 8  # paper latency constant: 5 cycles for an 8-core CMP


@pytest.fixture(scope="module")
def ctl_env():
    cfg = CMPConfig(num_cores=CORES)
    energy = EnergyModel(cfg)
    budget = 0.5 * energy.global_peak_power(CORES)
    return cfg, energy, budget


def make_controller(ctl_env) -> PTBController:
    cfg, energy, budget = ctl_env
    return PTBController(cfg, energy, budget, policy="toall")


def powers_for(ctl, tokens):
    """Power readings consistent with the given token reports."""
    return [ctl.energy.tokens_to_eu(t) + ctl.energy.uncontrollable_power
            for t in tokens]


class TestDonorRestriction:
    def test_latency_is_five(self, ctl_env):
        ctl = make_controller(ctl_env)
        assert ctl.balancer.latency == 5

    def test_restricted_by_full_inflight_sum_every_cycle(self, ctl_env):
        """Regression: the donor's effective budget shrinks by every
        pledge still in flight (delivered-this-cycle included), not just
        ``_last_spares`` — at latency 5 the difference is 5 cycles of
        spares, exactly the paper's 8-core round trip."""
        ctl = make_controller(ctl_env)
        t_local = ctl.token_budget
        latency = ctl.balancer.latency
        # Core 0 spins (steady donor); the rest run hot enough that the
        # CMP stays around the global budget.
        donor_tokens = int(t_local * 0.2)
        tokens = [donor_tokens] + [int(t_local * 1.2)] * (CORES - 1)
        powers = powers_for(ctl, tokens)

        pledge_log = []
        for cyc in range(3 * latency):
            ctl.end_cycle(cyc, list(tokens), list(powers))
            pledge_log.append(ctl._last_spares[0])
            assert pledge_log[-1] > 0  # the donor pledges every cycle
            # Restriction window: every pledge made in the last
            # latency+1 cycles (the pipe plus the snapshot delivered as
            # this cycle's grants).
            window = pledge_log[max(0, len(pledge_log) - (latency + 1)):]
            expected = t_local + ctl._grants[0] - sum(window)
            assert ctl.effective_budgets[0] == pytest.approx(expected)
            # Strictly tighter than the pre-fix accounting (last cycle
            # only) as soon as more than one pledge is in flight.
            if cyc >= 1:
                lax = t_local + ctl._grants[0] - pledge_log[-1]
                assert ctl.effective_budgets[0] < lax

    def test_conservation_with_pledges_in_flight(self, ctl_env):
        """sum(effective budgets) + sum(pipe contents) <= global budget,
        every cycle of the round trip and beyond (acceptance invariant).
        """
        ctl = make_controller(ctl_env)
        t_local = ctl.token_budget
        latency = ctl.balancer.latency
        tokens = [int(t_local * 0.2), int(t_local * 0.5)] + [
            int(t_local * 1.3)
        ] * (CORES - 2)
        powers = powers_for(ctl, tokens)
        for cyc in range(4 * latency):
            ctl.end_cycle(cyc, list(tokens), list(powers))
            pipe = sum(
                ctl.balancer.pending_pledge(i) for i in range(CORES)
            )
            assert (
                sum(ctl.effective_budgets) + pipe
                <= ctl.global_token_budget + 1e-9
            )

    def test_conservation_when_donor_stops_pledging(self, ctl_env):
        """The invariant also holds across a donor ramp: pledges made
        while spinning keep restricting the core after it ramps up, so
        in-flight tokens are never spendable twice."""
        ctl = make_controller(ctl_env)
        t_local = ctl.token_budget
        latency = ctl.balancer.latency
        spin = [int(t_local * 0.2)] + [int(t_local * 1.2)] * (CORES - 1)
        ramp = [int(t_local * 1.2)] * CORES
        for cyc in range(4 * latency):
            tokens = spin if cyc < 2 * latency else ramp
            ctl.end_cycle(cyc, list(tokens), powers_for(ctl, tokens))
            pipe = sum(
                ctl.balancer.pending_pledge(i) for i in range(CORES)
            )
            assert (
                sum(ctl.effective_budgets) + pipe
                <= ctl.global_token_budget + 1e-9
            )
            if cyc == 2 * latency:
                # The freshly-ramped ex-donor is still restricted by its
                # spinning-era pledges.
                assert ctl.effective_budgets[0] < t_local

    def test_ramping_ex_donor_requests_escrow_back(self, ctl_env):
        """A donor that ramps up while its pledges are in flight asks
        the balancer for tokens covering the escrow gap instead of
        silently spending the pledged amount a second time."""
        ctl = make_controller(ctl_env)
        t_local = ctl.token_budget
        latency = ctl.balancer.latency
        spin = [int(t_local * 0.2)] + [int(t_local * 0.9)] * (CORES - 1)
        ramp = [int(t_local)] + [int(t_local * 0.9)] * (CORES - 1)
        for cyc in range(latency):
            ctl.end_cycle(cyc, list(spin), powers_for(ctl, spin))
        ctl.end_cycle(latency, list(ramp), powers_for(ctl, ramp))
        # Its request covers consumption over the *usable* (escrowed)
        # allotment, which is strictly larger than the naive
        # consumption-over-floor request.
        pledged = ctl.balancer.pending_pledge(0)
        assert pledged > 0
        naive = int(t_local) - int(t_local * 0.85)
        assert ctl._last_overs[0] > naive


class TestThrottleUnderEscrow:
    def test_overdrawn_donor_throttled_when_global_over(self, ctl_env):
        """A core that pledged its allotment away and consumes anyway is
        throttled while the CMP is over budget (the double-spend the
        pledge accounting exists to prevent)."""
        from repro.power.microarch import Technique

        ctl = make_controller(ctl_env)
        t_local = ctl.token_budget
        latency = ctl.balancer.latency
        # Heavy global overshoot; core 0 spins and pledges continuously.
        tokens = [int(t_local * 0.3)] + [int(t_local * 1.6)] * (CORES - 1)
        powers = powers_for(ctl, tokens)
        for cyc in range(2 * (latency + 1)):
            ctl.end_cycle(cyc, list(tokens), list(powers))
        assert ctl.effective_budgets[0] <= 0
        assert ctl.technique_of(0) != Technique.NONE
