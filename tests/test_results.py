"""Tests for SimResult metrics and normalizations."""

import pytest

from repro.sim.results import (
    PHASE_NAMES,
    SimResult,
    normalized_aopb_pct,
    normalized_energy_pct,
    slowdown_pct,
)


def make_result(**kw):
    defaults = dict(
        benchmark="x",
        technique="none",
        policy=None,
        num_cores=2,
        budget_fraction=0.5,
        global_budget=100.0,
        cycles=1000,
        completed=True,
        committed_instructions=4000,
        total_energy=50_000.0,
        aopb_energy=5_000.0,
        spin_energy=2_000.0,
        max_power=120.0,
        phase_cycles=[[700, 100, 50, 150], [600, 200, 50, 150]],
        mean_temperature=330.0,
        std_temperature=1.5,
        throttled_cycles=0,
        ptht_hit_rate=0.9,
    )
    defaults.update(kw)
    return SimResult(**defaults)


class TestDerivedMetrics:
    def test_avg_power(self):
        r = make_result()
        assert r.avg_power == pytest.approx(50.0)

    def test_ipc(self):
        r = make_result()
        assert r.ipc == pytest.approx(4000 / (1000 * 2))

    def test_aopb_fraction(self):
        r = make_result()
        assert r.aopb_fraction_of_energy == pytest.approx(0.1)

    def test_spin_fraction(self):
        r = make_result()
        assert r.spin_fraction_of_energy == pytest.approx(0.04)

    def test_zero_cycles_safe(self):
        r = make_result(cycles=0, total_energy=0.0)
        assert r.avg_power == 0.0
        assert r.ipc == 0.0

    def test_phase_fraction_names(self):
        assert PHASE_NAMES == ("busy", "lock_acq", "lock_rel", "barrier")

    def test_phase_fractions_sum_to_one(self):
        fr = make_result().phase_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_phase_fractions_values(self):
        fr = make_result().phase_fractions()
        assert fr["busy"] == pytest.approx(1300 / 2000)
        assert fr["barrier"] == pytest.approx(300 / 2000)

    def test_phase_fractions_empty(self):
        r = make_result(phase_cycles=[[0, 0, 0, 0]])
        assert all(v == 0.0 for v in r.phase_fractions().values())


class TestNormalizations:
    def test_energy_pct_saving_is_negative(self):
        base = make_result(total_energy=100.0)
        better = make_result(total_energy=94.0)
        assert normalized_energy_pct(better, base) == pytest.approx(-6.0)

    def test_energy_pct_increase_is_positive(self):
        base = make_result(total_energy=100.0)
        worse = make_result(total_energy=103.0)
        assert normalized_energy_pct(worse, base) == pytest.approx(3.0)

    def test_aopb_pct_of_base(self):
        base = make_result(aopb_energy=1000.0)
        r = make_result(aopb_energy=80.0)
        assert normalized_aopb_pct(r, base) == pytest.approx(8.0)

    def test_aopb_zero_base(self):
        base = make_result(aopb_energy=0.0)
        r = make_result(aopb_energy=10.0)
        assert normalized_aopb_pct(r, base) == 0.0

    def test_slowdown(self):
        base = make_result(cycles=1000)
        slow = make_result(cycles=1150)
        assert slowdown_pct(slow, base) == pytest.approx(15.0)

    def test_speedup_is_negative_slowdown(self):
        base = make_result(cycles=1000)
        fast = make_result(cycles=950)
        assert slowdown_pct(fast, base) == pytest.approx(-5.0)

    def test_zero_division_guards(self):
        base = make_result(cycles=0, total_energy=0.0, aopb_energy=0.0)
        r = make_result()
        assert normalized_energy_pct(r, base) == 0.0
        assert slowdown_pct(r, base) == 0.0
