"""The parallel experiment runner: plan/fan-out/gather + cache safety.

Covers the three-stage machine (plan dedupes against memory and disk,
cold recipes fan out over worker processes, gather is deterministic)
and the concurrency/crash protocol of the disk cache: atomic publish,
per-entry advisory locking, corrupt-entry quarantine.
"""

import os
import pickle

import pytest

from repro.analysis.runner import (
    ExperimentRunner,
    Recipe,
    _entry_lock,
    _load_entry,
    _store_entry,
    default_jobs,
)

TINY = dict(scale="tiny", max_cycles=30_000)


class TestPlan:
    def test_dedupes_duplicates(self, tmp_path):
        r = ExperimentRunner(cache_dir=tmp_path, **TINY)
        cold = r.plan([Recipe("swaptions", 2)] * 5 + [Recipe("ocean", 2)])
        assert cold == [Recipe("swaptions", 2), Recipe("ocean", 2)]
        assert r.stats["planned"] == 2

    def test_dedupes_against_memory(self, tmp_path):
        r = ExperimentRunner(cache_dir=tmp_path, **TINY)
        r.run("swaptions", 2)
        cold = r.plan([Recipe("swaptions", 2), Recipe("swaptions", 2, "dvfs")])
        assert cold == [Recipe("swaptions", 2, "dvfs")]
        assert r.stats["mem_hits"] == 1

    def test_dedupes_against_disk(self, tmp_path):
        r1 = ExperimentRunner(cache_dir=tmp_path, **TINY)
        r1.run("swaptions", 2)
        r2 = ExperimentRunner(cache_dir=tmp_path, **TINY)
        cold = r2.plan([Recipe("swaptions", 2)])
        assert cold == []
        assert r2.stats["disk_hits"] == 1
        # The disk hit is now a free in-memory run.
        assert r2.run("swaptions", 2).cycles == r1.run("swaptions", 2).cycles

    def test_no_cache_everything_cold(self, tmp_path):
        r1 = ExperimentRunner(cache_dir=tmp_path, **TINY)
        r1.run("swaptions", 2)
        r2 = ExperimentRunner(cache_dir=tmp_path, use_cache=False, **TINY)
        assert r2.plan([Recipe("swaptions", 2)]) == [Recipe("swaptions", 2)]


class TestRunMany:
    RECIPES = [
        Recipe("swaptions", 2),
        Recipe("swaptions", 2, "dvfs"),
        Recipe("swaptions", 2),  # duplicate of [0]
        Recipe("ocean", 2, "ptb", "toall"),
    ]

    def test_gather_order_matches_input(self, tmp_path):
        r = ExperimentRunner(cache_dir=tmp_path, **TINY)
        results = r.run_many(self.RECIPES)
        assert len(results) == len(self.RECIPES)
        assert results[0] is results[2]
        assert [x.technique for x in results] == ["none", "dvfs", "none",
                                                 "ptb"]

    def test_parallel_matches_serial(self, tmp_path):
        serial = ExperimentRunner(cache_dir=tmp_path / "s", **TINY)
        parallel = ExperimentRunner(cache_dir=tmp_path / "p", **TINY)
        a = serial.run_many(self.RECIPES, jobs=1)
        b = parallel.run_many(self.RECIPES, jobs=2)
        for x, y in zip(a, b):
            assert x.cycles == y.cycles
            assert x.total_energy == pytest.approx(y.total_energy)
            assert x.aopb_energy == pytest.approx(y.aopb_energy)

    def test_workers_populate_shared_disk_cache(self, tmp_path):
        r = ExperimentRunner(cache_dir=tmp_path, **TINY)
        r.run_many(self.RECIPES, jobs=2)
        assert len(list(tmp_path.glob("run_*.pkl"))) == 3  # deduped

    def test_warm_cache_runs_nothing(self, tmp_path):
        r = ExperimentRunner(cache_dir=tmp_path, **TINY)
        r.run_many(self.RECIPES)
        before = r.stats["simulated"]
        r.run_many(self.RECIPES, jobs=2)
        assert r.stats["simulated"] == before


class TestCacheSafety:
    def test_atomic_publish_leaves_no_temp_files(self, tmp_path):
        r = ExperimentRunner(cache_dir=tmp_path, **TINY)
        r.run("swaptions", 2)
        names = [p.name for p in tmp_path.iterdir()]
        assert not [n for n in names if ".tmp." in n]

    def test_corrupt_entry_quarantined_and_resimulated(self, tmp_path):
        r1 = ExperimentRunner(cache_dir=tmp_path, **TINY)
        good = r1.run("swaptions", 2)
        (entry,) = tmp_path.glob("run_*.pkl")
        entry.write_bytes(b"truncated-by-a-crash")
        r2 = ExperimentRunner(cache_dir=tmp_path, **TINY)
        again = r2.run("swaptions", 2)
        assert again.cycles == good.cycles
        # The bad bytes were kept for inspection, not silently unlinked.
        (quarantined,) = tmp_path.glob("run_*.pkl.corrupt")
        assert quarantined.read_bytes() == b"truncated-by-a-crash"

    def test_load_entry_missing_is_none(self, tmp_path):
        assert _load_entry(tmp_path / "absent.pkl") is None

    def test_store_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "x.pkl"
        _store_entry(path, {"k": 1})
        assert _load_entry(path) == {"k": 1}

    def test_store_failure_cleans_temp(self, tmp_path):
        path = tmp_path / "y.pkl"
        with pytest.raises(Exception):
            _store_entry(path, lambda: None)  # lambdas don't pickle
        assert not path.exists()
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_entry_lock_creates_and_releases(self, tmp_path):
        path = tmp_path / "z.pkl"
        with _entry_lock(path):
            assert (tmp_path / "z.pkl.lock").exists()
        # Re-acquirable (released, not leaked).
        with _entry_lock(path):
            pass

    def test_entry_lock_excludes_second_process(self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        path = tmp_path / "w.pkl"
        with _entry_lock(path):
            with (tmp_path / "w.pkl.lock").open("a") as fh:
                with pytest.raises(OSError):
                    fcntl.flock(fh.fileno(),
                                fcntl.LOCK_EX | fcntl.LOCK_NB)


class TestCacheByteIdentity:
    """A hit must hand back exactly what the miss path computed.

    The purity pass (KEY001/PURE003) argues this statically; this is the
    dynamic regression: same recipe, fresh runner, byte-identical pickle
    and untouched cache entry."""

    def test_hit_pickles_identical_to_miss(self, tmp_path):
        r1 = ExperimentRunner(cache_dir=tmp_path, **TINY)
        miss = r1.run("swaptions", 2, "ptb", "toall")
        (entry,) = tmp_path.glob("run_*.pkl")
        entry_bytes = entry.read_bytes()

        r2 = ExperimentRunner(cache_dir=tmp_path, **TINY)
        hit = r2.run("swaptions", 2, "ptb", "toall")
        assert r2.stats["disk_hits"] == 1 and r2.stats["simulated"] == 0

        assert pickle.dumps(hit) == pickle.dumps(miss)
        assert entry.read_bytes() == entry_bytes  # hit never rewrites

    def test_key_layout_change_is_a_clean_miss(self, tmp_path):
        # Different recipe → different entry file, never an aliased hit.
        r = ExperimentRunner(cache_dir=tmp_path, **TINY)
        r.run("swaptions", 2)
        r.run("swaptions", 2, "ptb", "toall")
        assert len(list(tmp_path.glob("run_*.pkl"))) == 2


class TestDefaults:
    def test_repro_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6

    def test_repro_jobs_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_repro_jobs_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == (os.cpu_count() or 1)

    def test_recipe_defaults(self):
        r = Recipe("ocean", 4)
        assert r.technique == "none" and r.policy is None
        assert r.relax == 0.0 and r.budget_fraction == 0.5
        # Recipes are picklable (they cross the process-pool boundary).
        assert pickle.loads(pickle.dumps(r)) == r
