"""Integration tests: full CMP simulations end to end."""

import pytest

from repro.config import CMPConfig
from repro.sim.cmp import CMPSimulator, run_simulation
from repro.sim.results import normalized_aopb_pct
from repro.workloads import build_program

from .conftest import make_program


@pytest.fixture(scope="module")
def ocean2():
    """A tiny 2-core ocean run shared by read-only assertions."""
    cfg = CMPConfig(num_cores=2)
    prog = build_program("ocean", 2, scale="tiny")
    return run_simulation(cfg, prog, technique="none", max_cycles=100_000)


class TestBasicRuns:
    def test_completes(self, ocean2):
        assert ocean2.completed
        assert ocean2.cycles > 0

    def test_energy_positive(self, ocean2):
        assert ocean2.total_energy > 0
        assert ocean2.avg_power > 0

    def test_commits_all_instructions(self):
        cfg = CMPConfig(num_cores=2)
        prog = make_program(2, work=500, barriers=1)
        sim = CMPSimulator(cfg, prog, technique="none")
        r = sim.run(100_000)
        # All program instructions commit (plus sync/spin overhead).
        assert r.committed_instructions >= prog.total_instructions()

    def test_phase_cycles_cover_run(self, ocean2):
        per_core = [sum(pc) for pc in ocean2.phase_cycles]
        # Every live cycle is classified (done cores stop counting).
        assert all(0 < c <= ocean2.cycles for c in per_core)

    def test_thread_core_mismatch_rejected(self):
        cfg = CMPConfig(num_cores=4)
        prog = make_program(2)
        with pytest.raises(ValueError):
            CMPSimulator(cfg, prog)

    def test_deterministic(self):
        cfg = CMPConfig(num_cores=2)
        prog = build_program("fft", 2, scale="tiny")
        a = run_simulation(cfg, prog, technique="none", max_cycles=50_000)
        b = run_simulation(cfg, prog, technique="none", max_cycles=50_000)
        assert a.cycles == b.cycles
        assert a.total_energy == pytest.approx(b.total_energy)
        assert a.aopb_energy == pytest.approx(b.aopb_energy)

    def test_max_cycles_cap(self):
        cfg = CMPConfig(num_cores=2)
        prog = make_program(2, work=100_000, barriers=1)
        with pytest.warns(RuntimeWarning, match="truncated at max_cycles"):
            r = run_simulation(cfg, prog, max_cycles=500)
        assert r.cycles == 500
        assert not r.completed
        assert r.truncated

    def test_completed_run_not_truncated(self, ocean2):
        assert not ocean2.truncated

    def test_traces_collected_on_request(self):
        cfg = CMPConfig(num_cores=2)
        prog = make_program(2, work=300, barriers=1)
        sim = CMPSimulator(cfg, prog, collect_traces=True)
        r = sim.run(50_000)
        assert r.power_trace is not None
        assert len(r.power_trace) == r.cycles
        assert r.core_power_traces.shape == (r.cycles, 2)

    def test_no_budget_means_no_aopb_baseline(self):
        cfg = CMPConfig(num_cores=2)
        prog = make_program(2, work=300, barriers=1)
        r = run_simulation(cfg, prog, budget_fraction=None, max_cycles=50_000)
        # Budget equals peak power: essentially never exceeded.
        assert r.aopb_fraction_of_energy < 0.02


class TestTechniqueEffects:
    @pytest.fixture(scope="class")
    def runs(self):
        cfg = CMPConfig(num_cores=4)
        prog = build_program("ocean", 4, scale="tiny")
        out = {"none": run_simulation(cfg, prog, "none", max_cycles=150_000)}
        for tech in ("dvfs", "dfs", "2level"):
            out[tech] = run_simulation(cfg, prog, tech, max_cycles=150_000)
        out["ptb"] = run_simulation(
            cfg, prog, "ptb", ptb_policy="toall", max_cycles=150_000
        )
        return out

    def test_all_complete(self, runs):
        assert all(r.completed for r in runs.values())

    def test_controlled_runs_reduce_aopb(self, runs):
        base = runs["none"]
        # Naive techniques may barely engage on a tiny run (the global
        # trigger rarely fires), but they must not blow the area up;
        # PTB must visibly shrink it.
        for tech in ("dvfs", "2level"):
            assert runs[tech].aopb_energy <= base.aopb_energy * 1.25
        assert runs["ptb"].aopb_energy < base.aopb_energy * 0.9

    def test_ptb_beats_naive_2level_on_aopb(self, runs):
        base = runs["none"]
        ptb = normalized_aopb_pct(runs["ptb"], base)
        two = normalized_aopb_pct(runs["2level"], base)
        assert ptb < two

    def test_ptb_energy_overhead_is_small(self, runs):
        base = runs["none"]
        ratio = runs["ptb"].total_energy / base.total_energy
        assert 0.9 < ratio < 1.10  # paper: ~+3%

    def test_throttling_happened_under_ptb(self, runs):
        assert runs["ptb"].ptht_hit_rate > 0.5

    def test_techniques_slow_down_at_most_mildly(self, runs):
        base = runs["none"]
        for tech in ("dvfs", "dfs", "2level", "ptb"):
            assert runs[tech].cycles < base.cycles * 1.5


class TestRelaxedPTB:
    def test_relaxation_trades_accuracy_for_energy(self):
        cfg = CMPConfig(num_cores=4)
        prog = build_program("fft", 4, scale="tiny")
        strict = run_simulation(cfg, prog, "ptb", ptb_policy="toall",
                                max_cycles=150_000)
        relaxed_cfg = cfg.with_ptb(relax_threshold=0.3)
        relaxed = run_simulation(relaxed_cfg, prog, "ptb",
                                 ptb_policy="toall", max_cycles=150_000)
        assert relaxed.aopb_energy >= strict.aopb_energy
        assert relaxed.throttled_cycles <= strict.throttled_cycles


class TestThermal:
    def test_temperature_rises_above_ambient(self, ocean2):
        assert ocean2.mean_temperature > 318.0

    def test_ptb_temperature_no_hotter_than_base(self):
        cfg = CMPConfig(num_cores=4)
        prog = build_program("cholesky", 4, scale="tiny")
        base = run_simulation(cfg, prog, "none", max_cycles=150_000)
        ptb = run_simulation(cfg, prog, "ptb", ptb_policy="toall",
                             max_cycles=150_000)
        assert ptb.mean_temperature <= base.mean_temperature + 1.0
