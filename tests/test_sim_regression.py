"""Byte-identical SimResult regression guard for kernel perf fixes.

The simcheck-kernel PERF findings fixed in ``sim/cmp.py``, ``budget/ptb.py``
and ``budget/controller.py`` (hoisted attribute chains, reused scratch
buffers, incremental pledge accounting, module-constant technique tuples)
are pure mechanical rewrites: they must not perturb a single bit of
simulator output.  These hashes were captured on the seed tree *before*
any of those edits; if a future "perf-neutral" refactor changes them, it
was not neutral.

The program is small but exercises every subsystem the rewrites touched:
compute phases (DVFS + 2-level throttles), a contended lock (spin power),
barriers (sync domain / priority boost) and all three PTB distribution
policies (latency pipe, pledge escrow, grant bookkeeping).
"""

from __future__ import annotations

import hashlib
import pickle

import pytest

from repro.config import CMPConfig
from repro.sim.cmp import run_simulation
from repro.trace.phases import (
    BarrierPhase,
    ComputePhase,
    LockPhase,
    ParallelProgram,
    ThreadProgram,
)

# sha256 of pickle.dumps(result, protocol=4) on the seed tree.
SEED_HASHES = {
    "toall": "32b34c995feee5f1429545176d25fc69ee01b51fa18033947b08713287388b80",
    "toone": "d5d6175e77b86a841172db0e04b3e3314b500ac3cb8961d743d404aad7554c6e",
    "dynamic": "fcfacc684dd4e3e37908d1db2a9aa4a114a06a1c29f1bbe66ffa67da90e4948c",
}
SEED_CYCLES = 1995


def _make_program(num_threads: int, work: int) -> ParallelProgram:
    threads = []
    for t in range(num_threads):
        phases = []
        for b in range(2):
            phases.append(
                ComputePhase(instructions=work, footprint_lines=512)
            )
            phases.append(
                LockPhase(
                    lock_id=0,
                    critical_section=ComputePhase(
                        instructions=40, footprint_lines=512
                    ),
                )
            )
            phases.append(BarrierPhase(b))
        threads.append(ThreadProgram(thread_id=t, phases=tuple(phases)))
    return ParallelProgram(name="kernel-regression", threads=tuple(threads))


@pytest.mark.parametrize("policy", sorted(SEED_HASHES))
def test_simresult_pickle_identical_to_seed(policy: str) -> None:
    cfg = CMPConfig(num_cores=2)
    result = run_simulation(
        cfg,
        _make_program(2, 600),
        technique="ptb",
        ptb_policy=policy,
        max_cycles=40_000,
    )
    assert result.cycles == SEED_CYCLES
    blob = pickle.dumps(result, protocol=4)
    assert hashlib.sha256(blob).hexdigest() == SEED_HASHES[policy]
