"""simcheck flow analyses: tick-order hazards, unit propagation,
baseline round-trip, and the CLI gate over the real tree."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.simcheck.flow import (
    analyze_package,
    apply_baseline,
    load_baseline,
    write_baseline,
)

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
SRC_REPRO = SRC / "repro"
BASELINE = REPO / ".simcheck-baseline.json"


def write_pkg(root: Path, files: dict) -> Path:
    """Materialise a fixture package under ``root / 'pkg'``."""
    pkg = root / "pkg"
    for rel, source in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    for sub in {p.parent for p in pkg.rglob("*.py")} | {pkg}:
        init = sub / "__init__.py"
        if not init.exists():
            init.write_text("")
    return pkg


def run_cli(*argv, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", "repro.simcheck", *argv],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )


# --------------------------------------------------------------------------- #
# fixtures                                                                    #
# --------------------------------------------------------------------------- #

# A minimal cycle-stepped simulator with a deliberate ordering hazard:
# the driver reads ``power.throttle`` at the top of the cycle loop, and
# the later-ticked ``PowerModel.end_cycle`` writes it in the same cycle
# — the read-before-later-write shape of FLOW001.
HAZARD_SIM = {
    "sim/cmp.py": (
        "from ..core import Core\n"
        "from ..power import PowerModel\n"
        "class Simulator:\n"
        "    def __init__(self, n: int):\n"
        "        self.cores = [Core() for _ in range(n)]\n"
        "        self.power = PowerModel(self.cores)\n"
        "        self.cycle = 0\n"
        "    def run(self, max_cycles: int):\n"
        "        self.cycle = 0\n"
        "        while self.cycle < max_cycles:\n"
        "            throttle = self.power.throttle\n"
        "            for core in self.cores:\n"
        "                core.step(throttle)\n"
        "            self.power.end_cycle()\n"
        "            self.cycle += 1\n"
    ),
    "core.py": (
        "class Core:\n"
        "    def __init__(self):\n"
        "        self.retired = 0\n"
        "    def step(self, throttle: bool):\n"
        "        if not throttle:\n"
        "            self.retired += 1\n"
    ),
    "power.py": (
        "class PowerModel:\n"
        "    def __init__(self, cores):\n"
        "        self.cores = cores\n"
        "        self.energy = 0.0\n"
        "        self.throttle = False\n"
        "    def end_cycle(self):\n"
        "        self.energy += 1.0\n"
        "        self.throttle = self.energy > 100.0\n"
    ),
}

# Same components, but the power model ticks *first*, so the driver's
# throttle read sees this cycle's value: write-then-read is the intended
# producer/consumer dataflow and must not be reported.
CLEAN_SIM = {
    "sim/cmp.py": (
        "from ..core import Core\n"
        "from ..power import PowerModel\n"
        "class Simulator:\n"
        "    def __init__(self, n: int):\n"
        "        self.cores = [Core() for _ in range(n)]\n"
        "        self.power = PowerModel(self.cores)\n"
        "        self.cycle = 0\n"
        "    def run(self, max_cycles: int):\n"
        "        self.cycle = 0\n"
        "        while self.cycle < max_cycles:\n"
        "            self.power.end_cycle()\n"
        "            throttle = self.power.throttle\n"
        "            for core in self.cores:\n"
        "                core.step(throttle)\n"
        "            self.cycle += 1\n"
    ),
    "core.py": HAZARD_SIM["core.py"],
    "power.py": HAZARD_SIM["power.py"],
}

UNIT_MIX = {
    "units.py": (
        "Tokens = float\n"
        "Joules = float\n"
        "Watts = float\n"
        "Cycles = float\n"
        "Hertz = float\n"
    ),
    "acct.py": (
        "from .units import Joules, Tokens\n"
        "def charge(tokens: Tokens, energy: Joules) -> Tokens:\n"
        "    return tokens + energy\n"
    ),
}

UNIT_CLEAN = {
    "units.py": UNIT_MIX["units.py"],
    "acct.py": (
        "from .units import Joules, Tokens\n"
        "def exchange(energy: Joules) -> Tokens:\n"
        "    return energy * 0.5\n"
        "def charge(tokens: Tokens, energy: Joules) -> Tokens:\n"
        "    return tokens + exchange(energy)\n"
    ),
}


# --------------------------------------------------------------------------- #
# hazard detection                                                            #
# --------------------------------------------------------------------------- #


class TestHazards:
    def test_seeded_hazard_detected(self, tmp_path):
        pkg = write_pkg(tmp_path, HAZARD_SIM)
        findings, notes = analyze_package(pkg, units=False)
        flow = [f for f in findings if f.rule_id.startswith("FLOW")]
        assert flow, notes
        hazard = [f for f in flow if "throttle" in f.message]
        assert hazard, [f.render() for f in flow]
        f = hazard[0]
        assert f.rule_id == "FLOW001"
        assert "Simulator.run" in f.message
        assert "PowerModel.end_cycle" in f.message
        # Reported at the read site, pointing at the write site.
        assert f.path.endswith("cmp.py")
        assert "power.py" in f.message
        assert f.line > 0

    def test_clean_sim_has_no_hazards(self, tmp_path):
        pkg = write_pkg(tmp_path, CLEAN_SIM)
        findings, notes = analyze_package(pkg, units=False)
        assert findings == [], [f.render() for f in findings]
        assert any("driver" in n for n in notes), notes

    def test_fingerprint_is_line_independent(self, tmp_path):
        pkg = write_pkg(tmp_path, HAZARD_SIM)
        fp1 = {f.identity() for f in analyze_package(pkg, units=False)[0]}
        # Shift every line in power.py down; identity must not change.
        mod = pkg / "power.py"
        mod.write_text("# moved\n# moved\n" + mod.read_text())
        fp2 = {f.identity() for f in analyze_package(pkg, units=False)[0]}
        assert fp1 == fp2

    def test_no_driver_is_reported_not_crash(self, tmp_path):
        pkg = write_pkg(tmp_path, {"util.py": "def helper():\n    return 1\n"})
        findings, notes = analyze_package(pkg, units=False)
        assert findings == []
        assert any("driver" in n.lower() for n in notes), notes


# --------------------------------------------------------------------------- #
# unit propagation                                                            #
# --------------------------------------------------------------------------- #


class TestUnits:
    def test_seeded_mix_detected(self, tmp_path):
        pkg = write_pkg(tmp_path, UNIT_MIX)
        findings, _ = analyze_package(pkg, hazards=False)
        unit = [f for f in findings if f.rule_id == "UNIT001"]
        assert unit, [f.render() for f in findings]
        assert "Joules" in unit[0].message and "Tokens" in unit[0].message
        assert unit[0].path.endswith("acct.py")

    def test_explicit_exchange_is_clean(self, tmp_path):
        pkg = write_pkg(tmp_path, UNIT_CLEAN)
        findings, _ = analyze_package(pkg, hazards=False)
        assert findings == [], [f.render() for f in findings]

    def test_inline_disable_suppresses(self, tmp_path):
        files = dict(UNIT_MIX)
        files["acct.py"] = files["acct.py"].replace(
            "return tokens + energy",
            "return tokens + energy  # simcheck: disable=UNIT001 - test",
        )
        pkg = write_pkg(tmp_path, files)
        findings, _ = analyze_package(pkg, hazards=False)
        assert findings == [], [f.render() for f in findings]

    def test_return_annotation_mismatch(self, tmp_path):
        files = dict(UNIT_MIX)
        files["acct.py"] = (
            "from .units import Joules, Watts\n"
            "def leakage(temp_scale: float, base: Joules) -> Watts:\n"
            "    return base * temp_scale\n"
            "def bad(base: Joules) -> Watts:\n"
            "    return base\n"
        )
        pkg = write_pkg(tmp_path, files)
        findings, _ = analyze_package(pkg, hazards=False)
        # Mult launders the unit (a declared exchange); the bare return
        # of Joules from a Watts-annotated function does not.
        assert [f.rule_id for f in findings] == ["UNIT004"]
        assert "bad" in findings[0].message


# --------------------------------------------------------------------------- #
# baseline round-trip                                                         #
# --------------------------------------------------------------------------- #


class TestBaseline:
    def test_write_then_suppress_round_trip(self, tmp_path):
        pkg = write_pkg(tmp_path, HAZARD_SIM)
        findings, _ = analyze_package(pkg, units=False)
        assert findings
        path = tmp_path / "baseline.json"
        count = write_baseline(path, findings, {})
        assert count == len({f.identity() for f in findings})

        baseline = load_baseline(path)
        new, suppressed, stale = apply_baseline(findings, baseline)
        assert new == [] and stale == []
        assert len(suppressed) == len(findings)

    def test_new_violation_still_fails(self, tmp_path):
        pkg = write_pkg(tmp_path, HAZARD_SIM)
        findings, _ = analyze_package(pkg, units=False)
        path = tmp_path / "baseline.json"
        write_baseline(path, findings, {})
        # Introduce a *new* hazard: the driver now also peeks at the
        # accumulated energy before end_cycle updates it.
        mod = pkg / "sim" / "cmp.py"
        mod.write_text(
            mod.read_text().replace(
                "throttle = self.power.throttle\n",
                "throttle = self.power.throttle\n"
                "            _peek = self.power.energy\n",
            )
        )
        findings2, _ = analyze_package(pkg, units=False)
        new, _, stale = apply_baseline(findings2, load_baseline(path))
        assert any("energy" in f.message for f in new), (
            [f.render() for f in new]
        )
        assert stale == []

    def test_stale_entries_reported(self, tmp_path):
        pkg = write_pkg(tmp_path, HAZARD_SIM)
        findings, _ = analyze_package(pkg, units=False)
        path = tmp_path / "baseline.json"
        write_baseline(path, findings, {})
        # Fix the hazard (tick the power model first); baselined
        # fingerprints become stale.
        (pkg / "sim" / "cmp.py").write_text(CLEAN_SIM["sim/cmp.py"])
        findings2, _ = analyze_package(pkg, units=False)
        new, suppressed, stale = apply_baseline(
            findings2, load_baseline(path)
        )
        assert new == [] and suppressed == []
        assert stale

    def test_justifications_survive_rewrite(self, tmp_path):
        pkg = write_pkg(tmp_path, HAZARD_SIM)
        findings, _ = analyze_package(pkg, units=False)
        path = tmp_path / "baseline.json"
        write_baseline(path, findings, {})
        old = load_baseline(path)
        fp = next(iter(old))
        old[fp] = "documented one-cycle latency"
        write_baseline(path, findings, old)
        assert load_baseline(path)[fp] == "documented one-cycle latency"

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)


# --------------------------------------------------------------------------- #
# CLI                                                                         #
# --------------------------------------------------------------------------- #


class TestCLI:
    def test_flow_json_format(self, tmp_path):
        pkg = write_pkg(tmp_path, HAZARD_SIM)
        proc = run_cli("flow", str(pkg), "--format", "json", "--no-units")
        assert proc.returncode == 1, proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["tool"] == "flow"
        assert doc["count"] == len(doc["findings"]) > 0
        f = doc["findings"][0]
        assert set(f) == {
            "path", "line", "col", "rule", "message", "fingerprint"
        }
        assert f["rule"].startswith("FLOW")

    def test_flow_baseline_gate(self, tmp_path):
        pkg = write_pkg(tmp_path, HAZARD_SIM)
        path = tmp_path / "baseline.json"
        proc = run_cli(
            "flow", str(pkg), "--baseline", str(path), "--write-baseline"
        )
        assert proc.returncode == 0, proc.stderr
        proc = run_cli("flow", str(pkg), "--baseline", str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "suppressed" in proc.stderr

    def test_lint_json_format(self, tmp_path):
        bad = tmp_path / "core" / "mod.py"
        bad.parent.mkdir()
        bad.write_text(
            "import random\n"
            "def step(now):\n"
            "    return random.random()\n"
        )
        proc = run_cli("lint", str(bad), "--format", "json")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["tool"] == "lint"
        assert doc["count"] >= 1
        assert all("fingerprint" in f for f in doc["findings"])


# --------------------------------------------------------------------------- #
# the real tree                                                               #
# --------------------------------------------------------------------------- #


class TestRealTree:
    def test_src_repro_is_clean_against_baseline(self):
        findings, notes = analyze_package(SRC_REPRO)
        assert any("CMPSimulator.run" in n for n in notes), notes
        new, _, stale = apply_baseline(findings, load_baseline(BASELINE))
        assert new == [], [f.render() for f in new]
        assert stale == [], stale

    def test_baseline_entries_are_justified(self):
        data = json.loads(BASELINE.read_text())
        for entry in data["findings"]:
            assert entry["justification"], entry["fingerprint"]
            assert "TODO" not in entry["justification"], entry["fingerprint"]

    def test_units_module_is_zero_cost(self):
        from repro.units import Cycles, Joules, Tokens, Watts

        assert Tokens is float and Joules is float
        assert Watts is float and Cycles is float
