"""simcheck kernel pass: PERF rule fixtures, coupling taxonomy golden
report, determinism, the real-tree gate, SARIF emission and baseline
pruning."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.simcheck.kernel import (
    CROSS_CORE,
    GLOBAL,
    PER_CORE,
    analyze_kernel,
    render_json,
)

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
SRC_REPRO = SRC / "repro"
KERNEL_BASELINE = REPO / ".simcheck-kernel-baseline.json"


def write_pkg(root: Path, files: dict) -> Path:
    """Materialise a fixture package under ``root / 'pkg'``."""
    pkg = root / "pkg"
    for rel, source in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    for sub in {p.parent for p in pkg.rglob("*.py")} | {pkg}:
        init = sub / "__init__.py"
        if not init.exists():
            init.write_text("")
    return pkg


def run_cli(*argv, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", "repro.simcheck", *argv],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )


# --------------------------------------------------------------------------- #
# fixtures                                                                    #
# --------------------------------------------------------------------------- #

DRIVER = (
    "from ..core import Core\n"
    "class Simulator:\n"
    "    def __init__(self, n: int):\n"
    "        self.cores = [Core(i) for i in range(n)]\n"
    "        self.cycle = 0\n"
    "    def run(self, max_cycles: int):\n"
    "        self.cycle = 0\n"
    "        while self.cycle < max_cycles:\n"
    "            for core in self.cores:\n"
    "                core.step(self.cycle)\n"
    "            self.cycle += 1\n"
)


def perf_pkg(step_lines):
    """A 2-module package whose Core.step body is ``step_lines``."""
    body = "".join(f"        {line}\n" for line in step_lines)
    return {
        "sim/cmp.py": DRIVER,
        "core.py": (
            "class Core:\n"
            "    def __init__(self, cid):\n"
            "        self.cid = cid\n"
            "        self.retired = 0\n"
            "        self._telemetry = None\n"
            "    def step(self, now):\n"
            + body
        ),
    }


# (rule, body triggering it, same body with the inline disable)
PERF_CASES = [
    (
        "PERF001",
        ["buf = [now, self.cid]", "self.retired += len(buf)"],
        ["buf = [now, self.cid]  # simcheck: disable=PERF001",
         "self.retired += len(buf)"],
    ),
    (
        "PERF002",
        ["for _ in range(2):",
         "    self.retired += self.gen.bias"],
        ["for _ in range(2):",
         "    self.retired += self.gen.bias  # simcheck: disable=PERF002"],
    ),
    (
        "PERF003",
        ["cb = lambda v: v + 1", "self.retired += cb(now)"],
        ["cb = lambda v: v + 1  # simcheck: disable=PERF003",
         "self.retired += cb(now)"],
    ),
    (
        "PERF004",
        ["tag = f'core {now}'", "self.retired += len(tag)"],
        ["tag = f'core {now}'  # simcheck: disable=PERF004",
         "self.retired += len(tag)"],
    ),
    (
        "PERF005",
        ["if isinstance(now, int):", "    self.retired += 1"],
        ["if isinstance(now, int):  # simcheck: disable=PERF005",
         "    self.retired += 1"],
    ),
    (
        "PERF006",
        ["self._telemetry.on_step(now)", "self.retired += 1"],
        ["self._telemetry.on_step(now)  # simcheck: disable=PERF006",
         "self.retired += 1"],
    ),
]


class TestPerfRules:
    @pytest.mark.parametrize(
        "rule,body,_d", PERF_CASES, ids=[c[0] for c in PERF_CASES]
    )
    def test_positive(self, tmp_path, rule, body, _d):
        pkg = write_pkg(tmp_path, perf_pkg(body))
        ka = analyze_kernel(pkg)
        rules = {f.rule_id for f in ka.findings}
        assert rule in rules

    @pytest.mark.parametrize(
        "rule,_b,disabled", PERF_CASES, ids=[c[0] for c in PERF_CASES]
    )
    def test_inline_disable(self, tmp_path, rule, _b, disabled):
        pkg = write_pkg(tmp_path, perf_pkg(disabled))
        ka = analyze_kernel(pkg)
        hits = [
            f for f in ka.findings
            if f.rule_id == rule and f.path.endswith("core.py")
        ]
        assert hits == []

    @pytest.mark.parametrize(
        "rule,body,_d", PERF_CASES, ids=[c[0] for c in PERF_CASES]
    )
    def test_baseline_suppression(self, tmp_path, rule, body, _d):
        pkg = write_pkg(tmp_path, perf_pkg(body))
        bl = tmp_path / "bl.json"
        wrote = run_cli(
            "kernel", str(pkg), "--baseline", str(bl), "--write-baseline"
        )
        assert wrote.returncode == 0, wrote.stderr
        gated = run_cli("kernel", str(pkg), "--baseline", str(bl))
        assert gated.returncode == 0, gated.stdout + gated.stderr
        assert rule not in gated.stdout

    def test_guarded_observer_not_flagged(self, tmp_path):
        pkg = write_pkg(tmp_path, perf_pkg([
            "if self._telemetry is not None:",
            "    self._telemetry.on_step(now)",
            "self.retired += 1",
        ]))
        ka = analyze_kernel(pkg)
        assert not [f for f in ka.findings if f.rule_id == "PERF006"]


# --------------------------------------------------------------------------- #
# coupling taxonomy + golden report                                           #
# --------------------------------------------------------------------------- #

COUPLING_SIM = {
    "sim/cmp.py": (
        "from ..core import Core\n"
        "from ..power import PowerModel\n"
        "class Simulator:\n"
        "    def __init__(self, n: int):\n"
        "        self.cores = [Core(i) for i in range(n)]\n"
        "        self.power = PowerModel(n)\n"
        "        self.cycle = 0\n"
        "    def run(self, max_cycles: int):\n"
        "        self.cycle = 0\n"
        "        while self.cycle < max_cycles:\n"
        "            for core in self.cores:\n"
        "                core.step(self.cycle)\n"
        "            self.power.end_cycle([c.load for c in self.cores])\n"
        "            self.cycle += 1\n"
    ),
    "core.py": (
        "class Core:\n"
        "    def __init__(self, cid):\n"
        "        self.cid = cid\n"
        "        self.retired = 0\n"
        "        self.load = 0.0\n"
        "    def step(self, now):\n"
        "        self.retired += 1\n"
        "        self.load = self.retired * 0.5\n"
    ),
    "power.py": (
        "class PowerModel:\n"
        "    def __init__(self, n):\n"
        "        self.total = 0.0\n"
        "        self.per_core = [0.0] * n\n"
        "    def end_cycle(self, loads):\n"
        "        i = 0\n"
        "        for v in loads:\n"
        "            self.per_core[i] = v\n"
        "            self.total += v\n"
        "            i += 1\n"
    ),
}


class TestCoupling:
    def test_taxonomy_on_fixture(self, tmp_path):
        pkg = write_pkg(tmp_path, COUPLING_SIM)
        ka = analyze_kernel(pkg)
        assert ka.report is not None
        assert not ka.unknown_fields
        by_attr = {f.attr: f.classification for f in ka.fields}
        assert by_attr["retired"] == PER_CORE
        # `load` is written per-core but *gathered* by the driver's
        # `[c.load for c in self.cores]` — a cross-core read coupling.
        assert by_attr["load"] == CROSS_CORE
        assert by_attr["per_core"] == CROSS_CORE
        assert by_attr["total"] == GLOBAL
        assert by_attr["cycle"] == GLOBAL
        # cross-core fields surface as coupling edges
        edge_fields = {
            e["field"] for e in ka.report["coupling_edges"]
        }
        assert any("per_core" in f for f in edge_fields)

    def test_report_shape_and_driver(self, tmp_path):
        pkg = write_pkg(tmp_path, COUPLING_SIM)
        ka = analyze_kernel(pkg)
        rep = ka.report
        assert rep["version"] == 1
        assert rep["driver"] == "Simulator.run"
        assert rep["summary"]["fields"]["unknown"] == 0
        hot = {h["qualname"] for h in rep["hot_functions"]}
        assert "Simulator.run" in hot
        assert "Core.step" in hot
        assert "PowerModel.end_cycle" in hot

    def test_report_deterministic(self, tmp_path):
        pkg = write_pkg(tmp_path, COUPLING_SIM)
        first = render_json(analyze_kernel(pkg).report)
        second = render_json(analyze_kernel(pkg).report)
        assert first == second

    def test_cli_report_bytes_deterministic(self, tmp_path):
        pkg = write_pkg(tmp_path, COUPLING_SIM)
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        ra = run_cli("kernel", str(pkg), "--report", str(out_a))
        rb = run_cli("kernel", str(pkg), "--report", str(out_b))
        assert ra.returncode == rb.returncode
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_table_format(self, tmp_path):
        pkg = write_pkg(tmp_path, COUPLING_SIM)
        res = run_cli("kernel", str(pkg), "--format", "table")
        assert "Simulator.run" in res.stdout
        assert "cross_core" in res.stdout


# --------------------------------------------------------------------------- #
# the real tree                                                               #
# --------------------------------------------------------------------------- #


class TestRealTree:
    def test_every_swept_field_classified(self):
        ka = analyze_kernel(SRC_REPRO)
        assert ka.report is not None
        assert ka.report["driver"] == "CMPSimulator.run"
        assert not ka.unknown_fields
        by_field = {f.key: f.classification for f in ka.fields}
        # PTB pledge/grant state must come out cross-core: it is exactly
        # the coupling the SoA kernel rewrite has to preserve.
        assert by_field["controller._grants"] == CROSS_CORE
        assert by_field["controller.balancer._pipe"] == CROSS_CORE
        assert by_field["controller.effective_budgets"] == CROSS_CORE

    def test_gate_clean_against_committed_baseline(self):
        assert KERNEL_BASELINE.exists()
        res = run_cli(
            "kernel", "src/repro", "--baseline", str(KERNEL_BASELINE)
        )
        assert res.returncode == 0, res.stdout + res.stderr

    def test_committed_baseline_is_justified(self):
        data = json.loads(KERNEL_BASELINE.read_text())
        for entry in data["findings"]:
            assert entry["justification"].strip(), entry["fingerprint"]
            assert "TODO" not in entry["justification"]


# --------------------------------------------------------------------------- #
# SARIF + prune-baseline                                                      #
# --------------------------------------------------------------------------- #


class TestSarif:
    def _check_doc(self, text, tool):
        doc = json.loads(text)
        assert doc["version"] == "2.1.0"
        assert "sarif" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == f"simcheck-{tool}"
        for res in run["results"]:
            assert res["ruleId"]
            assert res["locations"][0]["physicalLocation"]["region"][
                "startLine"] >= 1
            assert "simcheck/v1" in res["partialFingerprints"]
        return run["results"]

    def test_kernel_sarif(self, tmp_path):
        pkg = write_pkg(tmp_path, perf_pkg(PERF_CASES[0][1]))
        res = run_cli("kernel", str(pkg), "--format", "sarif")
        results = self._check_doc(res.stdout, "kernel")
        assert any(r["ruleId"] == "PERF001" for r in results)

    def test_lint_sarif(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n"
            "def roll():\n"
            "    return random.random()\n"
        )
        res = run_cli("lint", str(bad), "--format", "sarif")
        self._check_doc(res.stdout, "lint")


HAZARD_SIM = {
    "sim/cmp.py": (
        "from ..core import Core\n"
        "from ..power import PowerModel\n"
        "class Simulator:\n"
        "    def __init__(self, n: int):\n"
        "        self.cores = [Core() for _ in range(n)]\n"
        "        self.power = PowerModel(self.cores)\n"
        "        self.cycle = 0\n"
        "    def run(self, max_cycles: int):\n"
        "        self.cycle = 0\n"
        "        while self.cycle < max_cycles:\n"
        "            throttle = self.power.throttle\n"
        "            for core in self.cores:\n"
        "                core.step(throttle)\n"
        "            self.power.end_cycle()\n"
        "            self.cycle += 1\n"
    ),
    "core.py": (
        "class Core:\n"
        "    def __init__(self):\n"
        "        self.retired = 0\n"
        "    def step(self, throttle: bool):\n"
        "        if not throttle:\n"
        "            self.retired += 1\n"
    ),
    "power.py": (
        "class PowerModel:\n"
        "    def __init__(self, cores):\n"
        "        self.cores = cores\n"
        "        self.energy = 0.0\n"
        "        self.throttle = False\n"
        "    def end_cycle(self):\n"
        "        self.energy += 1.0\n"
        "        self.throttle = self.energy > 100.0\n"
    ),
}


class TestPruneBaseline:
    def test_prunes_stale_keeps_live(self, tmp_path):
        pkg = write_pkg(tmp_path, HAZARD_SIM)
        bl = tmp_path / "bl.json"
        wrote = run_cli(
            "flow", str(pkg), "--baseline", str(bl), "--write-baseline"
        )
        assert wrote.returncode == 0, wrote.stderr
        data = json.loads(bl.read_text())
        live = [e["fingerprint"] for e in data["findings"]]
        assert live
        data["findings"].append({
            "fingerprint": "FLOW001|gone.py|no.such.finding",
            "rule": "FLOW001",
            "example": "gone.py:1",
            "justification": "stale entry that must be pruned",
        })
        bl.write_text(json.dumps(data))

        pruned = run_cli(
            "flow", str(pkg), "--baseline", str(bl), "--prune-baseline"
        )
        assert pruned.returncode == 0, pruned.stdout + pruned.stderr
        after = json.loads(bl.read_text())
        kept = [e["fingerprint"] for e in after["findings"]]
        assert kept == live

    def test_kernel_prune(self, tmp_path):
        pkg = write_pkg(tmp_path, perf_pkg(PERF_CASES[0][1]))
        bl = tmp_path / "bl.json"
        run_cli("kernel", str(pkg), "--baseline", str(bl),
                "--write-baseline")
        data = json.loads(bl.read_text())
        n_live = len(data["findings"])
        data["findings"].append({
            "fingerprint": "PERF001|gone.py|Nope.never|list display:[x]",
            "rule": "PERF001",
            "example": "gone.py:1",
            "justification": "stale",
        })
        bl.write_text(json.dumps(data))
        res = run_cli("kernel", str(pkg), "--baseline", str(bl),
                      "--prune-baseline")
        assert res.returncode == 0, res.stdout + res.stderr
        assert len(json.loads(bl.read_text())["findings"]) == n_live
