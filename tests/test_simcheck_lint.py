"""simcheck lint rules: one positive, one negative and one
inline-disable case per rule, plus engine/CLI behaviour."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.simcheck import ConfigModel, iter_rules, lint_paths, lint_source

REPO = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO / "src" / "repro"


def rule_ids(findings):
    return [f.rule_id for f in findings]


def lint(source, path="core/mod.py", **kw):
    kw.setdefault("cycle_stepped", True)
    return lint_source(source, path, **kw)


# --------------------------------------------------------------------------- #
# SIM001 — wall clock / unseeded RNG in cycle-stepped code                    #
# --------------------------------------------------------------------------- #


class TestSIM001:
    POSITIVE = (
        "import random, time\n"
        "def step(now):\n"
        "    jitter = random.random()\n"
        "    t0 = time.perf_counter()\n"
    )

    def test_positive(self):
        ids = rule_ids(lint(self.POSITIVE, cycle_stepped=True))
        assert ids.count("SIM001") == 2

    def test_negative_seeded_and_scope(self):
        seeded = (
            "import random\n"
            "def make(cfg):\n"
            "    return random.Random(cfg_seed(cfg))\n"
            "def cfg_seed(cfg):\n"
            "    return 2011\n"
        )
        assert lint(seeded, cycle_stepped=True) == []
        # Same calls outside cycle-stepped code are fine.
        assert lint(self.POSITIVE, cycle_stepped=False) == []

    def test_inline_disable(self):
        src = (
            "import time\n"
            "def step(now):\n"
            "    t0 = time.perf_counter()  # simcheck: disable=SIM001\n"
        )
        assert lint(src, cycle_stepped=True) == []

    def test_numpy_global_rng(self):
        src = (
            "import numpy as np\n"
            "def step():\n"
            "    a = np.random.randint(4)\n"
            "    rng = np.random.default_rng()\n"
            "    ok = np.random.default_rng(2011)\n"
        )
        assert rule_ids(lint(src)).count("SIM001") == 2


# --------------------------------------------------------------------------- #
# SIM002 — set iteration order                                                #
# --------------------------------------------------------------------------- #


class TestSIM002:
    def test_positive_local_and_attr(self):
        src = (
            "def inval(entry, core):\n"
            "    others = (entry.sharers | {entry.owner}) - {core}\n"
            "    for other in others:\n"
            "        kill(other)\n"
        )
        assert rule_ids(lint(src)) == ["SIM002"]

    def test_positive_annotated_attribute(self):
        src = (
            "from typing import Set\n"
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Entry:\n"
            "    sharers: Set[int]\n"
            "def f(entry):\n"
            "    return [s + 1 for s in entry.sharers]\n"
        )
        assert rule_ids(lint(src)) == ["SIM002"]

    def test_negative_sorted(self):
        src = (
            "def inval(entry, core):\n"
            "    others = (entry.sharers | {entry.owner}) - {core}\n"
            "    for other in sorted(others):\n"
            "        kill(other)\n"
            "    for k in some_dict.values():\n"
            "        use(k)\n"
        )
        assert lint(src) == []

    def test_inline_disable(self):
        src = (
            "def f():\n"
            "    s = {1, 2}\n"
            "    for x in s:  # simcheck: disable=SIM002\n"
            "        pass\n"
        )
        assert lint(src) == []


# --------------------------------------------------------------------------- #
# SIM003 — mutable default arguments                                          #
# --------------------------------------------------------------------------- #


class TestSIM003:
    def test_positive(self):
        src = "def f(a, cache={}, items=[]):\n    return a\n"
        assert rule_ids(lint(src)) == ["SIM003", "SIM003"]

    def test_negative(self):
        src = (
            "def f(a, cache=None, n=3, name='x', pair=(1, 2)):\n"
            "    cache = {} if cache is None else cache\n"
            "    return a\n"
        )
        assert lint(src) == []

    def test_inline_disable(self):
        src = "def f(a, cache={}):  # simcheck: disable=SIM003\n    return a\n"
        assert lint(src) == []


# --------------------------------------------------------------------------- #
# SIM004 — bare except                                                        #
# --------------------------------------------------------------------------- #


class TestSIM004:
    def test_positive(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        pass\n"
        )
        assert rule_ids(lint(src)) == ["SIM004"]

    def test_negative(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert lint(src) == []

    def test_inline_disable(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except:  # simcheck: disable=SIM004\n"
            "        pass\n"
        )
        assert lint(src) == []


# --------------------------------------------------------------------------- #
# SIM005 — float-accumulated stat counters                                    #
# --------------------------------------------------------------------------- #


class TestSIM005:
    def test_positive(self):
        src = (
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self.hits = 0.0\n"
            "    def access(self):\n"
            "        self.misses += 0.5\n"
            "        self.stalls += x / y\n"
        )
        assert rule_ids(lint(src)) == ["SIM005", "SIM005", "SIM005"]

    def test_negative(self):
        src = (
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self.hits = 0\n"
            "        self.energy = 0.0\n"          # not a counter name
            "    def access(self):\n"
            "        self.hits += 1\n"
            "        self.energy += 0.25\n"
        )
        assert lint(src) == []

    def test_inline_disable(self):
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        self.hits += 0.5  # simcheck: disable=SIM005\n"
        )
        assert lint(src) == []


# --------------------------------------------------------------------------- #
# SIM006 — Config field reads must exist                                      #
# --------------------------------------------------------------------------- #

CFG_SRC = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class NetConfig:\n"
    "    link_latency: int = 4\n"
    "@dataclass\n"
    "class CMPConfig:\n"
    "    num_cores: int = 16\n"
    "    net: NetConfig = None\n"
    "    @property\n"
    "    def mesh_dims(self):\n"
    "        return (4, 4)\n"
)


class TestSIM006:
    @pytest.fixture()
    def model(self):
        return ConfigModel.from_source(CFG_SRC)

    def test_positive(self, model):
        src = (
            "def run(cfg: CMPConfig):\n"
            "    a = cfg.num_coresx\n"
            "    b = cfg.net.link_latencyz\n"
        )
        assert rule_ids(lint(src, config_model=model)) == ["SIM006", "SIM006"]

    def test_positive_self_attr(self, model):
        src = (
            "class Sim:\n"
            "    def __init__(self, cfg: CMPConfig):\n"
            "        self.cfg = cfg\n"
            "    def go(self):\n"
            "        return self.cfg.netz\n"
        )
        assert rule_ids(lint(src, config_model=model)) == ["SIM006"]

    def test_negative(self, model):
        src = (
            "def run(cfg: CMPConfig, other):\n"
            "    n = cfg.num_cores\n"
            "    lat = cfg.net.link_latency\n"
            "    dims = cfg.mesh_dims\n"
            "    alias = cfg.net\n"
            "    lat2 = alias.link_latency\n"
            "    unknown = other.whatever\n"       # unannotated: skipped
        )
        assert lint(src, config_model=model) == []

    def test_inline_disable(self, model):
        src = (
            "def run(cfg: CMPConfig):\n"
            "    return cfg.legacy_knob  # simcheck: disable=SIM006\n"
        )
        assert lint(src, config_model=model) == []

    def test_no_model_no_findings(self):
        src = "def run(cfg: CMPConfig):\n    return cfg.anything\n"
        assert lint(src, config_model=None) == []


# --------------------------------------------------------------------------- #
# Engine behaviour                                                            #
# --------------------------------------------------------------------------- #


class TestEngine:
    def test_registry_lists_builtin_rules(self):
        ids = [r.rule_id for r in iter_rules()]
        assert ids == sorted(ids)
        for expected in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005",
                         "SIM006"):
            assert expected in ids

    def test_enable_disable_selection(self):
        src = (
            "def f(a=[]):\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        pass\n"
        )
        assert rule_ids(lint(src, enable=["SIM003"])) == ["SIM003"]
        assert rule_ids(lint(src, disable=["SIM003"])) == ["SIM004"]

    def test_disable_all_marker(self):
        src = "def f(a=[]):  # simcheck: disable=all\n    return a\n"
        assert lint(src) == []

    def test_finding_render_format(self):
        src = "def f(a=[]):\n    return a\n"
        (finding,) = lint(src, path="pkg/mod.py")
        text = finding.render()
        assert text.startswith("pkg/mod.py:1:")
        assert "SIM003" in text

    def test_repo_tree_is_clean(self):
        """Acceptance: the shipped tree lints clean."""
        assert lint_paths([str(SRC_REPRO)]) == []

    def test_cli_exit_codes(self, tmp_path):
        bad = tmp_path / "core" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("def f(a=[]):\n    return a\n")
        env_cmd = [sys.executable, "-m", "repro.simcheck", "lint"]
        proc = subprocess.run(
            env_cmd + [str(bad)], capture_output=True, text=True,
            cwd=str(REPO), env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "SIM003" in proc.stdout
        proc = subprocess.run(
            env_cmd + [str(SRC_REPRO)], capture_output=True, text=True,
            cwd=str(REPO), env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
