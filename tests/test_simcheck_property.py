"""Property test: random small workloads run violation-free with every
sanitizer enabled, under each PTB distribution policy."""

from __future__ import annotations

from dataclasses import replace

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CMPConfig
from repro.sim.cmp import CMPSimulator

from .conftest import make_program

workloads = st.fixed_dictionaries(
    {
        "num_cores": st.sampled_from([2, 4]),
        "work": st.integers(min_value=100, max_value=900),
        "barriers": st.integers(min_value=1, max_value=3),
        "lock_ops": st.integers(min_value=0, max_value=3),
        "cs_len": st.integers(min_value=10, max_value=80),
        "policy": st.sampled_from(["toall", "toone", "dynamic"]),
    }
)


@given(w=workloads)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_workloads_are_sanitizer_clean(w):
    cfg = replace(CMPConfig(num_cores=w["num_cores"]), sanitize=True)
    prog = make_program(
        w["num_cores"],
        work=w["work"],
        barriers=w["barriers"],
        lock_ops=w["lock_ops"],
        cs_len=w["cs_len"],
    )
    sim = CMPSimulator(cfg, prog, technique="ptb", ptb_policy=w["policy"])
    # Any sanitizer violation raises out of run() and fails the example.
    result = sim.run(max_cycles=120_000)
    assert result.completed

    suite = sim.sanitizers
    assert suite.total_checks > 0
    # Token conservation held cumulatively, not just per cycle.
    assert suite.tokens.total_granted <= suite.tokens.total_pool
    # The directory is globally consistent at end of run.
    suite.coherence.check_all()
    # Everything injected into the mesh was eventually delivered.
    suite.noc.on_cycle(result.cycles + suite.noc.watchdog_limit(16))
    assert suite.noc.credits == suite.noc.credit_capacity
