"""simcheck purity pass: KEY/PURE rule fixtures, the KEY001 canary,
inline disables, the real-tree gate, CLI formats and the shared
baseline plumbing (including the lint subcommand's new flags)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.simcheck.purity import analyze_purity

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
SRC_REPRO = SRC / "repro"
PURITY_BASELINE = REPO / ".simcheck-purity-baseline.json"


def write_pkg(root: Path, files: dict) -> Path:
    """Materialise a fixture package under ``root / 'pkg'``."""
    pkg = root / "pkg"
    for rel, source in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    for sub in {p.parent for p in pkg.rglob("*.py")} | {pkg}:
        init = sub / "__init__.py"
        if not init.exists():
            init.write_text("")
    return pkg


def run_cli(*argv, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", "repro.simcheck", *argv],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )


def fingerprints(analysis):
    return {f.identity() for f in analysis.findings}


def rules(analysis):
    return {f.rule_id for f in analysis.findings}


# --------------------------------------------------------------------------- #
# fixtures                                                                    #
# --------------------------------------------------------------------------- #

CONFIG = (
    "from dataclasses import dataclass, field\n"
    "@dataclass(frozen=True)\n"
    "class PowerConfig:\n"
    "    budget: float = 1.0\n"
    "@dataclass(frozen=True)\n"
    "class SimConfig:\n"
    "    cores: int = 2\n"
    "    freq: float = 2.0\n"
    "    power: PowerConfig = field(default_factory=PowerConfig)\n"
)

ENGINE = (
    "from dataclasses import dataclass, field\n"
    "from typing import Dict\n"
    "@dataclass\n"
    "class Result:\n"
    "    cycles: int = 0\n"
    "    stats: Dict[str, float] = field(default_factory=dict)\n"
    "class Simulator:\n"
    "    def __init__(self, cfg):\n"
    "        self.cfg = cfg\n"
    "        self.cycles = 0\n"
    "    def run(self, max_cycles, seed):\n"
    "        self.cycles = max_cycles\n"
    "        return Result(cycles=self.cycles, stats={})\n"
)

RUNNER_HEAD = (
    "import hashlib\n"
    "from typing import NamedTuple, Optional\n"
    "from .config import SimConfig\n"
    "from .engine import Result, Simulator\n"
    "class Recipe(NamedTuple):\n"
    "    benchmark: str\n"
    "    cores: int\n"
    "    policy: str\n"
    "CACHE_VERSION = 3\n"
    "def _resolved_config(recipe):\n"
    "    return SimConfig(cores=recipe.cores)\n"
    "def config_digest(cfg):\n"
    "    return hashlib.sha256(repr(cfg).encode()).hexdigest()[:16]\n"
    "def _simulate(recipe, max_cycles, seed) -> Result:\n"
    "    cfg = _resolved_config(recipe)\n"
    "    sim = Simulator(cfg)\n"
    "    return sim.run(max_cycles, seed)\n"
    "def _worker(spec):\n"
    "    recipe, max_cycles, seed = spec\n"
    "    return _simulate(recipe, max_cycles, seed)\n"
)

GOOD_KEY = (
    "def _cache_key(recipe, max_cycles, seed):\n"
    "    return (CACHE_VERSION, recipe.benchmark, recipe.cores,\n"
    "            recipe.policy, max_cycles, seed,\n"
    "            config_digest(_resolved_config(recipe)))\n"
)

# The canary: recipe.policy and the config digest are deliberately
# missing from the key, so freq/power drift and policy changes alias.
CANARY_KEY = (
    "def _cache_key(recipe, max_cycles, seed):\n"
    "    return (CACHE_VERSION, recipe.benchmark, recipe.cores,\n"
    "            max_cycles, seed)\n"
)


def sound_pkg(tmp_path, runner_extra="", engine=ENGINE, key=GOOD_KEY):
    return write_pkg(tmp_path, {
        "config.py": CONFIG,
        "engine.py": engine,
        "runner.py": RUNNER_HEAD + key + runner_extra,
    })


# --------------------------------------------------------------------------- #
# discovery + KEY001                                                          #
# --------------------------------------------------------------------------- #


class TestDiscovery:
    def test_sound_fixture_is_clean(self, tmp_path):
        analysis = analyze_purity(sound_pkg(tmp_path))
        assert analysis.model is not None
        assert analysis.findings == []

    def test_model_identifies_the_cast(self, tmp_path):
        analysis = analyze_purity(sound_pkg(tmp_path))
        cache = analysis.report["cache"]
        assert cache["key_fn"] == "_cache_key"
        assert cache["recipe_class"] == "Recipe"
        assert cache["config_class"] == "SimConfig"
        assert cache["result_class"] == "Result"
        assert cache["workers"] == ["_worker", "_simulate"]

    def test_no_cache_module_reports_nothing_to_analyze(self, tmp_path):
        pkg = write_pkg(tmp_path, {"util.py": "def helper():\n    return 1\n"})
        analysis = analyze_purity(pkg)
        assert analysis.model is None
        assert any("no cache-key builder" in n for n in analysis.notes)


class TestKey001:
    def test_canary_missing_recipe_field_is_flagged(self, tmp_path):
        analysis = analyze_purity(sound_pkg(tmp_path, key=CANARY_KEY))
        assert "KEY001|recipe:policy" in fingerprints(analysis)

    def test_canary_missing_config_digest_is_flagged(self, tmp_path):
        analysis = analyze_purity(sound_pkg(tmp_path, key=CANARY_KEY))
        fps = fingerprints(analysis)
        # cores is covered via SimConfig(cores=recipe.cores); freq and
        # power.budget have no path into the key.
        assert "KEY001|config:freq" in fps
        assert "KEY001|config:power" in fps
        assert "KEY001|config:cores" not in fps

    def test_simulate_param_missing_from_key(self, tmp_path):
        key = (
            "def _cache_key(recipe, max_cycles):\n"
            "    return (CACHE_VERSION, recipe.benchmark, recipe.cores,\n"
            "            recipe.policy, max_cycles,\n"
            "            config_digest(_resolved_config(recipe)))\n"
        )
        analysis = analyze_purity(sound_pkg(tmp_path, key=key))
        assert "KEY001|param:seed" in fingerprints(analysis)

    def test_key_param_accepted_but_unused(self, tmp_path):
        key = (
            "def _cache_key(recipe, max_cycles, seed):\n"
            "    return (CACHE_VERSION, recipe.benchmark, recipe.cores,\n"
            "            recipe.policy, max_cycles,\n"
            "            config_digest(_resolved_config(recipe)))\n"
        )
        analysis = analyze_purity(sound_pkg(tmp_path, key=key))
        assert "KEY001|param:seed" in fingerprints(analysis)

    def test_whole_recipe_spread_covers_all_fields(self, tmp_path):
        key = (
            "def _cache_key(recipe, max_cycles, seed):\n"
            "    return (CACHE_VERSION, *recipe, max_cycles, seed,\n"
            "            config_digest(_resolved_config(recipe)))\n"
        )
        analysis = analyze_purity(sound_pkg(tmp_path, key=key))
        assert not {f for f in fingerprints(analysis)
                    if f.startswith("KEY001|recipe:")}


class TestKey002:
    def test_frozenset_component_is_flagged(self, tmp_path):
        key = (
            "def _cache_key(recipe, max_cycles, seed):\n"
            "    return (CACHE_VERSION, frozenset([recipe.benchmark,\n"
            "            recipe.policy]), recipe.cores, max_cycles, seed,\n"
            "            config_digest(_resolved_config(recipe)))\n"
        )
        analysis = analyze_purity(sound_pkg(tmp_path, key=key))
        assert "KEY002" in rules(analysis)

    def test_hash_component_is_flagged(self, tmp_path):
        key = (
            "def _cache_key(recipe, max_cycles, seed):\n"
            "    return (CACHE_VERSION, hash(recipe), max_cycles, seed,\n"
            "            config_digest(_resolved_config(recipe)))\n"
        )
        analysis = analyze_purity(sound_pkg(tmp_path, key=key))
        fps = fingerprints(analysis)
        assert "KEY002|_cache_key|hash" in fps

    def test_dataclass_repr_is_stable_no_finding(self, tmp_path):
        # A raw dataclass in the key tuple is repr()'d by the entry
        # hash; dataclass reprs are canonical, so no KEY002.
        key = (
            "def _cache_key(recipe, max_cycles, seed):\n"
            "    return (CACHE_VERSION, *recipe, max_cycles, seed,\n"
            "            _resolved_config(recipe))\n"
        )
        analysis = analyze_purity(sound_pkg(tmp_path, key=key))
        assert "KEY002" not in rules(analysis)


# --------------------------------------------------------------------------- #
# PURE001/PURE002 (worker reachability)                                       #
# --------------------------------------------------------------------------- #


class TestPure001:
    def test_global_container_mutation_in_engine(self, tmp_path):
        engine = ENGINE.replace(
            "        self.cycles = max_cycles\n",
            "        self.cycles = max_cycles\n"
            "        _SEEN.append(max_cycles)\n",
        ) + "_SEEN = []\n"
        analysis = analyze_purity(sound_pkg(tmp_path, engine=engine))
        fps = fingerprints(analysis)
        assert "PURE001|mutate:engine._SEEN|Simulator.run" in fps

    def test_global_rebind_is_flagged(self, tmp_path):
        extra = (
            "_LAST = None\n"
            "def _remember(result):\n"
            "    global _LAST\n"
            "    _LAST = result\n"
        )
        # Reached only when called from a worker-reachable function.
        runner = RUNNER_HEAD.replace(
            "    return _simulate(recipe, max_cycles, seed)\n",
            "    out = _simulate(recipe, max_cycles, seed)\n"
            "    _remember(out)\n"
            "    return out\n",
        )
        pkg = write_pkg(tmp_path, {
            "config.py": CONFIG,
            "engine.py": ENGINE,
            "runner.py": runner + GOOD_KEY + extra,
        })
        analysis = analyze_purity(pkg)
        assert "PURE001|rebind:runner._LAST|runner._remember" in \
            fingerprints(analysis)

    def test_unreachable_mutation_is_not_flagged(self, tmp_path):
        # The same mutation in a function nothing worker-reachable calls.
        extra = (
            "_SEEN = []\n"
            "def report_cli():\n"
            "    _SEEN.append(1)\n"
        )
        analysis = analyze_purity(sound_pkg(tmp_path, runner_extra=extra))
        assert "PURE001" not in rules(analysis)


class TestPure002:
    def test_env_read_through_constructor_and_method(self, tmp_path):
        # os.environ.get inside Simulator.run: only reachable because
        # the walker follows the Simulator(cfg) constructor.
        engine = ENGINE.replace(
            "        self.cycles = max_cycles\n",
            "        import os\n"
            "        if os.environ.get('PKG_DEBUG'):\n"
            "            max_cycles = 1\n"
            "        self.cycles = max_cycles\n",
        )
        analysis = analyze_purity(sound_pkg(tmp_path, engine=engine))
        assert "PURE002|env:PKG_DEBUG|Simulator.run" in fingerprints(analysis)

    def test_wall_clock_read_is_flagged(self, tmp_path):
        engine = ENGINE.replace(
            "        self.cycles = max_cycles\n",
            "        import time\n"
            "        self.started = time.time()\n"
            "        self.cycles = max_cycles\n",
        )
        analysis = analyze_purity(sound_pkg(tmp_path, engine=engine))
        assert "PURE002|clock:time.time|Simulator.run" in \
            fingerprints(analysis)

    def test_unseeded_random_is_flagged(self, tmp_path):
        engine = ENGINE.replace(
            "        self.cycles = max_cycles\n",
            "        import random\n"
            "        self.jitter = random.random()\n"
            "        self.cycles = max_cycles\n",
        )
        analysis = analyze_purity(sound_pkg(tmp_path, engine=engine))
        assert "PURE002|random:random.random|Simulator.run" in \
            fingerprints(analysis)

    def test_inline_disable_suppresses(self, tmp_path):
        engine = ENGINE.replace(
            "        self.cycles = max_cycles\n",
            "        import time\n"
            "        self.started = time.time()"
            "  # simcheck: disable=PURE002\n"
            "        self.cycles = max_cycles\n",
        )
        analysis = analyze_purity(sound_pkg(tmp_path, engine=engine))
        assert "PURE002" not in rules(analysis)


class TestMutatedGlobalRead:
    def test_read_of_runtime_mutated_global_is_key001(self, tmp_path):
        # _TUNING is mutated by (unreachable) CLI code and read on the
        # worker path: its value is worker-history state outside the key.
        extra = (
            "_TUNING = {}\n"
            "def set_tuning(k, v):\n"
            "    _TUNING[k] = v\n"
        )
        engine = ENGINE.replace(
            "        self.cycles = max_cycles\n",
            "        from .runner import _TUNING\n"
            "        self.cycles = max_cycles + len(_TUNING)\n",
        )
        runner = RUNNER_HEAD.replace(
            "    return _simulate(recipe, max_cycles, seed)\n",
            "    scale = _TUNING.get('scale', 1)\n"
            "    return _simulate(recipe, max_cycles * scale, seed)\n",
        )
        pkg = write_pkg(tmp_path, {
            "config.py": CONFIG,
            "engine.py": engine,
            "runner.py": runner + GOOD_KEY + extra,
        })
        analysis = analyze_purity(pkg)
        assert "KEY001|global:runner._TUNING|runner._worker" in \
            fingerprints(analysis)


# --------------------------------------------------------------------------- #
# PURE003 (payload stability)                                                 #
# --------------------------------------------------------------------------- #


class TestPure003:
    def test_set_field_in_result_is_flagged(self, tmp_path):
        engine = ENGINE.replace(
            "    stats: Dict[str, float] = field(default_factory=dict)\n",
            "    stats: Dict[str, float] = field(default_factory=dict)\n"
            "    visited: set = field(default_factory=set)\n",
        )
        analysis = analyze_purity(sound_pkg(tmp_path, engine=engine))
        assert "PURE003|Result.visited" in fingerprints(analysis)

    def test_nested_frozenset_in_typing_container(self, tmp_path):
        engine = ENGINE.replace(
            "from typing import Dict\n",
            "from typing import Dict, FrozenSet\n",
        ).replace(
            "    stats: Dict[str, float] = field(default_factory=dict)\n",
            "    stats: Dict[str, float] = field(default_factory=dict)\n"
            "    tags: Dict[str, FrozenSet[int]] = "
            "field(default_factory=dict)\n",
        )
        analysis = analyze_purity(sound_pkg(tmp_path, engine=engine))
        assert "PURE003|Result.tags" in fingerprints(analysis)

    def test_dict_and_list_fields_are_fine(self, tmp_path):
        analysis = analyze_purity(sound_pkg(tmp_path))
        assert "PURE003" not in rules(analysis)


# --------------------------------------------------------------------------- #
# the real tree                                                               #
# --------------------------------------------------------------------------- #


class TestRealTree:
    def test_runner_cache_is_discovered(self):
        analysis = analyze_purity(SRC_REPRO)
        cache = analysis.report["cache"]
        assert cache["module"] == "analysis/runner.py"
        assert cache["recipe_class"] == "Recipe"
        assert cache["config_class"] == "CMPConfig"
        assert cache["result_class"] == "SimResult"

    def test_key_covers_every_input(self):
        cov = analyze_purity(SRC_REPRO).report["key_coverage"]
        assert cov["recipe"]["missing"] == []
        assert cov["params"]["missing"] == []
        assert cov["config"]["missing"] == []
        assert cov["config"]["digest"] is True

    def test_every_finding_is_baselined_with_justification(self):
        analysis = analyze_purity(SRC_REPRO)
        baseline = json.loads(PURITY_BASELINE.read_text())
        justified = {
            e["fingerprint"]: e["justification"]
            for e in baseline["findings"]
        }
        for finding in analysis.findings:
            assert finding.identity() in justified, (
                f"unbaselined purity finding: {finding.render()}"
            )
        for fp, justification in justified.items():
            assert justification and "TODO" not in justification, (
                f"baseline entry {fp} lacks a real justification"
            )

    def test_no_stale_baseline_entries(self):
        analysis = analyze_purity(SRC_REPRO)
        fired = fingerprints(analysis)
        baseline = json.loads(PURITY_BASELINE.read_text())
        for entry in baseline["findings"]:
            assert entry["fingerprint"] in fired, (
                f"stale baseline entry: {entry['fingerprint']}"
            )

    def test_no_key001_on_real_tree(self):
        analysis = analyze_purity(SRC_REPRO)
        assert not [f for f in analysis.findings if f.rule_id == "KEY001"]


# --------------------------------------------------------------------------- #
# CLI                                                                         #
# --------------------------------------------------------------------------- #


class TestCli:
    def test_gate_passes_with_baseline(self):
        proc = run_cli(
            "purity", "src/repro",
            "--baseline", ".simcheck-purity-baseline.json",
        )
        assert proc.returncode == 0, proc.stderr

    def test_gate_fails_without_baseline(self):
        proc = run_cli("purity", "src/repro")
        assert proc.returncode == 1
        assert "PURE002" in proc.stdout

    def test_json_format(self, tmp_path):
        pkg = sound_pkg(tmp_path, key=CANARY_KEY)
        proc = run_cli("purity", str(pkg), cwd=tmp_path)
        assert proc.returncode == 1
        proc = run_cli("purity", str(pkg), "--format", "json", cwd=tmp_path)
        doc = json.loads(proc.stdout)
        assert doc["tool"] == "purity"
        assert any(f["rule"] == "KEY001" for f in doc["findings"])

    def test_sarif_format(self, tmp_path):
        pkg = sound_pkg(tmp_path, key=CANARY_KEY)
        proc = run_cli("purity", str(pkg), "--format", "sarif", cwd=tmp_path)
        doc = json.loads(proc.stdout)
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "simcheck-purity"
        assert run["results"]

    def test_table_format_renders_coverage(self, tmp_path):
        pkg = sound_pkg(tmp_path)
        proc = run_cli("purity", str(pkg), "--format", "table", cwd=tmp_path)
        assert proc.returncode == 0
        assert "key coverage" in proc.stdout
        assert "worker purity" in proc.stdout

    def test_report_file(self, tmp_path):
        pkg = sound_pkg(tmp_path)
        out = tmp_path / "purity-report.json"
        proc = run_cli(
            "purity", str(pkg), "--report", str(out), cwd=tmp_path
        )
        assert proc.returncode == 0
        doc = json.loads(out.read_text())
        assert doc["key_coverage"]["config"]["digest"] is True

    def test_write_then_gate_then_prune(self, tmp_path):
        pkg = sound_pkg(tmp_path, key=CANARY_KEY)
        baseline = tmp_path / "baseline.json"
        proc = run_cli(
            "purity", str(pkg), "--baseline", str(baseline),
            "--write-baseline", cwd=tmp_path,
        )
        assert proc.returncode == 0
        assert baseline.exists()
        proc = run_cli(
            "purity", str(pkg), "--baseline", str(baseline), cwd=tmp_path
        )
        assert proc.returncode == 0  # everything baselined
        # Fix the key: baselined KEY001 entries go stale, prune removes.
        (pkg / "runner.py").write_text(RUNNER_HEAD + GOOD_KEY)
        proc = run_cli(
            "purity", str(pkg), "--baseline", str(baseline),
            "--prune-baseline", cwd=tmp_path,
        )
        assert proc.returncode == 0
        assert json.loads(baseline.read_text())["findings"] == []

    def test_nothing_to_analyze_exits_2(self, tmp_path):
        pkg = write_pkg(tmp_path, {"util.py": "def f():\n    return 1\n"})
        proc = run_cli("purity", str(pkg), cwd=tmp_path)
        assert proc.returncode == 2
        assert "nothing to analyze" in proc.stderr


class TestLintBaselineFlags:
    """Satellite: lint gained the shared baseline surface."""

    SRC_BAD = "import time\n\ndef f():\n    return time.time()\n"

    def test_lint_write_and_gate(self, tmp_path):
        mod = tmp_path / "core" / "mod.py"
        mod.parent.mkdir()
        mod.write_text(self.SRC_BAD)
        baseline = tmp_path / "lint-baseline.json"
        proc = run_cli("lint", str(tmp_path), cwd=tmp_path)
        assert proc.returncode == 1
        proc = run_cli(
            "lint", str(tmp_path), "--baseline", str(baseline),
            "--write-baseline", cwd=tmp_path,
        )
        assert proc.returncode == 0
        proc = run_cli(
            "lint", str(tmp_path), "--baseline", str(baseline), cwd=tmp_path
        )
        assert proc.returncode == 0

    def test_lint_prune_baseline(self, tmp_path):
        mod = tmp_path / "core" / "mod.py"
        mod.parent.mkdir()
        mod.write_text(self.SRC_BAD)
        baseline = tmp_path / "lint-baseline.json"
        run_cli(
            "lint", str(tmp_path), "--baseline", str(baseline),
            "--write-baseline", cwd=tmp_path,
        )
        mod.write_text("def f():\n    return 0\n")
        proc = run_cli(
            "lint", str(tmp_path), "--baseline", str(baseline),
            "--prune-baseline", cwd=tmp_path,
        )
        assert proc.returncode == 0
        assert json.loads(baseline.read_text())["findings"] == []

    def test_prune_requires_baseline_flag(self):
        proc = run_cli("lint", "src/repro", "--prune-baseline")
        assert proc.returncode == 2
        assert "--baseline" in proc.stderr
