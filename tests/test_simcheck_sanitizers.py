"""Runtime sanitizers: each one fires on an injected violation and
stays silent across a clean 2-core smoke simulation."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import CMPConfig, NetworkConfig
from repro.budget.ptb import PTBLoadBalancer
from repro.mem.coherence import Directory, State
from repro.noc.mesh import Mesh2D
from repro.sim.cmp import CMPSimulator
from repro.simcheck import (
    CoherenceSanitizer,
    NoCProgressSanitizer,
    PipelineSanitizer,
    SanitizerViolation,
    TokenSanitizer,
    sanitize_enabled,
)

from .conftest import make_program


def violation(excinfo, name):
    v = excinfo.value
    assert v.sanitizer == name
    return v


# --------------------------------------------------------------------------- #
# TokenSanitizer                                                              #
# --------------------------------------------------------------------------- #


class TestTokenSanitizer:
    def test_minted_tokens_fire(self):
        ts = TokenSanitizer()
        ts.now = 42
        with pytest.raises(SanitizerViolation) as ei:
            ts.check_distribution(10, [6, 6])
        v = violation(ei, "TokenSanitizer")
        assert v.cycle == 42
        assert "minted" in str(v)

    def test_negative_grant_fires(self):
        ts = TokenSanitizer()
        with pytest.raises(SanitizerViolation) as ei:
            ts.check_distribution(10, [12, -2])
        assert violation(ei, "TokenSanitizer").core == 1

    def test_conserving_distribution_passes(self):
        ts = TokenSanitizer()
        ts.check_distribution(10, [4, 6])
        ts.check_distribution(10, [0, 3])
        assert ts.checks == 2
        assert ts.total_granted <= ts.total_pool

    def test_report_invariants_fire(self):
        ts = TokenSanitizer()
        budget, gbudget = 10.0, 20.0
        with pytest.raises(SanitizerViolation):  # negative spare
            ts.check_reports([1, 1], [-1, 0], [0, 0], budget, gbudget)
        with pytest.raises(SanitizerViolation):  # donor and requester at once
            ts.check_reports([1, 1], [2, 0], [3, 0], budget, gbudget)
        with pytest.raises(SanitizerViolation):  # spent+spare > allotment
            ts.check_reports([8, 1], [5, 0], [0, 0], budget, gbudget)
        with pytest.raises(SanitizerViolation):  # sum(spares) > global budget
            ts.check_reports([0, 0], [15, 15], [0, 0], budget, gbudget)
        ts.check_reports([8, 2], [2, 8], [0, 0], budget, gbudget)  # clean

    def test_fires_through_balancer_hook(self):
        """A buggy balancer that mints tokens is caught by the hook in
        :meth:`PTBLoadBalancer.cycle` itself."""

        class MintingBalancer(PTBLoadBalancer):
            def distribute(self, pool, overs, policy, priority=None):
                return [pool + 1] + [0] * (len(overs) - 1)

        bal = MintingBalancer(2, latency=0)
        bal._sanitizer = TokenSanitizer()
        with pytest.raises(SanitizerViolation):
            bal.cycle([3, 0], [0, 2], "toall")

    def test_honest_balancer_through_hook(self):
        bal = PTBLoadBalancer(2, latency=1)
        ts = TokenSanitizer()
        bal._sanitizer = ts
        for _ in range(6):
            bal.cycle([4, 0], [0, 3], "toone")
        assert ts.checks > 0
        assert ts.total_granted <= ts.total_pool


# --------------------------------------------------------------------------- #
# CoherenceSanitizer                                                          #
# --------------------------------------------------------------------------- #


def make_directory(num_cores=2):
    mesh = Mesh2D(num_cores, NetworkConfig())
    return Directory(num_cores, mesh, memory_latency=100)


class TestCoherenceSanitizer:
    def test_forged_second_modified_copy_fires(self):
        d = make_directory()
        line = 0x40
        d.write_miss(0, line)  # core 0 now holds M
        san = CoherenceSanitizer(d)
        san.check_line(0, line)  # legal state passes
        d._core_state[1][line] = State.M  # forge a second M copy
        with pytest.raises(SanitizerViolation) as ei:
            san.check_line(0, line)
        assert "M/O/E" in str(violation(ei, "CoherenceSanitizer"))

    def test_forged_orphan_sharer_fires(self):
        d = make_directory()
        line = 0x80
        d.read_miss(0, line)
        d.read_miss(1, line)
        san = CoherenceSanitizer(d)
        san.check_line(1, line)
        del d._core_state[1][line]  # cached copy vanishes, directory stale
        with pytest.raises(SanitizerViolation) as ei:
            san.check_line(0, line)
        assert "no cached copy" in str(ei.value)

    def test_forged_dirty_without_owner_fires(self):
        d = make_directory()
        line = 0xC0
        d.read_miss(0, line)
        entry = d._entries[line]
        entry.dirty = True  # dirty data with no M/O owner anywhere
        san = CoherenceSanitizer(d)
        with pytest.raises(SanitizerViolation) as ei:
            san.check_line(0, line)
        assert "dirty" in str(ei.value)

    def test_protocol_traffic_stays_clean(self):
        d = make_directory(4)
        san = CoherenceSanitizer(d)
        lines = [0x40 * i for i in range(1, 9)]
        for line in lines:
            d.read_miss(0, line)
            d.read_miss(1, line)
            d.write_miss(2, line)
            d.read_miss(3, line)
        d.evict(3, lines[0])
        d.write_miss(1, lines[1])
        san.check_all()
        assert san.checks >= len(lines)


# --------------------------------------------------------------------------- #
# NoCProgressSanitizer                                                        #
# --------------------------------------------------------------------------- #


class TestNoCProgressSanitizer:
    def make(self, nodes=4):
        return NoCProgressSanitizer(nodes, NetworkConfig())

    def test_stuck_message_fires_watchdog(self):
        san = self.make()
        san.on_inject(hops=2, flits=16, deliver_override=10**9)
        limit = san.watchdog_limit(16)
        san.on_cycle(limit)  # at the limit: still tolerated
        with pytest.raises(SanitizerViolation) as ei:
            san.on_cycle(limit + 1)
        assert "deadlock" in str(violation(ei, "NoCProgressSanitizer"))

    def test_credit_exhaustion_fires(self):
        san = self.make()
        with pytest.raises(SanitizerViolation) as ei:
            san.on_inject(hops=1, flits=san.credit_capacity + 1)
        assert "credits" in str(ei.value)

    def test_delivered_messages_restore_credits(self):
        san = self.make()
        for _ in range(10):
            san.on_inject(hops=3, flits=16)
        assert san.credits == san.credit_capacity - 160
        san.on_cycle(san.expected_latency(3, 16))
        assert san.credits == san.credit_capacity
        assert san.delivered == 10
        # Much later, nothing in flight: no bark.
        san.on_cycle(10**6)

    def test_mesh_hook_records_inflight(self):
        mesh = Mesh2D(4, NetworkConfig())
        san = self.make()
        mesh._sanitizer = san
        mesh.record_message(hops=2, payload_bytes=64)
        assert san.checks == 1
        assert san.credits < san.credit_capacity


# --------------------------------------------------------------------------- #
# PipelineSanitizer                                                           #
# --------------------------------------------------------------------------- #


class TestPipelineSanitizer:
    def test_commit_before_complete_fires(self):
        san = PipelineSanitizer()
        with pytest.raises(SanitizerViolation) as ei:
            san.on_commit(core_id=0, dispatch_cycle=5, complete_cycle=20, now=10)
        assert violation(ei, "PipelineSanitizer").core == 0

    def test_out_of_program_order_commit_fires(self):
        san = PipelineSanitizer()
        san.on_commit(0, dispatch_cycle=8, complete_cycle=9, now=10)
        with pytest.raises(SanitizerViolation) as ei:
            san.on_commit(0, dispatch_cycle=5, complete_cycle=9, now=11)
        assert "program order" in str(ei.value)
        # Independent cores do not interfere.
        san.on_commit(1, dispatch_cycle=1, complete_cycle=2, now=12)

    def test_rob_overflow_fires(self):
        san = PipelineSanitizer()
        with pytest.raises(SanitizerViolation) as ei:
            san.check_rob(0, now=3, occupancy=129, capacity=128,
                          dispatch_cycles=[])
        assert "occupancy" in str(ei.value)

    def test_rob_window_disorder_fires(self):
        san = PipelineSanitizer()
        san.check_rob(0, now=3, occupancy=3, capacity=128,
                      dispatch_cycles=[1, 2, 3])
        with pytest.raises(SanitizerViolation):
            san.check_rob(0, now=3, occupancy=3, capacity=128,
                          dispatch_cycles=[1, 3, 2])


# --------------------------------------------------------------------------- #
# Enablement and clean end-to-end smoke                                       #
# --------------------------------------------------------------------------- #


class TestEnablement:
    def test_config_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled(CMPConfig(num_cores=2))
        assert sanitize_enabled(replace(CMPConfig(num_cores=2), sanitize=True))

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled(None)
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled(None)

    def test_off_by_default_no_suite(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        sim = CMPSimulator(CMPConfig(num_cores=2), make_program(2, work=200,
                                                                barriers=1))
        assert sim.sanitizers is None
        assert sim.mesh._sanitizer is None


class TestCleanSmoke:
    @pytest.mark.parametrize("policy", ["toall", "toone"])
    def test_two_core_ptb_smoke_is_violation_free(self, policy):
        cfg = replace(CMPConfig(num_cores=2), sanitize=True)
        prog = make_program(2, work=600, barriers=2, lock_ops=2, cs_len=40)
        sim = CMPSimulator(cfg, prog, technique="ptb", ptb_policy=policy)
        result = sim.run(max_cycles=60_000)
        assert result.completed
        suite = sim.sanitizers
        assert suite is not None
        # Every sanitizer actually exercised its checks.
        for s in suite.all:
            assert s.checks > 0, s.name
        assert suite.tokens.total_granted <= suite.tokens.total_pool
        assert suite.noc.delivered > 0
        suite.coherence.check_all()

    def test_uncontrolled_smoke_is_violation_free(self):
        cfg = replace(CMPConfig(num_cores=2), sanitize=True)
        sim = CMPSimulator(cfg, make_program(2, work=400, barriers=1),
                           technique="none")
        result = sim.run(max_cycles=60_000)
        assert result.completed
        assert sim.sanitizers.pipeline.checks > 0
