"""simcheck schedule pass: stage extraction on fixtures, SCHED rule
seeding, dtype-inference edge cases, real-tree contract, determinism,
runtime validation and the CLI surface (including ``simcheck all``)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.simcheck.schedule import (
    PARALLEL,
    SERIAL,
    ScheduleValidator,
    analyze_schedule,
    render_json,
)
from repro.simcheck.schedule.phases import _tarjan

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
SRC_REPRO = SRC / "repro"


def write_pkg(root: Path, files: dict) -> Path:
    """Materialise a fixture package under ``root / 'pkg'``."""
    pkg = root / "pkg"
    for rel, source in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    for sub in {p.parent for p in pkg.rglob("*.py")} | {pkg}:
        init = sub / "__init__.py"
        if not init.exists():
            init.write_text("")
    return pkg


def run_cli(*argv, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", "repro.simcheck", *argv],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )


# --------------------------------------------------------------------------- #
# fixtures                                                                    #
# --------------------------------------------------------------------------- #

# Clean two-stage schedule: a per-core sweep phase (every write is to
# per-core state) followed by a serialized global accumulation, plus the
# dtype-inference edge cases from the issue: a bool spin flag, an
# enum-like int field, an IntEnum-assigned field, a float energy
# accumulator, and a CMPConfig-bounded ROB occupancy counter.
CLEAN_PKG = {
    "config.py": (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class CMPConfig:\n"
        "    num_cores: int = 2\n"
        "    rob_entries: int = 128\n"
    ),
    "phases.py": (
        "from enum import IntEnum\n"
        "class Phase(IntEnum):\n"
        "    BUSY = 0\n"
        "    LOCK = 1\n"
        "    BARRIER = 2\n"
    ),
    "core.py": (
        "from .phases import Phase\n"
        "class Core:\n"
        "    def __init__(self, cfg):\n"
        "        self.cfg = cfg\n"
        "        self.spinning = False\n"
        "        self.state = 0\n"
        "        self.phase = Phase.BUSY\n"
        "        self.rob_occ = 0\n"
        "        self.energy = 0.0\n"
        "    def step(self, now):\n"
        "        self.spinning = self.state > 1\n"
        "        if self.state == 0:\n"
        "            self.state = 1\n"
        "        elif self.rob_occ < self.cfg.rob_entries:\n"
        "            self.state = 2\n"
        "            self.rob_occ += 1\n"
        "        self.phase = Phase.LOCK if self.spinning else Phase.BUSY\n"
        "        self.energy += now * 0.25\n"
    ),
    "power.py": (
        "class PowerModel:\n"
        "    def __init__(self):\n"
        "        self.total = 0.0\n"
        "    def end_cycle(self, now):\n"
        "        self.total += now * 1.0\n"
    ),
    "sim/cmp.py": (
        "from ..config import CMPConfig\n"
        "from ..core import Core\n"
        "from ..power import PowerModel\n"
        "class Simulator:\n"
        "    def __init__(self, cfg: CMPConfig):\n"
        "        self.cfg = cfg\n"
        "        self.cores = [Core(cfg) for _ in range(cfg.num_cores)]\n"
        "        self.power = PowerModel()\n"
        "        self.cycle = 0\n"
        "    def run(self, max_cycles: int):\n"
        "        self.cycle = 0\n"
        "        while self.cycle < max_cycles:\n"
        "            for core in self.cores:\n"
        "                core.step(self.cycle)\n"
        "            self.power.end_cycle(self.cycle)\n"
        "            self.cycle += 1\n"
    ),
}

# Deliberately reordered/unanchored phases: Stats.stamp is written by
# two component phases with no dependence path between them, so the
# schedule cannot sequence the updates -> SCHED002.
UNORDERED_PKG = {
    "core.py": (
        "class Core:\n"
        "    def __init__(self, cid):\n"
        "        self.cid = cid\n"
        "        self.retired = 0\n"
        "    def step(self, now):\n"
        "        self.retired += 1\n"
    ),
    "stats.py": (
        "class Stats:\n"
        "    def __init__(self):\n"
        "        self.stamp = 0\n"
        "    def mark_begin(self, now):\n"
        "        self.stamp = now\n"
        "    def mark_end(self, now):\n"
        "        self.stamp = now + 1\n"
    ),
    "sim/cmp.py": (
        "from ..core import Core\n"
        "from ..stats import Stats\n"
        "class Simulator:\n"
        "    def __init__(self, n):\n"
        "        self.cores = [Core(i) for i in range(n)]\n"
        "        self.stats = Stats()\n"
        "        self.cycle = 0\n"
        "    def run(self, max_cycles):\n"
        "        self.cycle = 0\n"
        "        while self.cycle < max_cycles:\n"
        "            for core in self.cores:\n"
        "                core.step(self.cycle)\n"
        "            self.stats.mark_begin(self.cycle)\n"
        "            self.stats.mark_end(self.cycle)\n"
        "            self.cycle += 1\n"
    ),
}

# Skewed core index inside the sweep: `poked` is classified per-core by
# the coupling taxonomy (every write is to a replicated instance inside
# the sweep) but the write goes to a *neighbour*, contradicting the
# per-core claim -> SCHED003.
SKEWED_PKG = {
    "core.py": (
        "class Core:\n"
        "    def __init__(self, cid):\n"
        "        self.cid = cid\n"
        "        self.retired = 0\n"
        "        self.poked = 0\n"
        "    def step(self, now):\n"
        "        self.retired += 1\n"
    ),
    "sim/cmp.py": (
        "from ..core import Core\n"
        "class Simulator:\n"
        "    def __init__(self, n):\n"
        "        self.cores = [Core(i) for i in range(n)]\n"
        "        self.cycle = 0\n"
        "    def run(self, max_cycles):\n"
        "        self.cycle = 0\n"
        "        n = len(self.cores)\n"
        "        while self.cycle < max_cycles:\n"
        "            i = 0\n"
        "            for core in self.cores:\n"
        "                core.step(self.cycle)\n"
        "                self.cores[(i + 1) % n].poked = 1\n"
        "                i += 1\n"
        "            self.cycle += 1\n"
    ),
}


# --------------------------------------------------------------------------- #
# stage extraction on fixtures                                                #
# --------------------------------------------------------------------------- #


class TestStageExtraction:
    def test_clean_fixture_two_kinds_no_findings(self, tmp_path):
        pkg = write_pkg(tmp_path, CLEAN_PKG)
        sa = analyze_schedule(pkg)
        assert sa.report is not None
        assert sa.findings == []
        kinds = {s.kind for s in sa.stages}
        assert PARALLEL in kinds and SERIAL in kinds
        # The sweep phase (Core.step) is proven per-core-parallel.
        parallel_entries = {
            p.label for s in sa.parallel_stages for p in s.phases
        }
        assert "Core.step" in parallel_entries
        # The global accumulation is serialized.
        serial_entries = {
            p.label for s in sa.stages if s.kind == SERIAL for p in s.phases
        }
        assert "PowerModel.end_cycle" in serial_entries

    def test_report_deterministic(self, tmp_path):
        pkg = write_pkg(tmp_path, CLEAN_PKG)
        first = render_json(analyze_schedule(pkg).report)
        second = render_json(analyze_schedule(pkg).report)
        assert first == second

    def test_unordered_writers_flagged_sched002(self, tmp_path):
        pkg = write_pkg(tmp_path, UNORDERED_PKG)
        sa = analyze_schedule(pkg)
        hits = [f for f in sa.findings if f.rule_id == "SCHED002"]
        assert hits, [f.render() for f in sa.findings]
        assert any("stats.stamp" in f.message for f in hits)

    def test_skewed_core_index_flagged_sched003(self, tmp_path):
        pkg = write_pkg(tmp_path, SKEWED_PKG)
        sa = analyze_schedule(pkg)
        hits = [f for f in sa.findings if f.rule_id == "SCHED003"]
        assert hits, [f.render() for f in sa.findings]
        assert any("poked" in f.message for f in hits)

    def test_tarjan_condenses_cycles(self):
        # 0 -> 1 -> 2 -> 0 is one SCC; 3 hangs off it.
        sccs = _tarjan(4, {0: {1}, 1: {2}, 2: {0, 3}, 3: set()})
        sizes = sorted(len(c) for c in sccs)
        assert sizes == [1, 3]


# --------------------------------------------------------------------------- #
# dtype inference edge cases                                                  #
# --------------------------------------------------------------------------- #


class TestDtypeInference:
    @pytest.fixture(scope="class")
    def types(self, tmp_path_factory):
        pkg = write_pkg(tmp_path_factory.mktemp("dtypes"), CLEAN_PKG)
        sa = analyze_schedule(pkg)
        assert sa.report is not None
        return {ft.key: ft for ft in sa.field_types}

    def test_no_unknown_dtypes(self, types):
        assert not [k for k, ft in types.items() if ft.dtype == "unknown"]

    def test_bool_spin_flag(self, types):
        ft = types["cores[*].spinning"]
        assert ft.dtype == "bool"
        assert ft.kind == "bool-flag"
        assert ft.shape == "(n_cores,)"

    def test_enum_like_int_field(self, types):
        ft = types["cores[*].state"]
        assert ft.kind == "enum"
        assert ft.dtype == "int8"
        assert ft.enum_values == [0, 1, 2]

    def test_intenum_member_assignments(self, types):
        ft = types["cores[*].phase"]
        assert ft.kind == "enum"
        assert ft.dtype == "int8"
        assert ft.enum_values == [0, 1]  # BUSY and LOCK are assigned

    def test_float_accumulator_is_float64_never_float32(self, types):
        ft = types["cores[*].energy"]
        assert ft.kind == "accumulator"
        assert ft.dtype == "float64"
        assert not any(t.dtype == "float32" for t in types.values())

    def test_config_bounded_rob_field(self, types):
        ft = types["cores[*].rob_occ"]
        assert ft.dtype == "int64"
        assert ft.bound is not None and "rob_entries" in ft.bound


# --------------------------------------------------------------------------- #
# real tree: the kernel contract                                              #
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def real_tree():
    sa = analyze_schedule(SRC_REPRO)
    assert sa.report is not None
    return sa


class TestRealTree:
    def test_no_findings_no_unknown_dtypes(self, real_tree):
        assert real_tree.findings == []
        assert real_tree.unknown_types == []

    def test_at_least_two_parallel_stages(self, real_tree):
        assert len(real_tree.parallel_stages) >= 2

    def test_driver_and_key_phases(self, real_tree):
        assert real_tree.report["driver"] == "CMPSimulator.run"
        labels = {p.label for p in real_tree.phases}
        assert "Core.step" in labels
        assert "BudgetController.end_cycle" in labels

    def test_report_bytes_deterministic(self, real_tree):
        again = analyze_schedule(SRC_REPRO)
        assert render_json(again.report) == render_json(real_tree.report)

    def test_core_step_is_serialized(self, real_tree):
        # Core.step touches shared coherence/sync state, so the schedule
        # must NOT claim it is per-core-parallel.
        for stage in real_tree.parallel_stages:
            assert "Core.step" not in {p.label for p in stage.phases}

    def test_dtype_spot_checks(self, real_tree):
        types = {ft.key: ft for ft in real_tree.field_types}
        acc = types["thermal._energy_acc"]
        assert acc.dtype == "float64"
        assert acc.shape == "(n_cores,)"
        sync = types["cores[*].sync_phase"]
        assert sync.kind == "enum"
        assert sync.enum_values == [0, 1, 2, 3]

    def test_validator_clean_on_reference_run(self, real_tree):
        from repro.config import CMPConfig
        from repro.sim.cmp import CMPSimulator
        from repro.simcheck.cli import _make_smoke_program

        sim = CMPSimulator(
            CMPConfig(num_cores=2), _make_smoke_program(2, 200),
            "ptb", 0.5, "dynamic",
        )
        validator = ScheduleValidator(real_tree.report).attach(sim)
        assert validator.wrapped > 0
        result = sim.run(20_000)
        assert result.cycles > 0
        assert validator.violations() == []


class TestValidatorUnit:
    REPORT = {
        "driver": "Sim.run",
        "stages": [
            {"index": 0, "kind": "serialized",
             "phases": [{"entry": "A.first"}]},
            {"index": 1, "kind": "per_core_parallel",
             "phases": [{"entry": "C.mid"}]},
            {"index": 2, "kind": "serialized",
             "phases": [{"entry": "B.last"}]},
        ],
    }

    def test_in_order_clean(self):
        v = ScheduleValidator(self.REPORT)
        v.calls = [
            (0, 0, True, "A.first"), (None, 1, False, "C.mid"),
            (0, 2, True, "B.last"),
            (1, 0, True, "A.first"), (None, 1, False, "C.mid"),
            (1, 2, True, "B.last"),
        ]
        assert v.violations() == []

    def test_serialized_phase_out_of_order(self):
        v = ScheduleValidator(self.REPORT)
        v.calls = [
            (0, 0, True, "A.first"), (0, 2, True, "B.last"),
            (0, 0, True, "A.first"),  # stage 0 again, same cycle
        ]
        assert v.violations()

    def test_parallel_call_after_later_serialized_stage(self):
        v = ScheduleValidator(self.REPORT)
        v.calls = [
            (0, 0, True, "A.first"), (0, 2, True, "B.last"),
            (None, 1, False, "C.mid"),  # stray sweep call after end
        ]
        assert v.violations()

    def test_parallel_interleaving_allowed(self):
        # Parallel stages commute across cores: repeated stage-1 calls
        # never raise the watermark.
        v = ScheduleValidator(self.REPORT)
        v.calls = [
            (0, 0, True, "A.first"),
            (None, 1, False, "C.mid"), (None, 1, False, "C.mid"),
            (0, 2, True, "B.last"),
        ]
        assert v.violations() == []


# --------------------------------------------------------------------------- #
# CLI surface                                                                 #
# --------------------------------------------------------------------------- #


class TestCLI:
    def test_schedule_report_and_exit_zero(self, tmp_path):
        out = tmp_path / "schedule-report.json"
        res = run_cli(
            "schedule", str(SRC_REPRO), "--report", str(out),
            "--baseline", str(REPO / ".simcheck-schedule-baseline.json"),
        )
        assert res.returncode == 0, res.stdout + res.stderr
        report = json.loads(out.read_text())
        assert report["summary"]["parallel_stages"] >= 2
        assert report["summary"].get("dtypes", {}).get("unknown", 0) == 0

    def test_schedule_findings_gate_exit_code(self, tmp_path):
        pkg = write_pkg(tmp_path, UNORDERED_PKG)
        res = run_cli("schedule", str(pkg), "--no-report")
        assert res.returncode == 1
        assert "SCHED002" in res.stdout

    def test_schedule_baseline_round_trip(self, tmp_path):
        pkg = write_pkg(tmp_path, UNORDERED_PKG)
        bl = tmp_path / "bl.json"
        wrote = run_cli(
            "schedule", str(pkg), "--no-report",
            "--baseline", str(bl), "--write-baseline",
        )
        assert wrote.returncode == 0, wrote.stderr
        gated = run_cli(
            "schedule", str(pkg), "--no-report", "--baseline", str(bl)
        )
        assert gated.returncode == 0, gated.stdout + gated.stderr

    def test_schedule_sarif_output(self, tmp_path):
        pkg = write_pkg(tmp_path, SKEWED_PKG)
        res = run_cli(
            "schedule", str(pkg), "--no-report", "--format", "sarif"
        )
        doc = json.loads(res.stdout)
        assert doc["runs"][0]["tool"]["driver"]["name"] == "simcheck-schedule"
        assert any(
            r["ruleId"] == "SCHED003" for r in doc["runs"][0]["results"]
        )

    def test_all_combined_gate(self, tmp_path):
        reports = tmp_path / "reports"
        res = run_cli("all", str(SRC_REPRO), "--reports-dir", str(reports))
        assert res.returncode == 0, res.stdout + res.stderr
        for name in (
            "kernel-report.json", "purity-report.json",
            "schedule-report.json", "simcheck.sarif",
        ):
            assert (reports / name).is_file(), name
        sarif = json.loads((reports / "simcheck.sarif").read_text())
        names = [r["tool"]["driver"]["name"] for r in sarif["runs"]]
        assert names == [
            "simcheck-lint", "simcheck-flow", "simcheck-kernel",
            "simcheck-purity", "simcheck-schedule",
        ]
