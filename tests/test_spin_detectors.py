"""Tests for the BCT and power-pattern spin detectors."""

import pytest

from repro.core.spin import BCTSpinDetector, PowerPatternSpinDetector


def feed_spin_iterations(det, n, pc=0x5000, addr=0x9000):
    """Emit n identical load-test-branch spin iterations."""
    for _ in range(n):
        det.on_commit(pc + 0, False, False, addr)   # load
        det.on_commit(pc + 4, False, False, 0)      # compare
        det.on_commit(pc + 8, True, False, 0)       # backward branch


class TestBCTDetector:
    def test_detects_steady_spin(self):
        det = BCTSpinDetector(identical_intervals=3)
        feed_spin_iterations(det, 6)
        assert det.spinning
        assert det.detections == 1

    def test_not_detected_before_threshold(self):
        det = BCTSpinDetector(identical_intervals=5)
        feed_spin_iterations(det, 3)
        assert not det.spinning

    def test_stores_break_spin(self):
        det = BCTSpinDetector(identical_intervals=2)
        for _ in range(8):
            det.on_commit(0x10, False, True, 0x2000)  # store -> not spin
            det.on_commit(0x18, True, False, 0)
        assert not det.spinning

    def test_changing_addresses_break_spin(self):
        det = BCTSpinDetector(identical_intervals=2)
        for i in range(8):
            det.on_commit(0x10, False, False, 0x1000 + 64 * i)
            det.on_commit(0x18, True, False, 0)
        assert not det.spinning

    def test_different_bct_pcs_break_spin(self):
        det = BCTSpinDetector(identical_intervals=2)
        for i in range(8):
            det.on_commit(0x10, False, False, 0x1000)
            det.on_commit(0x18 + (i % 2) * 64, True, False, 0)
        assert not det.spinning

    def test_reset(self):
        det = BCTSpinDetector(identical_intervals=2)
        feed_spin_iterations(det, 5)
        assert det.spinning
        det.reset()
        assert not det.spinning

    def test_exit_spin_on_real_work(self):
        det = BCTSpinDetector(identical_intervals=2)
        feed_spin_iterations(det, 5)
        assert det.spinning
        det.on_commit(0x40, False, True, 0x3000)
        det.on_commit(0x48, True, False, 0)
        assert not det.spinning

    def test_validation(self):
        with pytest.raises(ValueError):
            BCTSpinDetector(identical_intervals=0)


class TestPowerPatternDetector:
    def test_detects_stable_low_power(self):
        det = PowerPatternSpinDetector(window=16, mean_threshold=20,
                                       spread_threshold=10)
        for _ in range(20):
            det.on_cycle(10.0)
        assert det.spinning
        assert det.detections == 1

    def test_high_power_not_spinning(self):
        det = PowerPatternSpinDetector(window=16, mean_threshold=20,
                                       spread_threshold=10)
        for _ in range(20):
            det.on_cycle(50.0)
        assert not det.spinning

    def test_noisy_low_power_not_spinning(self):
        det = PowerPatternSpinDetector(window=16, mean_threshold=20,
                                       spread_threshold=5)
        vals = [2.0, 18.0] * 16  # low mean but large spread
        for v in vals:
            det.on_cycle(v)
        assert not det.spinning

    def test_figure6_shape(self):
        """Initial busy peak, then stabilisation under the budget."""
        det = PowerPatternSpinDetector(window=16, mean_threshold=20,
                                       spread_threshold=8)
        detected_at = None
        trace = [45.0] * 30 + [14.0] * 60  # busy burst then stable spin
        for t, p in enumerate(trace):
            if det.on_cycle(p) and detected_at is None:
                detected_at = t
        assert detected_at is not None
        assert detected_at >= 30 + 15  # needs a full stable window

    def test_wakeup_clears_flag(self):
        det = PowerPatternSpinDetector(window=8, mean_threshold=20,
                                       spread_threshold=8)
        for _ in range(10):
            det.on_cycle(12.0)
        assert det.spinning
        for _ in range(8):
            det.on_cycle(60.0)
        assert not det.spinning

    def test_window_not_full_no_detection(self):
        det = PowerPatternSpinDetector(window=32)
        for _ in range(10):
            assert det.on_cycle(1.0) is False

    def test_reset(self):
        det = PowerPatternSpinDetector(window=8)
        for _ in range(10):
            det.on_cycle(1.0)
        det.reset()
        assert not det.spinning
        assert det.on_cycle(1.0) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerPatternSpinDetector(window=2)
