"""Tests for the spin-gating extension (the paper's future work)."""

import pytest

from repro.budget import make_controller
from repro.budget.spingate import SpinGatingPTBController
from repro.config import CMPConfig
from repro.power.model import EnergyModel
from repro.sim.cmp import run_simulation
from repro.workloads import build_program


@pytest.fixture
def env():
    cfg = CMPConfig(num_cores=4)
    energy = EnergyModel(cfg)
    return cfg, energy, 0.5 * energy.global_peak_power(4)


class FakeSync:
    def __init__(self, spinning):
        self._s = set(spinning)

    def spinning_cores(self):
        return self._s

    def cores_waiting_on_locks(self):
        return len(self._s)

    def cores_waiting_on_barriers(self):
        return 0

    def contended_lock_holders(self):
        return []


class TestController:
    def test_factory(self, env):
        cfg, energy, budget = env
        ctl = make_controller("ptb-spingate", cfg, energy, budget)
        assert isinstance(ctl, SpinGatingPTBController)
        assert ctl.name == "ptb+spingate"

    def test_gates_after_hysteresis(self, env):
        cfg, energy, budget = env
        ctl = SpinGatingPTBController(cfg, energy, budget, policy="toall",
                                      gate_delay=5)
        sync = FakeSync({2})
        for cyc in range(4):
            ctl.end_cycle(cyc, [10, 10, 10, 10], [20.0] * 4, sync)
            assert ctl.fetch_allowed[2]  # not yet
        ctl.end_cycle(4, [10, 10, 10, 10], [20.0] * 4, sync)
        assert not ctl.fetch_allowed[2]
        assert ctl.gate_events == 1

    def test_non_spinners_never_gated(self, env):
        cfg, energy, budget = env
        ctl = SpinGatingPTBController(cfg, energy, budget, policy="toall",
                                      gate_delay=0)
        sync = FakeSync({1})
        for cyc in range(10):
            ctl.end_cycle(cyc, [10] * 4, [20.0] * 4, sync)
        assert ctl.fetch_allowed[0]
        assert ctl.fetch_allowed[3]
        assert not ctl.fetch_allowed[1]

    def test_wake_clears_gate(self, env):
        cfg, energy, budget = env
        ctl = SpinGatingPTBController(cfg, energy, budget, policy="toall",
                                      gate_delay=0)
        ctl.end_cycle(0, [10] * 4, [20.0] * 4, FakeSync({3}))
        assert not ctl.fetch_allowed[3]
        ctl.end_cycle(1, [10] * 4, [20.0] * 4, FakeSync(set()))
        assert ctl.fetch_allowed[3]
        assert ctl._spin_streak[3] == 0

    def test_no_sync_domain_is_safe(self, env):
        cfg, energy, budget = env
        ctl = SpinGatingPTBController(cfg, energy, budget, policy="toall")
        ctl.end_cycle(0, [10] * 4, [20.0] * 4, None)
        assert all(ctl.fetch_allowed)

    def test_validation(self, env):
        cfg, energy, budget = env
        with pytest.raises(ValueError):
            SpinGatingPTBController(cfg, energy, budget, gate_delay=-1)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def runs(self):
        cfg = CMPConfig(num_cores=4)
        prog = build_program("unstructured", 4, scale="tiny")
        return {
            "base": run_simulation(cfg, prog, "none"),
            "ptb": run_simulation(cfg, prog, "ptb", ptb_policy="toall"),
            "gated": run_simulation(cfg, prog, "ptb-spingate",
                                    ptb_policy="toall"),
        }

    def test_completes(self, runs):
        assert all(r.completed for r in runs.values())

    def test_saves_energy_on_lock_bound_code(self, runs):
        """The paper's future-work claim: disabling spinners saves energy."""
        assert runs["gated"].total_energy < runs["ptb"].total_energy
        assert runs["gated"].total_energy < runs["base"].total_energy

    def test_does_not_slow_down(self, runs):
        assert runs["gated"].cycles <= runs["ptb"].cycles * 1.05

    def test_no_deadlock_on_barrier_heavy_code(self):
        cfg = CMPConfig(num_cores=4)
        prog = build_program("ocean", 4, scale="tiny")
        r = run_simulation(cfg, prog, "ptb-spingate", ptb_policy="toall")
        assert r.completed
