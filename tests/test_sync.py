"""Tests for spinlocks, barriers and the sync domain."""

import pytest

from repro.config import NetworkConfig
from repro.noc.mesh import Mesh2D
from repro.sync.primitives import (
    SyncDomain,
    barrier_count_address,
    barrier_sense_address,
    lock_address,
)


@pytest.fixture
def domain():
    return SyncDomain(4, Mesh2D(4, NetworkConfig()))


class TestAddresses:
    def test_lock_addresses_distinct_lines(self):
        assert lock_address(0) != lock_address(1)
        assert (lock_address(1) - lock_address(0)) >= 64  # no false sharing

    def test_barrier_addresses_distinct(self):
        assert barrier_count_address(0) != barrier_sense_address(0)
        assert barrier_sense_address(0) - barrier_count_address(0) >= 64


class TestLockProtocol:
    def test_uncontended_acquire(self, domain):
        assert domain.try_acquire(0, core=1, now=10)
        assert domain.lock(0).owner == 1

    def test_second_acquirer_queues(self, domain):
        domain.try_acquire(0, 1, 10)
        assert not domain.try_acquire(0, 2, 12)
        assert list(domain.lock(0).waiters) == [2]

    def test_release_grants_fifo(self, domain):
        domain.try_acquire(0, 1, 10)
        domain.try_acquire(0, 2, 11)
        domain.try_acquire(0, 3, 12)
        domain.release(0, 1, 100)
        lk = domain.lock(0)
        assert 2 in lk.grant_at
        assert list(lk.waiters) == [3]

    def test_grant_lands_after_handoff_latency(self, domain):
        domain.try_acquire(0, 0, 10)
        domain.try_acquire(0, 3, 11)
        domain.release(0, 0, 100)
        at = domain.lock(0).grant_at[3]
        assert at > 100  # hand-off costs mesh latency
        assert not domain.lock_granted(0, 3, at - 1)
        assert domain.lock_granted(0, 3, at)
        assert domain.lock(0).owner == 3

    def test_no_steal_while_grant_in_flight(self, domain):
        """Regression: a newcomer must not grab the lock between release
        and the granted waiter's wake-up."""
        domain.try_acquire(0, 0, 10)
        domain.try_acquire(0, 1, 11)
        domain.release(0, 0, 100)
        # Core 2 tries right after the release, before 1's grant lands.
        assert not domain.try_acquire(0, 2, 101)
        at = domain.lock(0).grant_at[1]
        assert domain.lock_granted(0, 1, at)
        assert domain.lock(0).owner == 1

    def test_release_by_non_owner_raises(self, domain):
        domain.try_acquire(0, 1, 10)
        with pytest.raises(RuntimeError):
            domain.release(0, 2, 20)

    def test_contended_acquire_counted(self, domain):
        domain.try_acquire(0, 0, 1)
        domain.try_acquire(0, 1, 2)
        assert domain.lock(0).contended_acquires == 1

    def test_duplicate_wait_not_queued_twice(self, domain):
        domain.try_acquire(0, 0, 1)
        domain.try_acquire(0, 1, 2)
        domain.try_acquire(0, 1, 3)
        assert list(domain.lock(0).waiters) == [1]

    def test_independent_locks(self, domain):
        assert domain.try_acquire(0, 0, 1)
        assert domain.try_acquire(1, 1, 1)


class TestBarrierProtocol:
    def test_last_arrival_releases(self, domain):
        assert not domain.barrier_arrive(0, 0, 10)
        assert not domain.barrier_arrive(0, 1, 11)
        assert not domain.barrier_arrive(0, 2, 12)
        assert domain.barrier_arrive(0, 3, 13)  # last of 4

    def test_release_wakes_after_mesh_latency(self, domain):
        for c in range(3):
            domain.barrier_arrive(0, c, 10 + c)
        domain.barrier_arrive(0, 3, 20)
        # Generation 0 released at cycle 20 by core 3.
        assert not domain.barrier_released(0, 0, generation=0, now=20)
        # Eventually every core sees it.
        assert domain.barrier_released(0, 0, generation=0, now=200)

    def test_generation_advances(self, domain):
        for c in range(4):
            domain.barrier_arrive(0, c, 10)
        assert domain.barrier(0).generation == 1
        # Second episode reuses the barrier.
        for c in range(4):
            domain.barrier_arrive(0, c, 100)
        assert domain.barrier(0).generation == 2
        assert domain.barrier(0).episodes == 2

    def test_unreleased_generation_never_ready(self, domain):
        domain.barrier_arrive(0, 0, 10)
        assert not domain.barrier_released(0, 1, generation=0, now=10_000)

    def test_farther_cores_wake_later(self, domain):
        for c in range(3):
            domain.barrier_arrive(0, c, 10)
        domain.barrier_arrive(0, 3, 50)  # releaser is core 3
        # Core 2 (adjacent to 3) wakes before core 0 (diagonal).
        wake = {}
        for core in (0, 2):
            t = 50
            while not domain.barrier_released(0, core, 0, t):
                t += 1
            wake[core] = t
        assert wake[2] <= wake[0]


class TestIntrospection:
    def test_waiting_counts(self, domain):
        domain.try_acquire(0, 0, 1)
        domain.try_acquire(0, 1, 2)
        domain.barrier_arrive(0, 2, 3)
        assert domain.cores_waiting_on_locks() == 1
        assert domain.cores_waiting_on_barriers() == 1

    def test_contended_lock_holders(self, domain):
        domain.try_acquire(0, 0, 1)
        assert domain.contended_lock_holders() == []  # nobody waiting
        domain.try_acquire(0, 1, 2)
        assert domain.contended_lock_holders() == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SyncDomain(0, Mesh2D(4, NetworkConfig()))
