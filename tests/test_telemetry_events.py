"""Unit tests: telemetry ring buffer, event bus, metrics instruments."""

import pytest

from repro.telemetry.events import (
    DEFAULT_CAPACITY,
    Event,
    EventBus,
    EventKind,
    RingBuffer,
)
from repro.telemetry.metrics import (
    CYCLE_BUCKETS,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
)


class TestRingBuffer:
    def test_fills_in_order(self):
        rb = RingBuffer(4)
        for i in range(3):
            rb.append(i)
        assert len(rb) == 3
        assert list(rb) == [0, 1, 2]
        assert rb.dropped == 0

    def test_wraparound_drops_oldest(self):
        rb = RingBuffer(4)
        for i in range(10):
            rb.append(i)
        # Only the newest `capacity` entries survive, oldest first.
        assert len(rb) == 4
        assert list(rb) == [6, 7, 8, 9]
        assert rb.dropped == 6

    def test_exact_capacity_boundary(self):
        rb = RingBuffer(3)
        for i in range(3):
            rb.append(i)
        assert list(rb) == [0, 1, 2]
        assert rb.dropped == 0
        rb.append(3)  # first eviction happens at capacity + 1
        assert list(rb) == [1, 2, 3]
        assert rb.dropped == 1

    def test_capacity_one(self):
        rb = RingBuffer(1)
        for i in range(5):
            rb.append(i)
        assert list(rb) == [4]
        assert rb.dropped == 4

    def test_clear_resets(self):
        rb = RingBuffer(2)
        for i in range(5):
            rb.append(i)
        rb.clear()
        assert len(rb) == 0
        assert list(rb) == []
        assert rb.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestEventBus:
    def test_emit_and_read_back(self):
        bus = EventBus()
        bus.emit(5, EventKind.TOKEN_GRANT, 1, 3.0)
        bus.emit(2, EventKind.TOKEN_GRANT, 0, 7.0)
        evs = list(bus.events(EventKind.TOKEN_GRANT))
        assert [e.cycle for e in evs] == [2, 5]  # cycle-sorted
        assert evs[0] == Event(2, EventKind.TOKEN_GRANT, 0, 7.0, None)

    def test_counts_and_sums_survive_wraparound(self):
        # The aggregate invariants must stay exact even after the ring
        # forgets history: that's what lets the trace checks compare
        # granted-token sums against the balancer's own totals.
        bus = EventBus(capacities={EventKind.TOKEN_GRANT: 8})
        total = 0
        for cycle in range(100):
            bus.emit(cycle, EventKind.TOKEN_GRANT, 0, float(cycle))
            total += cycle
        assert len(bus.ring(EventKind.TOKEN_GRANT)) == 8
        assert bus.dropped(EventKind.TOKEN_GRANT) == 92
        assert bus.counts[EventKind.TOKEN_GRANT] == 100
        assert bus.value_sums[EventKind.TOKEN_GRANT] == float(total)
        assert bus.total_dropped == 92

    def test_merged_events_sorted_across_kinds(self):
        bus = EventBus()
        bus.emit(3, EventKind.SPIN_EXIT, 0)
        bus.emit(1, EventKind.SPIN_ENTER, 0)
        bus.emit(2, EventKind.TOKEN_GRANT, 1, 4.0)
        cycles = [e.cycle for e in bus.events()]
        assert cycles == sorted(cycles)

    def test_kind_isolation(self):
        # A chatty kind wrapping must not evict another kind's events.
        bus = EventBus(capacities={EventKind.MESH_MSG: 4})
        bus.emit(0, EventKind.TOKEN_GRANT, 0, 1.0)
        for cycle in range(50):
            bus.emit(cycle, EventKind.MESH_MSG, -1, 1.0)
        assert len(bus.ring(EventKind.TOKEN_GRANT)) == 1
        assert bus.dropped(EventKind.TOKEN_GRANT) == 0

    def test_subscribers_see_every_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe(EventKind.DVFS_MODE, seen.append)
        bus.emit(1, EventKind.DVFS_MODE, 0, 2.0, "1->2")
        bus.emit(2, EventKind.THROTTLE, 0, 1.0)  # different kind: unseen
        assert len(seen) == 1
        assert seen[0].detail == "1->2"

    def test_default_capacity_applies(self):
        bus = EventBus()
        assert bus.ring(EventKind.THROTTLE).capacity == DEFAULT_CAPACITY


class TestHistogram:
    def test_bucket_edges_inclusive(self):
        h = Histogram((2.0, 4.0, 8.0))
        # Upper bounds are inclusive: v == bound lands in that bucket.
        for v, idx in ((1.0, 0), (2.0, 0), (2.5, 1), (4.0, 1),
                       (8.0, 2), (8.1, 3), (100.0, 3)):
            before = list(h.counts)
            h.observe(v)
            after = list(h.counts)
            changed = [i for i in range(len(after))
                       if after[i] != before[i]]
            assert changed == [idx], f"{v} landed in bucket {changed}"
        assert h.total == 7
        assert h.mean == pytest.approx(sum(
            (1.0, 2.0, 2.5, 4.0, 8.0, 8.1, 100.0)) / 7)

    def test_bucket_pairs_labels(self):
        h = Histogram((1.0, 10.0))
        h.observe(0.5)
        h.observe(999.0)
        assert h.bucket_pairs() == [("le_1", 1), ("le_10", 0), ("le_inf", 1)]

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((4.0, 2.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 2.0))

    def test_default_bucket_tables_valid(self):
        # The shipped tables must satisfy the constructor's invariants.
        Histogram(CYCLE_BUCKETS)
        Histogram(LATENCY_BUCKETS)


class TestMetricsRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(3)
        assert reg.counter("x").value == 3
        assert reg.counter("x", core=1) is not c  # per-core is distinct

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_rows_and_to_dict(self):
        reg = MetricsRegistry()
        reg.counter("a", core=0).inc(2)
        reg.gauge("b").set(1.5)
        reg.histogram("c", (1.0, 2.0)).observe(1.5)
        rows = reg.rows()
        assert ("a", "0", "counter", "value", 2.0) in rows
        assert ("b", "", "gauge", "value", 1.5) in rows
        d = reg.to_dict()
        assert d["a"]["core0"] == 2
        assert d["b"]["all"] == 1.5
        assert d["c"]["all"]["total"] == 1
        assert d["c"]["all"]["buckets"]["le_2"] == 1
