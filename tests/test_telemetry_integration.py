"""Telemetry integration: probes, exporters, and the observation-only
contract against real simulations.

The load-bearing guarantees:

* telemetry is pure observation — a telemetry-on run's ``SimResult``
  pickles byte-identically to a telemetry-off run of the same recipe;
* the event-bus aggregates close the loop — granted-token sums equal
  the PTB balancer's own delivery counter, and the per-phase AoPB
  breakdown sums to exactly the run's reported AoPB;
* the exported trace is loadable — it passes the Chrome ``trace_event``
  schema validator the CI gate uses.
"""

import json
import pickle

import pytest

from repro.analysis.runner import ExperimentRunner, Recipe
from repro.config import CMPConfig
from repro.sim.cmp import CMPSimulator
from repro.telemetry import (
    EventKind,
    TelemetrySession,
    build_chrome_trace,
    load_power_timeline,
    peak_power,
    telemetry_enabled,
    validate_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
    write_power_timeline,
)
from repro.telemetry.cli import main as telemetry_main
from repro.telemetry.cli import pick_recipe, run_traced
from repro.telemetry.summary import phase_breakdown_table, summarize
from repro.workloads import build_program

from .conftest import make_program


@pytest.fixture(scope="module")
def traced():
    """One shared fig9-style PTB run with telemetry on."""
    recipe = pick_recipe("fig9")
    sim, result = run_traced(
        recipe.benchmark, recipe.cores, technique=recipe.technique,
        policy=recipe.policy, budget_fraction=recipe.budget_fraction,
        scale="tiny", max_cycles=120_000,
    )
    assert result.completed
    return sim, result


class TestEnableKnob:
    def test_default_off(self):
        cfg = CMPConfig(num_cores=2)
        assert not telemetry_enabled(cfg)
        sim = CMPSimulator(cfg, make_program(2, work=200, barriers=1))
        assert sim.telemetry is None

    def test_with_telemetry(self):
        cfg = CMPConfig(num_cores=2).with_telemetry()
        assert cfg.telemetry
        assert telemetry_enabled(cfg)
        sim = CMPSimulator(cfg, make_program(2, work=200, barriers=1))
        assert isinstance(sim.telemetry, TelemetrySession)

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry_enabled(CMPConfig(num_cores=2))
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        assert not telemetry_enabled(CMPConfig(num_cores=2))


class TestObservationOnly:
    def test_results_byte_identical(self):
        """Telemetry must never perturb the simulation it watches."""
        prog = build_program("ocean", 2, scale="tiny")
        runs = {}
        for on in (False, True):
            cfg = CMPConfig(num_cores=2, telemetry=on)
            sim = CMPSimulator(cfg, prog, technique="ptb",
                               budget_fraction=0.5, ptb_policy="toall")
            runs[on] = sim.run(100_000)
        assert pickle.dumps(runs[False]) == pickle.dumps(runs[True])


class TestAggregateInvariants:
    def test_grant_sum_matches_balancer(self, traced):
        sim, _ = traced
        session = sim.telemetry
        balancer = sim.controller.balancer
        assert session.tokens_granted == balancer.granted_total
        assert session.bus.value_sums[EventKind.TOKEN_GRANT] == float(
            balancer.granted_total)
        assert sum(session.granted_by_phase) == session.tokens_granted

    def test_aopb_phases_sum_to_total(self, traced):
        sim, result = traced
        session = sim.telemetry
        # Bitwise equality: the session accrues the same additions in
        # the same order as the simulator's own AoPB accumulator.
        assert session.aopb_total == result.aopb_energy
        assert sum(session.aopb_by_phase) == pytest.approx(
            session.aopb_total)

    def test_counters_populated(self, traced):
        sim, result = traced
        m = sim.telemetry.metrics.to_dict()
        assert m["run.cycles"]["all"] == float(result.cycles)
        assert m["noc.messages"]["all"] > 0
        assert "coherence.latency" in m


class TestTraceExport:
    def test_trace_passes_schema(self, traced):
        sim, _ = traced
        trace = build_chrome_trace(sim.telemetry)
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert "token.grant" in names
        assert "total power (W)" in names

    def test_per_core_and_balancer_tracks(self, traced):
        sim, _ = traced
        trace = build_chrome_trace(sim.telemetry)
        threads = {e["tid"]: e["args"]["name"]
                   for e in trace["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        n = sim.telemetry.num_cores
        assert set(threads) == set(range(n + 1))
        assert threads[n] == "PTB balancer"

    def test_validator_flags_bad_traces(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": 3}) != []
        bad_ph = {"traceEvents": [
            {"name": "x", "ph": "Z", "pid": 0, "tid": 0, "ts": 0}]}
        assert any("unknown ph" in p for p in
                   validate_chrome_trace(bad_ph))
        dangling = {"traceEvents": [
            {"name": "x", "ph": "B", "pid": 0, "tid": 0, "ts": 0}]}
        assert any("unbalanced" in p for p in
                   validate_chrome_trace(dangling))
        orphan_end = {"traceEvents": [
            {"name": "x", "ph": "E", "pid": 0, "tid": 0, "ts": 1}]}
        assert any("without matching B" in p for p in
                   validate_chrome_trace(orphan_end))

    def test_metrics_and_timeline_files(self, traced, tmp_path):
        sim, _ = traced
        session = sim.telemetry
        doc = write_metrics_json(session, str(tmp_path / "m.json"))
        assert doc["tokens_granted"] == session.tokens_granted
        assert json.loads((tmp_path / "m.json").read_text()) == doc
        write_metrics_csv(session.metrics, str(tmp_path / "m.csv"))
        header = (tmp_path / "m.csv").read_text().splitlines()[0]
        assert header == "name,core,type,field,value"
        rows = write_power_timeline(session, str(tmp_path / "p.ndjson"))
        loaded = load_power_timeline(str(tmp_path / "p.ndjson"))
        assert len(loaded) == rows == len(session.timeline)
        assert peak_power(loaded) > 0

    def test_summary_renders(self, traced):
        sim, result = traced
        text = summarize(sim.telemetry, result)
        assert "AoPB" in text
        assert "busy" in phase_breakdown_table(sim.telemetry)


class TestTruncation:
    def test_truncated_flag_and_event(self):
        cfg = CMPConfig(num_cores=2).with_telemetry()
        prog = make_program(2, work=100_000, barriers=1)
        sim = CMPSimulator(cfg, prog)
        with pytest.warns(RuntimeWarning, match="truncated at max_cycles"):
            r = sim.run(400)
        assert r.truncated
        session = sim.telemetry
        assert session.truncated
        assert session.bus.counts[EventKind.TRUNCATED] == 1
        assert any(e["name"] == "TRUNCATED"
                   for e in build_chrome_trace(session)["traceEvents"])

    def test_old_pickles_backfill_truncated(self, tmp_path):
        """Cache entries from before the field deserialize cleanly."""
        r = ExperimentRunner(cache_dir=tmp_path, scale="tiny",
                             max_cycles=30_000).run("swaptions", 2)
        state = dict(r.__dict__)
        state.pop("truncated")
        stale = pickle.loads(pickle.dumps(r))
        stale.__dict__.clear()
        stale.__setstate__(state)
        assert stale.truncated == (not r.completed)

    def test_truncated_of_reports_memoised_runs(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path, scale="tiny",
                                  max_cycles=600)
        recipe = Recipe("ocean", 2)
        with pytest.warns(RuntimeWarning, match="truncated"):
            runner.run_many([recipe])
        assert runner.truncated_of([recipe]) == [recipe]
        # Memo-only: asking doesn't simulate or touch the stats.
        stats = dict(runner.stats)
        runner.truncated_of([recipe, Recipe("fft", 2)])
        assert runner.stats == stats


class TestCLI:
    def test_run_and_validate(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = telemetry_main([
            "run", "--figure", "fig9", "--scale", "tiny",
            "--max-cycles", "120000", "--out", str(out),
            "--metrics", str(metrics), "--quiet",
        ])
        assert rc == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
        assert json.loads(metrics.read_text())["tokens_granted"] > 0
        assert telemetry_main(["validate", str(out)]) == 0
        capsys.readouterr()

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"traceEvents\": [{\"ph\": \"Z\"}]}")
        assert telemetry_main(["validate", str(bad)]) == 1
        capsys.readouterr()
