"""Tests for the lumped-RC thermal model."""

import pytest

from repro.power.thermal import ThermalModel


def make(n=2, **kw):
    kw.setdefault("ambient_k", 318.0)
    kw.setdefault("update_interval", 16)
    kw.setdefault("tau_cycles", 1000.0)
    return ThermalModel(n, **kw)


class TestDynamics:
    def test_heats_under_power(self):
        tm = make()
        for _ in range(2000):
            tm.add_cycle([50.0, 50.0])
        assert all(t > 318.0 for t in tm.temps)

    def test_cools_toward_ambient_when_idle(self):
        tm = make()
        for _ in range(2000):
            tm.add_cycle([50.0, 50.0])
        hot = tm.temps[0]
        for _ in range(5000):
            tm.add_cycle([0.0, 0.0])
        assert tm.temps[0] < hot
        assert tm.temps[0] == pytest.approx(318.0, abs=1.0)

    def test_steady_state_tracks_power(self):
        tm = make(r_th=1.0, coupling=0.0)
        for _ in range(20000):
            tm.add_cycle([30.0, 10.0])
        assert tm.temps[0] == pytest.approx(318.0 + 30.0, abs=1.0)
        assert tm.temps[1] == pytest.approx(318.0 + 10.0, abs=1.0)

    def test_hot_core_hotter_than_cold_core(self):
        tm = make()
        for _ in range(5000):
            tm.add_cycle([60.0, 5.0])
        assert tm.temps[0] > tm.temps[1]

    def test_lateral_coupling_pulls_together(self):
        hot_alone = make(coupling=0.0)
        coupled = make(coupling=0.3)
        for _ in range(10000):
            hot_alone.add_cycle([60.0, 0.0])
            coupled.add_cycle([60.0, 0.0])
        spread_alone = hot_alone.temps[0] - hot_alone.temps[1]
        spread_coupled = coupled.temps[0] - coupled.temps[1]
        assert spread_coupled < spread_alone


class TestStatistics:
    def test_stable_power_low_std(self):
        tm = make(tau_cycles=200.0)  # settles quickly, little warm-up drift
        for _ in range(20000):
            tm.add_cycle([20.0, 20.0])
        tm.flush()
        assert tm.std_temperature < 2.0

    def test_oscillating_power_higher_std(self):
        stable = make()
        noisy = make()
        for i in range(8000):
            stable.add_cycle([25.0, 25.0])
            p = 50.0 if (i // 500) % 2 == 0 else 0.0
            noisy.add_cycle([p, p])
        stable.flush()
        noisy.flush()
        assert noisy.std_temperature > stable.std_temperature

    def test_mean_temperature_reported(self):
        tm = make()
        for _ in range(1000):
            tm.add_cycle([10.0, 10.0])
        tm.flush()
        assert tm.mean_temperature > 318.0

    def test_hottest(self):
        tm = make()
        for _ in range(2000):
            tm.add_cycle([50.0, 1.0])
        assert tm.hottest() == tm.temps[0]

    def test_flush_partial_interval(self):
        tm = make(update_interval=100)
        for _ in range(30):
            tm.add_cycle([40.0, 40.0])
        tm.flush()
        assert tm.temps[0] > 318.0

    def test_no_samples_defaults(self):
        tm = make()
        assert tm.mean_temperature == 318.0
        assert tm.std_temperature == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel(0, 318.0)
        with pytest.raises(ValueError):
            ThermalModel(2, 318.0, update_interval=0)
