"""Tests for power tokens and the PTHT (paper Section III.B)."""

import pytest

from repro.isa.instructions import Kind
from repro.isa.kmeans import default_token_classes
from repro.power.model import TOKEN_UNIT_EU
from repro.power.tokens import PowerTokenHistoryTable, TokenAccountant


class TestPTHT:
    def test_default_prediction_on_cold_entry(self):
        t = PowerTokenHistoryTable(1024, default_cost=24)
        assert t.predict(0x400) == 24
        assert t.misses == 1

    def test_update_then_predict(self):
        t = PowerTokenHistoryTable(1024)
        t.update(0x400, 37)
        assert t.predict(0x400) == 37
        assert t.hits == 1

    def test_paper_size_is_8k_entries(self):
        t = PowerTokenHistoryTable(8192)
        assert t.entries == 8192

    def test_direct_mapped_conflict(self):
        t = PowerTokenHistoryTable(16)
        t.update(0x0, 10)
        t.update(0x0 + 16 * 4, 99)  # same index, different tag
        assert t.predict(0x0) == t.default_cost  # evicted

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            PowerTokenHistoryTable(1000)

    def test_hit_rate(self):
        t = PowerTokenHistoryTable(64)
        t.update(0x8, 5)
        for _ in range(9):
            t.predict(0x8)
        t.predict(0xFFFF0)
        assert t.hit_rate == pytest.approx(0.9)

    def test_loop_reuse_gives_high_hit_rate(self):
        t = PowerTokenHistoryTable(8192)
        pcs = [0x1000 + 4 * i for i in range(64)]
        for _ in range(50):
            for pc in pcs:
                t.predict(pc)
                t.update(pc, 20)
        assert t.hit_rate > 0.95


class TestTokenAccountant:
    @pytest.fixture
    def acc(self):
        tmap = default_token_classes(token_unit=TOKEN_UNIT_EU)
        return TokenAccountant(tmap, 8192)

    def test_cycle_accounting(self, acc):
        acc.begin_cycle(rob_occupancy=10)
        base = acc.on_fetch(0x100, int(Kind.INT_ALU))
        assert base >= 1
        consumed = acc.end_cycle()
        assert consumed == 10 + base
        assert acc.total_consumed == consumed

    def test_occupancy_is_residency_component(self, acc):
        acc.begin_cycle(rob_occupancy=77)
        assert acc.end_cycle() == 77

    def test_commit_updates_ptht_with_residency(self, acc):
        acc.begin_cycle(0)
        base = acc.on_fetch(0x200, int(Kind.LOAD))
        acc.end_cycle()
        total = acc.on_commit(0x200, base, rob_cycles=30)
        assert total == base + 30
        assert acc.ptht.predict(0x200) == total

    def test_paper_token_definition(self, acc):
        """tokens = base-class tokens + cycles in ROB (Section III.B)."""
        base = acc.token_map.tokens_for_kind(Kind.FP_MULT)
        assert acc.on_commit(0x4, base, 17) == base + 17

    def test_expensive_kinds_cost_more(self, acc):
        fp = acc.token_map.tokens_for_kind(Kind.FP_MULT)
        nop = acc.token_map.tokens_for_kind(Kind.NOP)
        assert fp > nop

    def test_base_tokens_in_token_units(self, acc):
        """Base class tokens are multiples of the ROB-residency unit."""
        from repro.isa.instructions import BASE_ENERGY

        tok = acc.token_map.tokens_for_kind(Kind.INT_ALU)
        expected = BASE_ENERGY[Kind.INT_ALU] / TOKEN_UNIT_EU
        assert tok == pytest.approx(expected, rel=0.35)

    def test_prediction_tracks_fetch(self, acc):
        acc.begin_cycle(0)
        acc.on_fetch(0x300, int(Kind.INT_ALU))
        acc.end_cycle()
        assert acc.predicted > 0
