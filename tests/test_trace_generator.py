"""Tests for synthetic trace generation (repro.trace)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import Kind
from repro.trace.generator import (
    LINE_BYTES,
    SHARED_BASE,
    InstrBatch,
    ThreadTraceGenerator,
)
from repro.trace.phases import (
    BarrierPhase,
    ComputePhase,
    LockPhase,
    ParallelProgram,
    SyncKind,
    SyncOp,
    ThreadProgram,
    validate_mix,
)


def drain(gen):
    """Pull every item from a generator."""
    items = []
    while True:
        item = gen.next_item()
        if item is None:
            return items
        items.append(item)


def make_gen(phases, seed=1, tid=0):
    return ThreadTraceGenerator(
        ThreadProgram(thread_id=tid, phases=tuple(phases)), seed=seed
    )


class TestPhaseValidation:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            validate_mix({Kind.INT_ALU: 0.5})

    def test_mix_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_mix({Kind.INT_ALU: 1.5, Kind.LOAD: -0.5})

    def test_compute_phase_validation(self):
        with pytest.raises(ValueError):
            ComputePhase(instructions=-1)
        with pytest.raises(ValueError):
            ComputePhase(instructions=10, loop_body=0)
        with pytest.raises(ValueError):
            ComputePhase(instructions=10, shared_fraction=1.5)

    def test_lock_phase_validation(self):
        with pytest.raises(ValueError):
            LockPhase(lock_id=-1, critical_section=ComputePhase(10))

    def test_barrier_phase_validation(self):
        with pytest.raises(ValueError):
            BarrierPhase(barrier_id=-2)

    def test_thread_program_instruction_count(self):
        tp = ThreadProgram(
            0,
            (
                ComputePhase(100),
                LockPhase(0, ComputePhase(50)),
                BarrierPhase(0),
            ),
        )
        assert tp.total_instructions() == 150

    def test_parallel_program_requires_ordered_ids(self):
        t0 = ThreadProgram(0, (ComputePhase(1),))
        t2 = ThreadProgram(2, (ComputePhase(1),))
        with pytest.raises(ValueError):
            ParallelProgram("bad", (t0, t2))


class TestInstructionCounts:
    def test_emits_exact_instruction_count(self):
        gen = make_gen([ComputePhase(instructions=777)])
        items = drain(gen)
        total = sum(b.n for b in items if isinstance(b, InstrBatch))
        assert total == 777
        assert gen.instructions_emitted == 777

    def test_zero_instruction_phase(self):
        gen = make_gen([ComputePhase(instructions=0), BarrierPhase(0)])
        items = drain(gen)
        assert all(not isinstance(i, InstrBatch) for i in items)

    def test_batches_have_parallel_arrays(self):
        gen = make_gen([ComputePhase(instructions=600)])
        for b in drain(gen):
            assert isinstance(b, InstrBatch)
            assert len(b.kinds) == b.n
            assert len(b.pcs) == b.n
            assert len(b.addrs) == b.n
            assert len(b.takens) == b.n
            assert len(b.backwards) == b.n
            assert len(b.deps) == b.n


class TestSyncOrdering:
    def test_lock_phase_emits_acquire_cs_release(self):
        gen = make_gen([LockPhase(3, ComputePhase(64))])
        items = drain(gen)
        assert isinstance(items[0], SyncOp)
        assert items[0].kind == SyncKind.ACQUIRE
        assert items[0].obj_id == 3
        assert isinstance(items[-1], SyncOp)
        assert items[-1].kind == SyncKind.RELEASE
        assert items[-1].obj_id == 3
        n = sum(b.n for b in items if isinstance(b, InstrBatch))
        assert n == 64

    def test_barrier_marker(self):
        gen = make_gen([BarrierPhase(7)])
        items = drain(gen)
        assert items == [SyncOp(SyncKind.BARRIER, 7)]

    def test_generator_keeps_returning_none_after_end(self):
        gen = make_gen([ComputePhase(10)])
        drain(gen)
        assert gen.next_item() is None
        assert gen.next_item() is None


class TestAddresses:
    def test_private_addresses_in_thread_region(self):
        gen = make_gen(
            [ComputePhase(2000, shared_fraction=0.0, footprint_lines=256)],
            tid=2,
        )
        for b in drain(gen):
            for kind, addr in zip(b.kinds, b.addrs):
                if addr:
                    assert addr < SHARED_BASE
                    assert addr >> 34 == 3  # (tid+1)

    def test_shared_addresses_above_shared_base(self):
        gen = make_gen(
            [ComputePhase(3000, shared_fraction=1.0, footprint_lines=64)]
        )
        saw_shared = False
        for b in drain(gen):
            for kind, addr in zip(b.kinds, b.addrs):
                if addr:
                    assert addr >= SHARED_BASE
                    saw_shared = True
        assert saw_shared

    def test_addresses_line_aligned(self):
        gen = make_gen([ComputePhase(1000)])
        for b in drain(gen):
            for addr in b.addrs:
                assert addr % LINE_BYTES == 0

    def test_non_mem_instructions_have_no_address(self):
        gen = make_gen([ComputePhase(1000)])
        mem_kinds = {int(Kind.LOAD), int(Kind.STORE), int(Kind.ATOMIC)}
        for b in drain(gen):
            for kind, addr in zip(b.kinds, b.addrs):
                if kind not in mem_kinds:
                    assert addr == 0


class TestDeterminismAndCodeIdentity:
    def test_same_seed_same_stream(self):
        phases = [ComputePhase(1200), BarrierPhase(0), ComputePhase(500)]
        a = drain(make_gen(phases, seed=5))
        b = drain(make_gen(phases, seed=5))
        assert len(a) == len(b)
        for x, y in zip(a, b):
            if isinstance(x, InstrBatch):
                assert x.kinds == y.kinds
                assert x.addrs == y.addrs
                assert x.takens == y.takens
            else:
                assert x == y

    def test_different_seed_different_addresses(self):
        phases = [ComputePhase(1200)]
        a = drain(make_gen(phases, seed=1))
        b = drain(make_gen(phases, seed=2))
        addrs_a = [x for batch in a for x in batch.addrs if x]
        addrs_b = [x for batch in b for x in batch.addrs if x]
        assert addrs_a != addrs_b

    def test_identical_phases_share_code(self):
        """Same-shape compute phases are the same static code (same PCs)."""
        ph = ComputePhase(500)
        gen = make_gen([ph, BarrierPhase(0), ph])
        items = drain(gen)
        barrier_at = next(
            i for i, it in enumerate(items) if isinstance(it, SyncOp)
        )
        pcs_before = {
            pc for b in items[:barrier_at] for pc in b.pcs
        }
        pcs_after = {
            pc
            for b in items[barrier_at + 1:]
            if isinstance(b, InstrBatch)
            for pc in b.pcs
        }
        assert pcs_after <= pcs_before

    def test_different_shape_phases_use_distinct_code(self):
        gen = make_gen(
            [ComputePhase(500, loop_body=32), ComputePhase(500, loop_body=48)]
        )
        batches = [b for b in drain(gen) if isinstance(b, InstrBatch)]
        assert set(batches[0].pcs).isdisjoint(set(batches[-1].pcs))

    def test_same_lock_critical_sections_share_code(self):
        lk = LockPhase(1, ComputePhase(64))
        gen = make_gen([lk, lk])
        batches = [b for b in drain(gen) if isinstance(b, InstrBatch)]
        assert set(batches[0].pcs) == set(batches[-1].pcs)


class TestMixApportionment:
    def test_branch_fraction_approximates_mix(self):
        mix = dict(ComputePhase(1).mix)
        gen = make_gen([ComputePhase(20000, mix=mix)])
        counts = {}
        total = 0
        for b in drain(gen):
            for k in b.kinds:
                counts[k] = counts.get(k, 0) + 1
                total += 1
        br = counts.get(int(Kind.BRANCH), 0) / total
        assert br == pytest.approx(mix[Kind.BRANCH], abs=0.05)

    def test_loop_back_edges_marked_backward(self):
        gen = make_gen([ComputePhase(2000, loop_body=32)])
        saw_backward = False
        for b in drain(gen):
            for kind, bw, taken in zip(b.kinds, b.backwards, b.takens):
                if bw:
                    assert kind == int(Kind.BRANCH)
                    assert taken == 1
                    saw_backward = True
        assert saw_backward

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(1, 3000),
        body=st.integers(4, 128),
        ilp=st.floats(0.0, 1.0),
    )
    def test_any_phase_emits_exactly_n(self, n, body, ilp):
        gen = make_gen([ComputePhase(n, loop_body=body, ilp=ilp)])
        total = sum(b.n for b in drain(gen) if isinstance(b, InstrBatch))
        assert total == n
